"""Defense in depth: model inspection + OASIS on one client.

Beyond preprocessing its batches with OASIS, a client can *inspect* each
broadcast model for the structural/functional signatures of the known
imprint attacks before training on it (the paper's threat model notes the
server keeps modifications "minimal to avoid detection" — so detection
pressure matters).  This example shows a vigilant client:

1. Receives an honest model -> inspector stays quiet.
2. Receives an RTF-crafted model -> structural signature flagged.
3. Receives a CAH-crafted model -> functional (probe-based) signature
   flagged using the client's own data.
4. Even when the client trains anyway, OASIS keeps the gradients safe —
   detection and augmentation compose.

Also demonstrates the tabular extension (the paper's future-work
direction): an RTF-style attack over feature rows defeated by
measurement-preserving tabular companions.

Run:  python examples/vigilant_client.py
"""

from __future__ import annotations

import numpy as np

from repro.attacks import CAHAttack, ImprintedModel, RTFAttack
from repro.data import synthetic_cifar100
from repro.defense import OasisDefense, TabularOasisDefense, inspect_state
from repro.fl import compute_batch_gradients
from repro.metrics import per_image_best_psnr
from repro.nn import CrossEntropyLoss

NUM_NEURONS = 200
SEED = 5


def crafted_model(dataset, attack_name):
    model = ImprintedModel(
        dataset.image_shape, NUM_NEURONS, dataset.num_classes,
        rng=np.random.default_rng(SEED),
    )
    if attack_name == "rtf":
        attack = RTFAttack(NUM_NEURONS)
    elif attack_name == "cah":
        attack = CAHAttack(NUM_NEURONS, seed=SEED)
    else:
        return model, None
    attack.calibrate_from_public_data(dataset.images[:200])
    attack.craft(model)
    return model, attack


def main() -> None:
    print(__doc__)
    dataset = synthetic_cifar100(samples_per_class=4)
    probes = dataset.images[:64]

    print("--- 1/2/3: inspecting incoming broadcast models ---")
    for name in ("honest", "rtf", "cah"):
        model, _ = crafted_model(dataset, name)
        report = inspect_state(model.state_dict(), probe_inputs=probes)
        verdict = "SUSPICIOUS" if report else "clean"
        print(f"{name:>7}: {verdict}")
        for finding in report.findings:
            print(f"         - {finding}")

    print("\n--- 4: OASIS protects even if the client trains anyway ---")
    rng = np.random.default_rng(SEED)
    images, labels = dataset.sample_batch(8, rng)
    model, attack = crafted_model(dataset, "rtf")
    expanded, expanded_labels = OasisDefense("MR").expand_batch(images, labels)
    grads, _ = compute_batch_gradients(
        model, CrossEntropyLoss(), expanded, expanded_labels
    )
    scores = per_image_best_psnr(images, attack.reconstruct(grads).images)
    print(f"per-image best PSNR under OASIS-MR: {np.round(scores, 1)} "
          f"(all < 60 dB => nothing leaked)")

    print("\n--- 5: the tabular extension (paper future work) ---")
    features = 64
    rows = np.clip(
        rng.random((4, features)) * 0.5 + rng.random(features) * 0.5, 0, 1
    )
    row_labels = np.arange(4)
    shape = (1, 8, 8)
    tab_model = ImprintedModel(shape, 120, 4, rng=np.random.default_rng(SEED))
    tab_attack = RTFAttack(120)
    tab_attack.calibrate_from_public_data(rng.random((100, *shape)) * 0.5 + 0.25)
    tab_attack.craft(tab_model)

    grads, _ = compute_batch_gradients(
        tab_model, CrossEntropyLoss(), rows.reshape(-1, *shape), row_labels
    )
    leak = per_image_best_psnr(
        rows.reshape(-1, *shape), tab_attack.reconstruct(grads).images
    )
    defense = TabularOasisDefense(features, seed=SEED)
    expanded_rows, expanded_labels = defense.expand_batch(rows, row_labels)
    grads, _ = compute_batch_gradients(
        tab_model, CrossEntropyLoss(),
        expanded_rows.reshape(-1, *shape), expanded_labels,
    )
    safe = per_image_best_psnr(
        rows.reshape(-1, *shape), tab_attack.reconstruct(grads).images
    )
    print(f"tabular rows, no defense:      best PSNR = {np.round(leak, 1)}")
    print(f"tabular rows, Tabular-OASIS:   best PSNR = {np.round(safe, 1)}")


if __name__ == "__main__":
    main()
