"""Sec. IV-D demo: gradient inversion on a single-layer logistic model.

In the most restrictive setting — a one-layer model trained with logistic
loss, one image per class in the batch — the server inverts each class row
of the uploaded gradients directly (no malicious layer needed).  OASIS
still applies: transformed copies share their original's label, so every
class row mixes the image with its transforms by construction.

Run:  python examples/linear_inversion_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.attacks import LinearClassifier, LinearModelInversion
from repro.data import class_balanced_batch, synthetic_cifar100
from repro.defense import OasisDefense
from repro.experiments import format_table, render_ascii_image, side_by_side
from repro.fl import compute_batch_gradients
from repro.metrics import best_match_psnr
from repro.nn import LogisticLoss

BATCH_SIZE = 8
SEED = 19


def invert(model, inversion, images, labels, defense=None):
    if defense is not None:
        images, labels = defense.expand_batch(images, labels)
    gradients, _ = compute_batch_gradients(model, LogisticLoss(), images, labels)
    return inversion.reconstruct(gradients)


def main() -> None:
    print(__doc__)
    dataset = synthetic_cifar100(samples_per_class=4)
    rng = np.random.default_rng(SEED)
    images, labels = class_balanced_batch(
        dataset, BATCH_SIZE, rng, unique_labels=True
    )
    model = LinearClassifier(
        dataset.image_shape, dataset.num_classes, rng=np.random.default_rng(SEED)
    )
    inversion = LinearModelInversion()
    inversion.craft(model)

    rows = []
    galleries = {}
    for label, defense in (
        ("WO", None),
        ("MR", OasisDefense("MR")),
        ("SH", OasisDefense("SH")),
        ("HFlip", OasisDefense("HFlip")),
    ):
        result = invert(model, inversion, images, labels, defense)
        scores = [best_match_psnr(images, recon)[0] for recon in result.images]
        rows.append([label, len(result), f"{np.mean(scores):.1f}",
                     f"{np.max(scores):.1f}"])
        galleries[label] = result

    print(format_table(
        ["defense", "#recon", "mean PSNR (dB)", "max PSNR (dB)"], rows
    ))

    print("\nClass-row reconstruction, original (left) vs WO (middle) vs MR (right):")
    original = images[0]
    wo_best = max(
        galleries["WO"].images, key=lambda r: best_match_psnr(images[:1], r)[0]
    )
    mr_best = max(
        galleries["MR"].images, key=lambda r: best_match_psnr(images[:1], r)[0]
    )
    print(
        side_by_side(
            side_by_side(
                render_ascii_image(original, width=24),
                render_ascii_image(wo_best, width=24),
            ),
            render_ascii_image(mr_best, width=24),
        )
    )


if __name__ == "__main__":
    main()
