"""Domain scenario: a hospital federation under a dishonest server.

The paper's motivating deployment (Sec. I): hospitals jointly train an
imaging model under HIPAA/GDPR-style constraints — data may never leave a
site, yet a dishonest coordinator can reconstruct scans from gradient
updates.  This example simulates ten "hospitals" training a classifier
over a synthetic medical-style imaging dataset and demonstrates:

1. A dishonest server recovering one hospital's training scans verbatim.
2. The same federation with OASIS enabled on every client: the attack
   yields only unrecognizable overlaps.
3. Training utility: the federation still converges with OASIS enabled.

Run:  python examples/medical_federation.py
"""

from __future__ import annotations

import numpy as np

from repro.attacks import ImprintedModel, RTFAttack
from repro.data import make_synthetic_dataset, train_test_split
from repro.defense import OasisDefense
from repro.fl import FederatedSimulation, FederationConfig
from repro.metrics import per_image_best_psnr
from repro.nn import MLP

NUM_HOSPITALS = 10
NUM_NEURONS = 200
ROUNDS = 1
SEED = 3


def build_dataset():
    """A 6-class 'modality' dataset standing in for de-identified scans."""
    return make_synthetic_dataset(
        num_classes=6, samples_per_class=30, image_size=16, seed=SEED,
        name="scans",
        class_names=("cxr", "ct", "mri-t1", "mri-t2", "pet", "ultrasound"),
    )


def attack_federation(dataset, defense):
    """Run one attacked FL round; return target batch and reconstructions."""
    def model_factory():
        return ImprintedModel(
            dataset.image_shape, NUM_NEURONS, dataset.num_classes,
            rng=np.random.default_rng(SEED),
        )

    attack = RTFAttack(NUM_NEURONS)
    attack.calibrate_from_public_data(dataset.images[:100])
    simulation = FederatedSimulation(
        dataset,
        model_factory,
        FederationConfig(num_clients=NUM_HOSPITALS, batch_size=8, seed=SEED),
        defense=defense,
        attack=attack,
        target_client_id=0,
    )
    simulation.run(ROUNDS)
    server = simulation.server
    target_batch = server.clients[0].last_batch[0]
    return target_batch, server.reconstructions[(0, 0)].images


def main() -> None:
    print(__doc__)
    dataset = build_dataset()

    # 1) No defense: hospital 0's scans leak verbatim.
    batch, recons = attack_federation(dataset, defense=None)
    leak = per_image_best_psnr(batch, recons)
    print(f"Dishonest server, no defense: per-scan best PSNR = "
          f"{np.round(leak, 1)}")
    print(f"  -> {np.sum(leak > 100)} of {len(leak)} scans recovered verbatim\n")

    # 2) OASIS on every hospital: the same attack recovers nothing.
    batch, recons = attack_federation(dataset, defense=OasisDefense("MR"))
    protected = per_image_best_psnr(batch, recons)
    print(f"Dishonest server vs OASIS-MR: per-scan best PSNR = "
          f"{np.round(protected, 1)}")
    print(f"  -> {np.sum(protected > 100)} of {len(protected)} scans recovered\n")

    # 3) Utility: the federation still learns with OASIS enabled.
    train, test = train_test_split(dataset, 0.2, seed=SEED)

    def classifier_factory():
        return MLP([dataset.flat_dim, 64, dataset.num_classes],
                   rng=np.random.default_rng(SEED))

    for label, defense in (("without OASIS", None), ("with OASIS-MR", OasisDefense("MR"))):
        simulation = FederatedSimulation(
            train,
            classifier_factory,
            FederationConfig(
                num_clients=NUM_HOSPITALS, batch_size=8,
                learning_rate=0.1, seed=SEED,
            ),
            defense=defense,
        )
        simulation.run(60)
        accuracy = simulation.evaluate(test)
        print(f"Federated training {label}: test accuracy = {accuracy:.2%}")


if __name__ == "__main__":
    main()
