"""Transformation study: which augmentation defends against which attack?

Reproduces the decision matrix behind the paper's Figures 5 and 6 at
example scale: every OASIS suite against both imprint attacks, plus the
Proposition 1 activation-overlap diagnostics that explain *why* each
pairing works or fails.

Run:  python examples/transform_study.py
"""

from __future__ import annotations

import numpy as np

from repro.attacks import CAHAttack, ImprintedModel, RTFAttack
from repro.data import synthetic_cifar100
from repro.defense import OasisDefense, activation_overlap_report
from repro.experiments import format_table, run_defense_lineup

SUITES = ("WO", "MR", "mR", "SH", "HFlip", "VFlip", "MR+SH")
BATCH_SIZE = 8
NUM_NEURONS = 300
SEED = 11


def psnr_matrix(dataset):
    rows = []
    for attack_name in ("rtf", "cah"):
        lineup = run_defense_lineup(
            dataset, attack_name, BATCH_SIZE, NUM_NEURONS, SUITES,
            num_trials=2, seed=SEED,
        )
        averages = lineup.averages()
        rows.append([attack_name] + [f"{averages[s]:.1f}" for s in SUITES])
    return format_table(["attack \\ suite"] + list(SUITES), rows)


def overlap_matrix(dataset):
    rng = np.random.default_rng(SEED)
    images, labels = dataset.sample_batch(BATCH_SIZE, rng)
    rows = []
    for attack_name in ("rtf", "cah"):
        model = ImprintedModel(
            dataset.image_shape, NUM_NEURONS, dataset.num_classes,
            rng=np.random.default_rng(SEED),
        )
        if attack_name == "rtf":
            attack = RTFAttack(NUM_NEURONS)
        else:
            attack = CAHAttack(NUM_NEURONS, seed=SEED)
        attack.calibrate_from_public_data(dataset.images[:200])
        attack.craft(model)
        row = [attack_name]
        for suite in SUITES[1:]:
            report = activation_overlap_report(
                model, OasisDefense(suite), images, labels
            )
            row.append(f"{report.protected_fraction:.2f}/{report.mean_jaccard:.2f}")
        rows.append(row)
    return format_table(["attack \\ suite"] + list(SUITES[1:]), rows)


def main() -> None:
    print(__doc__)
    dataset = synthetic_cifar100(samples_per_class=4)

    print("Average reconstruction PSNR (dB) — lower is better defense:")
    print(psnr_matrix(dataset))
    print()
    print("Proposition 1 diagnostics (protected fraction / mean Jaccard):")
    print(overlap_matrix(dataset))
    print(
        "\nReading: RTF's bins depend only on the mean pixel value, which "
        "every OASIS transform preserves — protected fraction 1.0 and "
        "uniform ~16 dB.  CAH's random traps are invariant to nothing, so "
        "protection is statistical: combining transforms (MR+SH) raises "
        "trap occupancy and pushes the PSNR floor down, exactly the "
        "paper's Fig. 6 story."
    )


if __name__ == "__main__":
    main()
