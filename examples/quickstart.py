"""Quickstart: one dishonest-server round, with and without OASIS.

Builds a CIFAR100-style dataset, lets a dishonest server run the
Robbing-the-Fed attack against one client batch, and shows what the server
recovers — first without any defense (verbatim images), then with OASIS
major-rotation augmentation (unrecognizable overlaps).  Finally assembles
a scenario-rich federation (non-IID shards, client sampling, dropout,
robust aggregation) through ``FederationConfig`` and runs it end to end.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.attacks import ImprintedModel, RTFAttack
from repro.data import make_synthetic_dataset, synthetic_cifar100
from repro.defense import OasisDefense
from repro.experiments import render_ascii_image, side_by_side
from repro.fl import FederatedSimulation, FederationConfig, compute_batch_gradients
from repro.metrics import average_attack_psnr, best_match_psnr
from repro.nn import MLP, CrossEntropyLoss

BATCH_SIZE = 8
NUM_NEURONS = 500
SEED = 7


def run_attack(attack, model, images, labels, defense=None):
    """One client update on the malicious model; return reconstructions."""
    if defense is not None:
        images, labels = defense.expand_batch(images, labels)
    gradients, _ = compute_batch_gradients(
        model, CrossEntropyLoss(), images, labels
    )
    return attack.reconstruct(gradients)


def main() -> None:
    print(__doc__)
    dataset = synthetic_cifar100(samples_per_class=4)
    rng = np.random.default_rng(SEED)
    images, labels = dataset.sample_batch(BATCH_SIZE, rng)

    # The dishonest server crafts the malicious imprint layer.
    model = ImprintedModel(
        dataset.image_shape, NUM_NEURONS, dataset.num_classes,
        rng=np.random.default_rng(SEED),
    )
    attack = RTFAttack(NUM_NEURONS)
    attack.calibrate_from_public_data(dataset.images[:200])
    attack.craft(model)

    # --- Without OASIS: the batch leaks verbatim. -----------------------
    result = run_attack(attack, model, images, labels)
    psnr_without = average_attack_psnr(images, result.images)
    print(f"\nWithout OASIS: {len(result)} reconstructions, "
          f"average PSNR = {psnr_without:.1f} dB  (>100 dB = verbatim copy)")

    # --- With OASIS (major rotation): only overlaps come out. -----------
    defense = OasisDefense("MR")
    protected = run_attack(attack, model, images, labels, defense=defense)
    psnr_with = average_attack_psnr(images, protected.images)
    print(f"With OASIS-MR: {len(protected)} reconstructions, "
          f"average PSNR = {psnr_with:.1f} dB  (~15-20 dB = unrecognizable)")

    # --- Show one original next to its best-matching reconstruction. ----
    original = images[0]
    score, _ = best_match_psnr(
        protected.images, original
    ) if len(protected.images) else (0.0, 0)
    best = max(
        protected.images,
        key=lambda recon: best_match_psnr(images[:1], recon)[0],
    )
    print("\nOriginal (left) vs best reconstruction under OASIS (right):")
    print(
        side_by_side(
            render_ascii_image(original, width=30),
            render_ascii_image(best, width=30),
        )
    )
    print(f"\nOASIS reduced the attack's PSNR by "
          f"{psnr_without - psnr_with:.1f} dB on this batch.")

    # --- A scenario-rich federation via FederationConfig. ----------------
    run_scenario_federation()


def run_scenario_federation() -> None:
    """Run a non-IID, partially participating federation for a few rounds."""
    print("\nScenario federation: 16 clients, Dirichlet(0.5) label skew, "
          "8 sampled/round, 20% dropout, trimmed-mean aggregation")
    fed_data = make_synthetic_dataset(
        num_classes=4, samples_per_class=16, image_size=12, seed=SEED, name="fed"
    )
    config = FederationConfig(
        num_clients=16,
        clients_per_round=8,
        batch_size=4,
        partition="dirichlet",
        dirichlet_alpha=0.5,
        dropout_rate=0.2,
        aggregator="trimmed_mean",
        learning_rate=0.1,
        seed=SEED,
    )
    simulation = FederatedSimulation(
        fed_data,
        lambda: MLP([fed_data.flat_dim, 32, fed_data.num_classes],
                    rng=np.random.default_rng(SEED)),
        config,
    )
    for record in simulation.run(5):
        print(f"  round {record.round_index}: "
              f"{len(record.participant_ids)}/{record.num_selected} arrived "
              f"(dropped {record.dropped_ids or 'none'}), "
              f"loss {record.mean_loss:.3f}, "
              f"aggregator {record.aggregator}")
    print("  ... 55 more rounds ...")
    simulation.run(55)
    accuracy = simulation.evaluate(fed_data)
    print(f"  global model accuracy after 60 rounds: {accuracy:.2f}")


if __name__ == "__main__":
    main()
