"""DP-SGD versus OASIS: the privacy/utility trade-off motivating the paper.

The paper's Secs. I and V argue that DP-SGD (Abadi et al.) is the wrong
tool against active reconstruction: per-example clipping cannot stop
gradient inversion at all (Eq. 6 is invariant to per-example rescaling),
and the Gaussian noise that does stop it perturbs every honest training
step.  OASIS reaches the low-PSNR regime without touching gradients.

This example sweeps the DP-SGD noise multiplier z (clip C fixed) against
the RTF attack, trains a federated model at each level, and prints the
trade-off table with OASIS as the final row.

Run:  python examples/dp_tradeoff.py
"""

from __future__ import annotations

import numpy as np

from repro.data import make_synthetic_dataset, train_test_split
from repro.defense import DPSGDDefense, OasisDefense
from repro.experiments import format_table, run_attack_trial
from repro.fl import FederatedSimulation, FederationConfig
from repro.nn import MLP

CLIP_NORM = 0.05
NOISE_MULTIPLIERS = (0.0, 0.01, 0.1, 1.0)
SEED = 13


def attack_psnr(dataset, defense):
    trial = run_attack_trial(dataset, "rtf", 8, 200, defense=defense, seed=SEED)
    return trial.average_psnr


def federated_accuracy(train, test, defense):
    def factory():
        return MLP([train.flat_dim, 64, train.num_classes],
                   rng=np.random.default_rng(SEED))

    simulation = FederatedSimulation(
        train,
        factory,
        FederationConfig(num_clients=4, batch_size=8, learning_rate=0.1, seed=SEED),
        defense=defense,
    )
    simulation.run(80)
    return simulation.evaluate(test)


def main() -> None:
    print(__doc__)
    dataset = make_synthetic_dataset(
        num_classes=6, samples_per_class=30, image_size=16, seed=SEED, name="dp-study"
    )
    train, test = train_test_split(dataset, 0.2, seed=SEED)

    rows = []
    for z in NOISE_MULTIPLIERS:
        defense = DPSGDDefense(clip_norm=CLIP_NORM, noise_multiplier=z)
        label = f"DP-SGD C={CLIP_NORM}, z={z:g}" + ("  (clip only)" if z == 0 else "")
        rows.append(
            [
                label,
                f"{attack_psnr(dataset, defense):.1f}",
                f"{federated_accuracy(train, test, defense):.2%}",
            ]
        )
    oasis = OasisDefense("MR")
    rows.append(
        [
            "OASIS (MR)",
            f"{attack_psnr(dataset, oasis):.1f}",
            f"{federated_accuracy(train, test, oasis):.2%}",
        ]
    )
    no_defense_acc = federated_accuracy(train, test, None)
    rows.append(["no defense", f"{attack_psnr(dataset, None):.1f}",
                 f"{no_defense_acc:.2%}"])
    print(format_table(["defense", "attack PSNR (dB)", "test accuracy"], rows))
    print(
        "\nReading: clipping alone (z=0) leaves the attack at full power — "
        "Eq. 6 divides two gradients of the same sample, so per-example "
        "rescaling cancels — while DP-grade clip norms already slow honest "
        "training badly.  Adding noise (z>0) finally kills the "
        "reconstruction but keeps the utility cost.  OASIS reaches low "
        "PSNR with the gradients untouched and full accuracy."
    )


if __name__ == "__main__":
    main()
