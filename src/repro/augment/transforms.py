"""Image transformations implementing Eqs. 2-5 of the OASIS paper.

All transforms operate on a single image in (C, H, W) float layout with
pixels in [0, 1] and return a new array of the same shape.

Geometric conventions:

- Rotation (Eq. 2) and shearing (Eq. 5) use *inverse mapping* about the
  image centre with nearest-neighbour sampling; source coordinates falling
  outside the canvas read as 0 (black), as in torchvision's default.
- Major rotations (multiples of 90 degrees) are computed with exact array
  rotations (``np.rot90``), which makes them lossless permutations of the
  pixel grid.  This property is load-bearing: the paper's explanation of why
  major rotation defeats RTF is that it "does not change the average of
  pixel values" (Sec. IV-B) — a permutation preserves the mean exactly.
- Flips (Eqs. 3-4) are exact axis reversals, also mean-preserving.
"""

from __future__ import annotations

import numpy as np


def _inverse_map(
    image: np.ndarray,
    matrix: np.ndarray,
    preserve_mean: bool = True,
) -> np.ndarray:
    """Sample ``image`` through the inverse affine ``matrix`` about centre.

    For each output pixel (i, j) in centred coordinates, the source location
    is ``matrix @ (i, j)``; nearest-neighbour sampling.  Out-of-canvas
    pixels are filled with the per-channel image mean (the raw-pixel
    equivalent of the zero-fill used on *normalized* images in the paper's
    PyTorch pipeline, where 0 is the dataset mean).

    With ``preserve_mean`` (default) the result is additionally shifted by
    a tiny constant so its global mean equals the input's exactly.  This is
    the property the paper's defense analysis relies on ("it does not
    change the average of pixel values", Sec. IV-B): the RTF measurement of
    a transformed copy must match its original so both activate the same
    neuron set (Proposition 1).  The shift is bounded by the lost-corner
    deviation (well under 1% of the pixel range) and is imperceptible.
    """
    channels, height, width = image.shape
    centre_i = (height - 1) / 2.0
    centre_j = (width - 1) / 2.0
    ii, jj = np.mgrid[0:height, 0:width].astype(np.float64)
    ci = ii - centre_i
    cj = jj - centre_j
    src_i = matrix[0, 0] * ci + matrix[0, 1] * cj + centre_i
    src_j = matrix[1, 0] * ci + matrix[1, 1] * cj + centre_j
    src_i = np.rint(src_i).astype(np.int64)
    src_j = np.rint(src_j).astype(np.int64)
    inside = (src_i >= 0) & (src_i < height) & (src_j >= 0) & (src_j < width)
    src_i_clipped = np.clip(src_i, 0, height - 1)
    src_j_clipped = np.clip(src_j, 0, width - 1)
    out = image[:, src_i_clipped, src_j_clipped].astype(np.float64)
    channel_fill = image.reshape(channels, -1).mean(axis=1)
    out = np.where(inside[None, :, :], out, channel_fill[:, None, None])
    if preserve_mean:
        out += float(image.mean()) - out.mean()
    return out.astype(image.dtype, copy=False)


def rotate(image: np.ndarray, degrees: float, preserve_mean: bool = True) -> np.ndarray:
    """Rotate by ``degrees`` (Eq. 2): I'(i,j) = I(i cos t - j sin t, i sin t + j cos t).

    Multiples of 90 degrees use the exact grid rotation, preserving the
    pixel multiset (and hence the mean) bit-for-bit; other angles use
    inverse mapping with mean fill (see :func:`_inverse_map`).
    """
    degrees = degrees % 360.0
    if np.isclose(degrees % 90.0, 0.0):
        quarter_turns = int(round(degrees / 90.0)) % 4
        return np.rot90(image, k=quarter_turns, axes=(1, 2)).copy()
    theta = np.deg2rad(degrees)
    # Inverse of a rotation by theta is a rotation by -theta.
    matrix = np.array(
        [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
    )
    return _inverse_map(image, matrix, preserve_mean=preserve_mean)


def horizontal_flip(image: np.ndarray) -> np.ndarray:
    """Reflect on the y-axis (Eq. 3): I'(i, j) = I(-i, j) in width coords."""
    return np.flip(image, axis=2).copy()


def vertical_flip(image: np.ndarray) -> np.ndarray:
    """Reflect on the x-axis (Eq. 4): I'(i, j) = I(i, -j) in height coords."""
    return np.flip(image, axis=1).copy()


def shear(image: np.ndarray, factor: float, preserve_mean: bool = True) -> np.ndarray:
    """Shear (Eq. 5): I'(i, j) = I(i + mu * j, j) about the image centre."""
    matrix = np.array([[1.0, factor], [0.0, 1.0]])
    return _inverse_map(image, matrix, preserve_mean=preserve_mean)


class Transform:
    """A named, parameterised image transformation."""

    name = "identity"

    def __call__(self, image: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Identity(Transform):
    name = "identity"

    def __call__(self, image: np.ndarray) -> np.ndarray:
        return image.copy()


class Rotate(Transform):
    def __init__(self, degrees: float, preserve_mean: bool = True) -> None:
        self.degrees = float(degrees)
        self.preserve_mean = preserve_mean
        self.name = f"rotate_{int(degrees)}"

    def __call__(self, image: np.ndarray) -> np.ndarray:
        return rotate(image, self.degrees, preserve_mean=self.preserve_mean)

    def __repr__(self) -> str:
        return f"Rotate({self.degrees})"


class HorizontalFlip(Transform):
    name = "hflip"

    def __call__(self, image: np.ndarray) -> np.ndarray:
        return horizontal_flip(image)


class VerticalFlip(Transform):
    name = "vflip"

    def __call__(self, image: np.ndarray) -> np.ndarray:
        return vertical_flip(image)


class Shear(Transform):
    def __init__(self, factor: float, preserve_mean: bool = True) -> None:
        self.factor = float(factor)
        self.preserve_mean = preserve_mean
        self.name = f"shear_{factor}"

    def __call__(self, image: np.ndarray) -> np.ndarray:
        return shear(image, self.factor, preserve_mean=self.preserve_mean)

    def __repr__(self) -> str:
        return f"Shear({self.factor})"


class Compose(Transform):
    """Apply transforms in sequence (left to right)."""

    def __init__(self, *transforms: Transform) -> None:
        self.transforms = transforms
        self.name = "+".join(t.name for t in transforms)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        out = image
        for transform in self.transforms:
            out = transform(out)
        return out

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.transforms)
        return f"Compose({inner})"
