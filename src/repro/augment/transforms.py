"""Image transformations implementing Eqs. 2-5 of the OASIS paper.

All transforms operate on a single image in (C, H, W) float layout with
pixels in [0, 1] and return a new array of the same shape.  Every
:class:`Transform` additionally exposes :meth:`Transform.apply_batch`, a
vectorized path over whole ``(B, C, H, W)`` batches that produces the same
output as mapping ``__call__`` over the batch — the affine source grid is
shared by every image, so it is computed once and gathered for all of them.
The batched path is what makes OASIS batch expansion scale to the
hundreds-of-clients rounds that large-scale attacks operate at.

Geometric conventions:

- Rotation (Eq. 2) and shearing (Eq. 5) use *inverse mapping* about the
  image centre with nearest-neighbour sampling; source coordinates falling
  outside the canvas read as 0 (black), as in torchvision's default.
- Major rotations (multiples of 90 degrees) are computed with exact array
  rotations (``np.rot90``), which makes them lossless permutations of the
  pixel grid.  This property is load-bearing: the paper's explanation of why
  major rotation defeats RTF is that it "does not change the average of
  pixel values" (Sec. IV-B) — a permutation preserves the mean exactly.
- Flips (Eqs. 3-4) are exact axis reversals, also mean-preserving.
"""

from __future__ import annotations

import numpy as np


def _inverse_map(
    image: np.ndarray,
    matrix: np.ndarray,
    preserve_mean: bool = True,
) -> np.ndarray:
    """Sample ``image`` through the inverse affine ``matrix`` about centre.

    For each output pixel (i, j) in centred coordinates, the source location
    is ``matrix @ (i, j)``; nearest-neighbour sampling.  Out-of-canvas
    pixels are filled with the per-channel image mean (the raw-pixel
    equivalent of the zero-fill used on *normalized* images in the paper's
    PyTorch pipeline, where 0 is the dataset mean).

    With ``preserve_mean`` (default) the result is additionally shifted by
    a tiny constant so its global mean equals the input's exactly.  This is
    the property the paper's defense analysis relies on ("it does not
    change the average of pixel values", Sec. IV-B): the RTF measurement of
    a transformed copy must match its original so both activate the same
    neuron set (Proposition 1).  The shift is bounded by the lost-corner
    deviation (well under 1% of the pixel range) and is imperceptible.
    """
    channels, height, width = image.shape
    src_i, src_j, inside = _source_grid(height, width, matrix)
    out = image[:, src_i, src_j].astype(np.float64)
    channel_fill = image.reshape(channels, -1).mean(axis=1)
    out = np.where(inside[None, :, :], out, channel_fill[:, None, None])
    if preserve_mean:
        out += float(image.mean()) - out.mean()
    return out.astype(image.dtype, copy=False)


def _source_grid(
    height: int, width: int, matrix: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shared inverse-mapping grid: (clipped src rows, clipped src cols, inside).

    The grid depends only on the canvas size and the affine matrix, never on
    pixel values, so a whole batch can reuse one grid — the core of the
    vectorized :meth:`Transform.apply_batch` path.
    """
    centre_i = (height - 1) / 2.0
    centre_j = (width - 1) / 2.0
    ii, jj = np.mgrid[0:height, 0:width].astype(np.float64)
    ci = ii - centre_i
    cj = jj - centre_j
    src_i = np.rint(matrix[0, 0] * ci + matrix[0, 1] * cj + centre_i).astype(np.int64)
    src_j = np.rint(matrix[1, 0] * ci + matrix[1, 1] * cj + centre_j).astype(np.int64)
    inside = (src_i >= 0) & (src_i < height) & (src_j >= 0) & (src_j < width)
    return (
        np.clip(src_i, 0, height - 1),
        np.clip(src_j, 0, width - 1),
        inside,
    )


def _inverse_map_batch(
    images: np.ndarray,
    matrix: np.ndarray,
    preserve_mean: bool = True,
) -> np.ndarray:
    """Batched :func:`_inverse_map`: one shared grid, one gather for all images.

    Produces the same values as mapping the scalar path over the batch (the
    per-image mean fill and mean-preserving shift are computed per image).
    """
    batch, channels, height, width = images.shape
    src_i, src_j, inside = _source_grid(height, width, matrix)
    # One flat gather for the whole batch (take on a 2-D view beats a
    # fancy double-index), then fill only the out-of-canvas pixels in
    # place instead of allocating a full np.where copy.
    flat_sources = (src_i * width + src_j).ravel()
    out = (
        images.reshape(batch * channels, height * width)
        .take(flat_sources, axis=1)
        .astype(np.float64, copy=False)
        .reshape(batch, channels, height, width)
    )
    outside = ~inside
    if outside.any():
        channel_fill = images.reshape(batch, channels, -1).mean(axis=2)
        out[:, :, outside] = channel_fill[:, :, None]
    if preserve_mean:
        shift = images.reshape(batch, -1).mean(axis=1) - out.reshape(batch, -1).mean(axis=1)
        out += shift[:, None, None, None]
    return out.astype(images.dtype, copy=False)


def _rotation_spec(degrees: float) -> "tuple[int | None, np.ndarray | None]":
    """Normalize an angle to (quarter_turns, None) or (None, inverse matrix).

    Exact multiples of 90 degrees become grid rotations; anything else
    becomes the inverse-mapping matrix.  Shared by the scalar and batched
    rotation paths so the two can never disagree on which regime an angle
    falls into.
    """
    degrees = degrees % 360.0
    if np.isclose(degrees % 90.0, 0.0):
        return int(round(degrees / 90.0)) % 4, None
    theta = np.deg2rad(degrees)
    # Inverse of a rotation by theta is a rotation by -theta.
    matrix = np.array(
        [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
    )
    return None, matrix


def rotate(image: np.ndarray, degrees: float, preserve_mean: bool = True) -> np.ndarray:
    """Rotate by ``degrees`` (Eq. 2): I'(i,j) = I(i cos t - j sin t, i sin t + j cos t).

    Multiples of 90 degrees use the exact grid rotation, preserving the
    pixel multiset (and hence the mean) bit-for-bit; other angles use
    inverse mapping with mean fill (see :func:`_inverse_map`).
    """
    quarter_turns, matrix = _rotation_spec(degrees)
    if quarter_turns is not None:
        return np.rot90(image, k=quarter_turns, axes=(1, 2)).copy()
    return _inverse_map(image, matrix, preserve_mean=preserve_mean)


def horizontal_flip(image: np.ndarray) -> np.ndarray:
    """Reflect on the y-axis (Eq. 3): I'(i, j) = I(-i, j) in width coords."""
    return np.flip(image, axis=2).copy()


def vertical_flip(image: np.ndarray) -> np.ndarray:
    """Reflect on the x-axis (Eq. 4): I'(i, j) = I(i, -j) in height coords."""
    return np.flip(image, axis=1).copy()


def shear(image: np.ndarray, factor: float, preserve_mean: bool = True) -> np.ndarray:
    """Shear (Eq. 5): I'(i, j) = I(i + mu * j, j) about the image centre."""
    matrix = np.array([[1.0, factor], [0.0, 1.0]])
    return _inverse_map(image, matrix, preserve_mean=preserve_mean)


class Transform:
    """A named, parameterised image transformation."""

    name = "identity"

    def __call__(self, image: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def apply_batch(self, images: np.ndarray) -> np.ndarray:
        """Transform a whole ``(B, C, H, W)`` batch at once.

        The base implementation maps :meth:`__call__` over the batch;
        subclasses override it with a vectorized path that produces the
        same output without the per-image Python loop.
        """
        return np.stack([self(image) for image in images])

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Identity(Transform):
    name = "identity"

    def __call__(self, image: np.ndarray) -> np.ndarray:
        return image.copy()

    def apply_batch(self, images: np.ndarray) -> np.ndarray:
        return images.copy()


class Rotate(Transform):
    def __init__(self, degrees: float, preserve_mean: bool = True) -> None:
        self.degrees = float(degrees)
        self.preserve_mean = preserve_mean
        self.name = f"rotate_{int(degrees)}"

    def __call__(self, image: np.ndarray) -> np.ndarray:
        return rotate(image, self.degrees, preserve_mean=self.preserve_mean)

    def apply_batch(self, images: np.ndarray) -> np.ndarray:
        quarter_turns, matrix = _rotation_spec(self.degrees)
        if quarter_turns is not None:
            return np.rot90(images, k=quarter_turns, axes=(2, 3)).copy()
        return _inverse_map_batch(images, matrix, preserve_mean=self.preserve_mean)

    def __repr__(self) -> str:
        return f"Rotate({self.degrees})"


class HorizontalFlip(Transform):
    name = "hflip"

    def __call__(self, image: np.ndarray) -> np.ndarray:
        return horizontal_flip(image)

    def apply_batch(self, images: np.ndarray) -> np.ndarray:
        return np.flip(images, axis=3).copy()


class VerticalFlip(Transform):
    name = "vflip"

    def __call__(self, image: np.ndarray) -> np.ndarray:
        return vertical_flip(image)

    def apply_batch(self, images: np.ndarray) -> np.ndarray:
        return np.flip(images, axis=2).copy()


class Shear(Transform):
    def __init__(self, factor: float, preserve_mean: bool = True) -> None:
        self.factor = float(factor)
        self.preserve_mean = preserve_mean
        self.name = f"shear_{factor}"

    def __call__(self, image: np.ndarray) -> np.ndarray:
        return shear(image, self.factor, preserve_mean=self.preserve_mean)

    def apply_batch(self, images: np.ndarray) -> np.ndarray:
        matrix = np.array([[1.0, self.factor], [0.0, 1.0]])
        return _inverse_map_batch(images, matrix, preserve_mean=self.preserve_mean)

    def __repr__(self) -> str:
        return f"Shear({self.factor})"


class Compose(Transform):
    """Apply transforms in sequence (left to right)."""

    def __init__(self, *transforms: Transform) -> None:
        self.transforms = transforms
        self.name = "+".join(t.name for t in transforms)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        out = image
        for transform in self.transforms:
            out = transform(out)
        return out

    def apply_batch(self, images: np.ndarray) -> np.ndarray:
        out = images
        for transform in self.transforms:
            out = transform.apply_batch(out)
        return out

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.transforms)
        return f"Compose({inner})"
