"""The paper's named transformation suites (Sec. IV-A, "OASIS Implementation").

A :class:`TransformSuite` maps one image to the *set* ``X'_t`` of its
transformed counterparts (Eq. 7).  The parameter choices are the paper's:

- Major rotation (MR): 90, 180, 270 degrees — three images.
- Minor rotation (mR): 30, 45, 60 degrees — three images.
- Shearing (SH): factors 0.55, 1.0, 0.9 — three images.
- Horizontal / vertical flip (HFlip / VFlip) — one image each.
- MR+SH: the union used against CAH (Fig. 6) — six images.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.augment.transforms import (
    HorizontalFlip,
    Rotate,
    Shear,
    Transform,
    VerticalFlip,
)

MAJOR_ANGLES = (90.0, 180.0, 270.0)
MINOR_ANGLES = (30.0, 45.0, 60.0)
SHEAR_FACTORS = (0.55, 1.0, 0.9)


class TransformSuite:
    """A named collection of transforms defining ``X'_t`` for each image."""

    def __init__(self, name: str, transforms: Sequence[Transform]) -> None:
        self.name = name
        self.transforms = tuple(transforms)
        if not self.transforms:
            raise ValueError("a transform suite needs at least one transform")

    def expand(self, image: np.ndarray) -> list[np.ndarray]:
        """Return the transformed counterparts X'_t of ``image`` (Eq. 7)."""
        return [transform(image) for transform in self.transforms]

    def expand_batch(self, images: np.ndarray) -> list[np.ndarray]:
        """Batched :meth:`expand`: one ``(B, C, H, W)`` block per transform.

        Uses each transform's vectorized
        :meth:`~repro.augment.Transform.apply_batch` path, so expanding a
        whole client batch costs one gather per transform instead of a
        Python loop over images.
        """
        return [transform.apply_batch(images) for transform in self.transforms]

    def __len__(self) -> int:
        return len(self.transforms)

    def __repr__(self) -> str:
        return f"TransformSuite({self.name!r}, {len(self.transforms)} transforms)"

    def __add__(self, other: "TransformSuite") -> "TransformSuite":
        """Union of two suites, e.g. MR + SH for the CAH defense (Fig. 6)."""
        return TransformSuite(
            f"{self.name}+{other.name}", self.transforms + other.transforms
        )


def major_rotation() -> TransformSuite:
    """The paper's MR suite: rotations by 90, 180, 270 degrees."""
    return TransformSuite("MR", [Rotate(angle) for angle in MAJOR_ANGLES])


def minor_rotation() -> TransformSuite:
    """The paper's mR suite: rotations by 30, 45, 60 degrees."""
    return TransformSuite("mR", [Rotate(angle) for angle in MINOR_ANGLES])


def shearing() -> TransformSuite:
    """The paper's SH suite: shear factors 0.55, 1.0, 0.9."""
    return TransformSuite("SH", [Shear(factor) for factor in SHEAR_FACTORS])


def horizontal_flip_suite() -> TransformSuite:
    """The paper's HFlip suite: one horizontal reflection (Eq. 3)."""
    return TransformSuite("HFlip", [HorizontalFlip()])


def vertical_flip_suite() -> TransformSuite:
    """The paper's VFlip suite: one vertical reflection (Eq. 4)."""
    return TransformSuite("VFlip", [VerticalFlip()])


def major_rotation_shearing() -> TransformSuite:
    """The MR+SH integration used against CAH (paper Fig. 6)."""
    return major_rotation() + shearing()


_REGISTRY = {
    "MR": major_rotation,
    "mR": minor_rotation,
    "SH": shearing,
    "HFlip": horizontal_flip_suite,
    "VFlip": vertical_flip_suite,
    "MR+SH": major_rotation_shearing,
}

# The orderings used on the x-axes of the paper's figures.
FIGURE5_SUITES = ("MR", "mR", "SH", "HFlip", "VFlip")
FIGURE6_SUITES = ("SH", "MR", "MR+SH")
FIGURE13_SUITES = ("MR", "mR", "SH", "HFlip", "VFlip")


class UnknownSuiteError(KeyError):
    """The requested transformation suite name is not registered.

    A ``KeyError`` subclass (the historical contract of
    :func:`suite_by_name`) whose message lists the available suites, so a
    typo'd name never surfaces as an opaque lookup failure.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.suite_name = name

    def __str__(self) -> str:
        return (
            f"unknown transform suite {self.suite_name!r}; available "
            f"suites: {', '.join(_REGISTRY)}"
        )


def suite_by_name(name: str) -> TransformSuite:
    """Look up a paper-named suite: MR, mR, SH, HFlip, VFlip, MR+SH.

    Unknown names raise :class:`UnknownSuiteError` listing what exists.
    """
    if name not in _REGISTRY:
        raise UnknownSuiteError(name)
    return _REGISTRY[name]()


def available_suites() -> tuple[str, ...]:
    """Names of the registered paper suites, in registry order."""
    return tuple(_REGISTRY)
