"""Pluggable attack registry: name -> factory with declared config knobs.

The sweep engine grids over attacks the same way it grids over
transformation suites and participation scenarios, so the attack axis must
be *data*, not a hard-coded if/elif chain.  Each attack registers an
:class:`AttackSpec` — its factory, which global model it targets, and the
config knobs it exposes — and every consumer (``SweepRunner``, the CLI's
``--attacks`` flag, the per-figure harnesses, tests) resolves attacks
through :func:`make_attack`.

Adding an attack to the zoo:

1. Implement :class:`~repro.attacks.base.ActiveReconstructionAttack`
   (``craft`` + ``reconstruct``; optionally ``calibrate_from_public_data``,
   and the large-scale hooks ``craft_for_client`` /
   ``reconstruct_per_client`` — see :mod:`repro.attacks.loki`).
2. Register it::

       register_attack(AttackSpec(
           name="myattack",
           factory=_make_myattack,
           model="imprint",
           description="one line for --help and docs",
           knobs=(AttackKnob("strength", 1.0, "what it does"),),
       ))

3. It is now reachable from ``python -m repro.experiments.sweep
   --attacks myattack`` and every registry-driven test picks it up
   automatically.

Register at import time, in a module that parallel sweep workers also
import: under the ``spawn`` start method (the default off Linux) each
worker re-imports this registry fresh, so a registration executed only
in the parent process is invisible to workers and that attack's cells
fail with :class:`UnknownAttackError` despite a working serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.attacks.base import ActiveReconstructionAttack
from repro.attacks.cah import CAHAttack
from repro.attacks.linear import LinearModelInversion
from repro.attacks.loki import LOKIAttack
from repro.attacks.qbi import QBIAttack
from repro.attacks.rtf import RTFAttack


class AttackRegistryError(ValueError):
    """Base for registry misuse errors."""


class UnknownAttackError(AttackRegistryError):
    """The requested attack name is not registered."""


class DuplicateAttackError(AttackRegistryError):
    """An attack name is already registered (pass ``replace=True`` to allow)."""


@dataclass(frozen=True)
class AttackKnob:
    """One declared configuration knob of a registered attack."""

    name: str
    default: object
    description: str = ""


@dataclass(frozen=True)
class AttackSpec:
    """Everything the zoo knows about one attack.

    ``factory`` is called as ``factory(num_neurons, public_images, seed,
    **knobs)`` and must return a calibrated, ready-to-``craft`` attack.
    ``model`` names the global-model family the attack targets
    (``"imprint"`` for the malicious-layer attacks, ``"linear"`` for
    single-layer gradient inversion) so grid runners can build the right
    architecture per cell.  ``crafts_model`` is False for passive attacks
    that never modify parameters (nothing for client-side detection to
    flag).
    """

    name: str
    factory: Callable[..., ActiveReconstructionAttack]
    model: str = "imprint"
    crafts_model: bool = True
    description: str = ""
    knobs: tuple[AttackKnob, ...] = field(default_factory=tuple)

    def knob_names(self) -> set[str]:
        return {knob.name for knob in self.knobs}


_REGISTRY: dict[str, AttackSpec] = {}


def register_attack(spec: AttackSpec, replace: bool = False) -> AttackSpec:
    """Add ``spec`` to the zoo; duplicate names are an error unless replacing."""
    if not spec.name or not spec.name.isidentifier():
        raise AttackRegistryError(
            f"attack name {spec.name!r} must be a non-empty identifier"
        )
    if spec.name in _REGISTRY and not replace:
        raise DuplicateAttackError(
            f"attack {spec.name!r} is already registered; pass replace=True "
            "to overwrite it deliberately"
        )
    _REGISTRY[spec.name] = spec
    return spec


def unregister_attack(name: str) -> None:
    """Remove an attack from the zoo (plugin teardown / test hygiene)."""
    if name not in _REGISTRY:
        raise UnknownAttackError(f"cannot unregister unknown attack {name!r}")
    del _REGISTRY[name]


def attack_spec(name: str) -> AttackSpec:
    """Look up a registered attack, with a helpful unknown-name error."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownAttackError(
            f"unknown attack {name!r}; registered attacks: "
            f"{', '.join(available_attacks())}"
        ) from None


def available_attacks() -> tuple[str, ...]:
    """All registered attack names, in registration order."""
    return tuple(_REGISTRY)


def make_attack(
    name: str,
    num_neurons: int,
    public_images: Optional[np.ndarray] = None,
    seed: int = 0,
    **knobs,
) -> ActiveReconstructionAttack:
    """Build a calibrated attack from the zoo.

    ``knobs`` must be declared by the attack's spec — an undeclared knob
    is a configuration typo, and silently dropping it would run a
    different experiment than the one asked for.
    """
    spec = attack_spec(name)
    unknown = set(knobs) - spec.knob_names()
    if unknown:
        raise AttackRegistryError(
            f"unknown knob(s) {sorted(unknown)} for attack {name!r}; "
            f"declared knobs: {sorted(spec.knob_names())}"
        )
    return spec.factory(num_neurons, public_images, seed, **knobs)


def _calibrated(attack, public_images):
    if public_images is not None and len(public_images):
        attack.calibrate_from_public_data(public_images)
    return attack


def _make_rtf(num_neurons, public_images, seed, **knobs):
    return _calibrated(RTFAttack(num_neurons, **knobs), public_images)


def _make_cah(num_neurons, public_images, seed, **knobs):
    return _calibrated(CAHAttack(num_neurons, seed=seed, **knobs), public_images)


def _make_qbi(num_neurons, public_images, seed, **knobs):
    return _calibrated(QBIAttack(num_neurons, seed=seed, **knobs), public_images)


def _make_loki(num_neurons, public_images, seed, **knobs):
    return _calibrated(LOKIAttack(num_neurons, seed=seed, **knobs), public_images)


def _make_linear(num_neurons, public_images, seed, **knobs):
    # Nothing to craft or calibrate: the inversion reads honest gradients.
    return LinearModelInversion(**knobs)


register_attack(AttackSpec(
    name="rtf",
    factory=_make_rtf,
    description=(
        "Robbing the Fed: one measurement direction, quantile-staggered "
        "biases, successive-difference bin inversion (Fowl et al. 2022)"
    ),
    knobs=(
        AttackKnob("measurement_mean", 0.5, "prior mean of the measurement"),
        AttackKnob("measurement_std", 0.1, "prior std of the measurement"),
        AttackKnob("scale", 1.0, "crafted weight magnitude"),
        AttackKnob("signal_tolerance", 1e-10, "empty-bin threshold"),
        AttackKnob(
            "denominator_floor", None,
            "clamp for near-empty bin denominators (noise amplification cap)",
        ),
    ),
))

register_attack(AttackSpec(
    name="cah",
    factory=_make_cah,
    description=(
        "Curious Abandon Honesty: random trap weights at a fixed small "
        "activation probability (Boenisch et al. 2023)"
    ),
    knobs=(
        AttackKnob("activation_probability", 0.02, "target P(trap fires)"),
        AttackKnob("pixel_mean", 0.5, "Gaussian-fallback pixel mean"),
        AttackKnob("pixel_std", 0.25, "Gaussian-fallback pixel std"),
        AttackKnob("signal_tolerance", 1e-10, "dead-trap threshold"),
        AttackKnob("deduplicate", True, "collapse near-identical outputs"),
    ),
))

register_attack(AttackSpec(
    name="linear",
    factory=_make_linear,
    model="linear",
    crafts_model=False,
    description=(
        "Single-layer logistic-model gradient inversion, class row by "
        "class row (paper Sec. IV-D)"
    ),
    knobs=(
        AttackKnob("signal_tolerance", 1e-10, "absent-class threshold"),
    ),
))

register_attack(AttackSpec(
    name="qbi",
    factory=_make_qbi,
    description=(
        "Quantile-based bias initialization: trap biases at the empirical "
        "1-1/B quantile, maximizing sole activations (Nowak et al. 2024)"
    ),
    knobs=(
        AttackKnob("expected_batch_size", 8, "batch size B the server expects"),
        AttackKnob("pixel_mean", 0.5, "Gaussian-fallback pixel mean"),
        AttackKnob("pixel_std", 0.25, "Gaussian-fallback pixel std"),
        AttackKnob("signal_tolerance", 1e-10, "dead-trap threshold"),
        AttackKnob("deduplicate", True, "collapse near-identical outputs"),
    ),
))

register_attack(AttackSpec(
    name="loki",
    factory=_make_loki,
    description=(
        "LOKI-style scaled imprint: per-client-disjoint trap blocks "
        "recovered from the FedAvg aggregate (Zhao et al. 2023)"
    ),
    knobs=(
        AttackKnob("activation_probability", 0.05, "per-block P(trap fires)"),
        AttackKnob("scale", 1.0, "block amplification (stealth/robustness)"),
        AttackKnob("pixel_mean", 0.5, "Gaussian-fallback pixel mean"),
        AttackKnob("pixel_std", 0.25, "Gaussian-fallback pixel std"),
        AttackKnob("signal_tolerance", 1e-10, "dead-trap threshold"),
        AttackKnob("deduplicate", True, "collapse near-identical outputs"),
    ),
))
