"""Curious Abandon Honesty (CAH) — Boenisch et al., EuroS&P 2023.

The server fills the malicious layer with *trap weights*: independent random
directions whose biases are tuned so that each attacked neuron fires for
only a small fraction of inputs.  When a neuron is activated by exactly one
sample in the batch, the summed gradients of that neuron equal the sample's
own gradients and Eq. 6 inverts them verbatim:

    x_t = (dL/db_i)^(-1) * dL/dW_i

Because the trap directions are random, no single image transformation
aligns with them: a rotated copy of ``x`` has an essentially independent
projection, so (unlike RTF's mean-pixel bins) OASIS with one transform only
reduces *the probability* of sole activations.  Expanding the batch with
several transforms (the paper's MR+SH integration, Fig. 6) drives that
probability down — which is exactly the behaviour this implementation
reproduces.

The trap mechanics (random directions, quantile-placed biases, Eq. 6
inversion of fired neurons, degenerate-calibration guards) live in
:mod:`repro.attacks.traps` and are shared with the QBI and LOKI attacks;
CAH's distinguishing choice is a *fixed small* activation probability.
"""

from __future__ import annotations

from repro.attacks.traps import TrapImprintAttack


class CAHAttack(TrapImprintAttack):
    """Trap-weight imprint attack with tunable activation probability.

    Parameters
    ----------
    num_neurons:
        Number of attacked neurons ``n``.
    activation_probability:
        Target P(neuron fires | random input).  The CAH recipe fixes this
        at a small constant (default 0.02) so that at small batch sizes a
        firing trap usually caught a single sample (near-perfect
        reconstruction) while larger batches raise trap occupancy and
        degrade the attack — the Fig. 4 trend.
    pixel_mean / pixel_std:
        The server's prior on per-pixel statistics, used to place the bias
        at the right projection quantile.  Calibrate from public data with
        :meth:`calibrate_from_public_data`.
    seed:
        Seed for drawing the trap directions (the server chooses these).
    """

    name = "cah"

    def __init__(
        self,
        num_neurons: int,
        activation_probability: float = 0.02,
        pixel_mean: float = 0.5,
        pixel_std: float = 0.25,
        seed: int = 0,
        signal_tolerance: float = 1e-10,
        deduplicate: bool = True,
    ) -> None:
        super().__init__(
            num_neurons,
            activation_probability,
            pixel_mean=pixel_mean,
            pixel_std=pixel_std,
            seed=seed,
            signal_tolerance=signal_tolerance,
            deduplicate=deduplicate,
        )
