"""Curious Abandon Honesty (CAH) — Boenisch et al., EuroS&P 2023.

The server fills the malicious layer with *trap weights*: independent random
directions whose biases are tuned so that each attacked neuron fires for
only a small fraction of inputs.  When a neuron is activated by exactly one
sample in the batch, the summed gradients of that neuron equal the sample's
own gradients and Eq. 6 inverts them verbatim:

    x_t = (dL/db_i)^(-1) * dL/dW_i

Because the trap directions are random, no single image transformation
aligns with them: a rotated copy of ``x`` has an essentially independent
projection, so (unlike RTF's mean-pixel bins) OASIS with one transform only
reduces *the probability* of sole activations.  Expanding the batch with
several transforms (the paper's MR+SH integration, Fig. 6) drives that
probability down — which is exactly the behaviour this implementation
reproduces.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import stats

from repro.attacks.base import ActiveReconstructionAttack, ReconstructionResult, clip_to_image
from repro.attacks.imprint import ImprintedModel, extract_imprint_gradients


class CAHAttack(ActiveReconstructionAttack):
    """Trap-weight imprint attack with tunable activation probability.

    Parameters
    ----------
    num_neurons:
        Number of attacked neurons ``n``.
    activation_probability:
        Target P(neuron fires | random input).  The CAH recipe fixes this
        at a small constant (default 0.02) so that at small batch sizes a
        firing trap usually caught a single sample (near-perfect
        reconstruction) while larger batches raise trap occupancy and
        degrade the attack — the Fig. 4 trend.
    pixel_mean / pixel_std:
        The server's prior on per-pixel statistics, used to place the bias
        at the right projection quantile.  Calibrate from public data with
        :meth:`calibrate_from_public_data`.
    seed:
        Seed for drawing the trap directions (the server chooses these).
    """

    name = "cah"

    def __init__(
        self,
        num_neurons: int,
        activation_probability: float = 0.02,
        pixel_mean: float = 0.5,
        pixel_std: float = 0.25,
        seed: int = 0,
        signal_tolerance: float = 1e-10,
        deduplicate: bool = True,
    ) -> None:
        if not 0.0 < activation_probability < 1.0:
            raise ValueError("activation_probability must be in (0, 1)")
        self.num_neurons = num_neurons
        self.activation_probability = activation_probability
        self.pixel_mean = pixel_mean
        self.pixel_std = pixel_std
        self.seed = seed
        self.signal_tolerance = signal_tolerance
        self.deduplicate = deduplicate
        self._image_shape: Optional[tuple[int, int, int]] = None
        self._public_flat: Optional[np.ndarray] = None

    def calibrate_from_public_data(self, public_images: np.ndarray) -> None:
        """Calibrate against a public dataset.

        Keeps the flattened public images so :meth:`craft` can place each
        trap neuron's bias at the *empirical* (1 - p) quantile of that
        neuron's projection distribution — the data-driven tuning the CAH
        authors describe, and considerably sharper than a Gaussian moment
        fit when pixels are spatially correlated.
        """
        flat = public_images.reshape(len(public_images), -1).astype(np.float64)
        self._public_flat = flat
        self.pixel_mean = float(flat.mean())
        self.pixel_std = float(max(flat.std(), 1e-6))

    def craft(self, model: ImprintedModel) -> None:
        if model.num_neurons != self.num_neurons:
            raise ValueError(
                f"model has {model.num_neurons} attacked neurons, "
                f"attack expects {self.num_neurons}"
            )
        self._image_shape = model.input_shape
        d = model.flat_dim
        rng = np.random.default_rng(self.seed)
        # Unit-variance random directions: rows w_i ~ N(0, 1/d) entrywise.
        weight = rng.standard_normal((self.num_neurons, d)) / np.sqrt(d)
        if self._public_flat is not None and len(self._public_flat) >= 8:
            # Empirical per-neuron quantile of the projection distribution.
            projections = weight @ self._public_flat.T  # (n, num_public)
            thresholds = np.quantile(
                projections, 1.0 - self.activation_probability, axis=1
            )
            bias = -thresholds
        else:
            # Gaussian moment fallback assuming iid pixels (mean m, std s):
            #   proj mean_i = m * sum(w_i),  proj std_i ~= s * ||w_i||.
            row_sums = weight.sum(axis=1)
            row_norms = np.linalg.norm(weight, axis=1)
            z = stats.norm.ppf(1.0 - self.activation_probability)
            bias = -(self.pixel_mean * row_sums + z * self.pixel_std * row_norms)
        model.set_imprint_parameters(weight, bias)

    def reconstruct(self, gradients: dict[str, np.ndarray]) -> ReconstructionResult:
        if self._image_shape is None:
            raise RuntimeError("craft() must run before reconstruct()")
        weight_grad, bias_grad = extract_imprint_gradients(gradients)
        active = np.abs(bias_grad) > self.signal_tolerance
        indices = np.flatnonzero(active)
        if indices.size == 0:
            empty = np.empty((0,) + self._image_shape)
            return ReconstructionResult(images=empty, neuron_indices=[])
        flat = weight_grad[indices] / bias_grad[indices, None]
        if self.deduplicate and len(flat) > 1:
            flat, indices = _deduplicate(flat, indices)
        return ReconstructionResult(
            images=clip_to_image(flat, self._image_shape),
            neuron_indices=[int(i) for i in indices],
            raw=flat,
        )


def _deduplicate(
    flat: np.ndarray, indices: np.ndarray, similarity: float = 0.9999
) -> tuple[np.ndarray, np.ndarray]:
    """Collapse near-identical reconstructions (many traps catch the same x).

    Greedy pass in neuron order; keeps the first representative of each
    cluster of cosine-similar vectors.  The pairwise similarities are
    computed as one Gram matrix so the pass stays fast for hundreds of
    candidate reconstructions.
    """
    norms = np.linalg.norm(flat, axis=1)
    norms = np.where(norms < 1e-12, 1.0, norms)
    normalized = flat / norms[:, None]
    gram = normalized @ normalized.T
    duplicate_of_earlier_kept = np.zeros(len(flat), dtype=bool)
    keep: list[int] = []
    for row in range(len(flat)):
        if duplicate_of_earlier_kept[row]:
            continue
        keep.append(row)
        duplicate_of_earlier_kept |= gram[row] > similarity
    keep_array = np.array(keep, dtype=np.int64)
    return flat[keep_array], indices[keep_array]
