"""LOKI-style scaled multi-client imprint — Zhao et al., 2023.

LOKI scales the dishonest-server threat model up from one victim to the
whole fleet: the server carves the malicious layer into **per-client
disjoint neuron blocks** and sends each client a model whose imprint layer
is live only in *its* block (the other rows are zeroed with strongly
negative biases, so they never fire and contribute exactly zero gradient).
Every client's data then lands in its own parameter region, and because
FedAvg is a linear reduction over disjoint supports, the *aggregate*
update still contains each client's block verbatim (up to the aggregation
weight, which Eq. 6's ratio cancels).  The server therefore reconstructs
across aggregation — the regime where secure aggregation was supposed to
protect individual updates.

Within a block the construction is the shared trap-weight recipe
(:mod:`repro.attacks.traps`): random directions, biases at the empirical
activation quantile, Eq. 6 inversion of fired neurons.  The ``scale``
knob multiplies the crafted block (weights *and* biases, preserving the
activation pattern) so the malicious gradients dominate aggregation noise
— LOKI's "scaled imprint" trade of stealth for robustness.

Block contents are keyed by *block index* through
:func:`repro.utils.rng.rng_for`, never by assignment order, so two
servers assigning the same fleet produce identical crafted models
regardless of client enumeration order — the same fingerprint-keyed
determinism discipline the sweep engine relies on.

Integration points (see :class:`repro.fl.server.DishonestServer`):

- :attr:`per_client_crafting` → the server calls
  :meth:`craft_for_client` per participant instead of broadcasting one
  shared crafted model.
- :attr:`reconstructs_from_aggregate` → the server skips per-update
  inversion and calls :meth:`reconstruct_per_client` on the FedAvg
  aggregate after the round closes.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.attacks.base import ReconstructionResult
from repro.attacks.imprint import ImprintedModel, extract_imprint_gradients
from repro.attacks.traps import (
    NO_SIGNAL_REASON,
    TrapImprintAttack,
    calibration_degeneracy,
    trap_biases,
    trap_weight_rows,
)
from repro.utils.rng import rng_for

# Bias given to neurons outside a client's block: with zero weight rows the
# pre-activation equals the bias, so anything negative keeps the ReLU dark
# and the gradient exactly zero; strongly negative also survives benign
# fine-tuning drift.
DISABLED_BIAS = -1e6


class LOKIAttack(TrapImprintAttack):
    """Per-client-disjoint trap blocks recovered from the FedAvg aggregate.

    Parameters
    ----------
    num_neurons:
        Total attacked neurons ``n`` across the fleet; each assigned
        client receives a contiguous block of ``~n / num_clients``.
    activation_probability:
        Per-trap firing probability within a block (the CAH-style knob).
    scale:
        Multiplier on each crafted block (weights and biases together, so
        the activation pattern is unchanged) making the malicious
        gradients dominate the aggregate.
    seed:
        Base seed; block ``k``'s trap directions derive from
        ``(seed, "block-k")`` regardless of which client owns the block.
    """

    name = "loki"
    per_client_crafting = True
    reconstructs_from_aggregate = True

    def __init__(
        self,
        num_neurons: int,
        activation_probability: float = 0.05,
        scale: float = 1.0,
        pixel_mean: float = 0.5,
        pixel_std: float = 0.25,
        seed: int = 0,
        signal_tolerance: float = 1e-10,
        deduplicate: bool = True,
    ) -> None:
        if scale <= 0.0:
            raise ValueError("scale must be positive")
        super().__init__(
            num_neurons,
            activation_probability,
            pixel_mean=pixel_mean,
            pixel_std=pixel_std,
            seed=seed,
            signal_tolerance=signal_tolerance,
            deduplicate=deduplicate,
        )
        self.scale = scale
        self._blocks: dict[int, tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # Fleet assignment
    # ------------------------------------------------------------------
    def assign_clients(self, client_ids: Sequence[int]) -> None:
        """Carve the neuron budget into one contiguous block per client.

        Clients are ordered by id (not by the order the caller happened to
        enumerate them), so the block map — and through it every crafted
        model — is invariant to fleet enumeration order.
        """
        ids = sorted(set(int(cid) for cid in client_ids))
        if not ids:
            raise ValueError("assign_clients needs at least one client id")
        if self.num_neurons < len(ids):
            raise ValueError(
                f"{self.num_neurons} attacked neurons cannot cover "
                f"{len(ids)} clients with one block each"
            )
        bounds = np.linspace(0, self.num_neurons, len(ids) + 1).astype(int)
        self._blocks = {
            cid: (int(bounds[i]), int(bounds[i + 1]))
            for i, cid in enumerate(ids)
        }

    def client_block(self, client_id: int) -> tuple[int, int]:
        """The ``[start, stop)`` neuron block assigned to ``client_id``."""
        if not self._blocks:
            raise RuntimeError("assign_clients() must run before block lookup")
        try:
            return self._blocks[int(client_id)]
        except KeyError as error:
            raise KeyError(
                f"client {client_id} has no assigned block; assigned ids: "
                f"{sorted(self._blocks)}"
            ) from error

    def assigned_clients(self) -> list[int]:
        return sorted(self._blocks)

    def _block_parameters(
        self, block_index: int, start: int, stop: int, flat_dim: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Trap rows/biases for one block, keyed by block index."""
        rng = rng_for(self.seed, f"loki-block-{block_index}")
        weight = trap_weight_rows(stop - start, flat_dim, rng)
        bias = trap_biases(
            weight,
            self.activation_probability,
            public_flat=self._public_flat,
            pixel_mean=self.pixel_mean,
            pixel_std=self.pixel_std,
        )
        return self.scale * weight, self.scale * bias

    def _craft_blocks(
        self, model: ImprintedModel, client_ids: Sequence[int]
    ) -> None:
        ordered = self.assigned_clients()
        weight = np.zeros((self.num_neurons, model.flat_dim))
        bias = np.full(self.num_neurons, DISABLED_BIAS)
        self._calibration_reason = calibration_degeneracy(self._public_flat)
        if self._calibration_reason is not None:
            # Disarmed layer: see TrapImprintAttack.craft for rationale.
            model.set_imprint_parameters(weight, bias)
            return
        for cid in client_ids:
            start, stop = self.client_block(cid)
            block_weight, block_bias = self._block_parameters(
                ordered.index(cid), start, stop, model.flat_dim
            )
            weight[start:stop] = block_weight
            bias[start:stop] = block_bias
        model.set_imprint_parameters(weight, bias)

    # ------------------------------------------------------------------
    # Attack lifecycle
    # ------------------------------------------------------------------
    def craft(self, model: ImprintedModel) -> None:
        """Craft the union model: every assigned block live at once.

        Single-victim fallback: with no fleet assigned, the whole layer
        becomes one block for client 0, which reduces LOKI to a scaled
        CAH-style trap layer (the degenerate one-client fleet).
        """
        self._check_model(model)
        self._image_shape = model.input_shape
        if not self._blocks:
            self.assign_clients([0])
        self._craft_blocks(model, self.assigned_clients())

    def craft_for_client(self, model: ImprintedModel, client_id: int) -> None:
        """Craft the model sent to one client: only its block is live."""
        self._check_model(model)
        self._image_shape = model.input_shape
        if not self._blocks:
            self.assign_clients([client_id])
        self._craft_blocks(model, [client_id])

    # reconstruct() is inherited: Eq. 6 over every fired trap across all
    # blocks (works on a single update and on the aggregate alike), with
    # the shared calibration/near-total-activation guards.

    def reconstruct_per_client(
        self, gradients: dict[str, np.ndarray]
    ) -> dict[int, ReconstructionResult]:
        """Split an aggregate's inversions back to the owning clients.

        Each assigned client's block slice is inverted independently
        through the shared guards; clients whose block carries no signal
        (dropped out, not sampled, or an empty round) are omitted, while
        a disarmed layer (degenerate calibration) maps every client to a
        reasoned empty result so the failure mode stays visible.
        """
        if self._image_shape is None:
            raise RuntimeError("craft() must run before reconstruct_per_client()")
        failure = self._calibration_failure()
        if failure is not None:
            return {cid: failure for cid in self.assigned_clients()}
        weight_grad, bias_grad = extract_imprint_gradients(gradients)
        per_client: dict[int, ReconstructionResult] = {}
        for cid in self.assigned_clients():
            start, stop = self._blocks[cid]
            result = self._invert_guarded(
                weight_grad[start:stop],
                bias_grad[start:stop],
                index_offset=start,
            )
            if len(result) or result.reason != NO_SIGNAL_REASON:
                per_client[cid] = result
        return per_client
