"""Active reconstruction attacks: the pluggable attack zoo.

Built-in entries: RTF, CAH, linear-model inversion, QBI, and LOKI — all
registered in :mod:`repro.attacks.registry` and resolvable by name through
:func:`make_attack`.
"""

from repro.attacks.base import (
    ActiveReconstructionAttack,
    ReconstructionResult,
    clip_to_image,
)
from repro.attacks.cah import CAHAttack
from repro.attacks.imprint import (
    IMPRINT_BIAS,
    IMPRINT_WEIGHT,
    ImprintedModel,
    activation_matrix,
    extract_imprint_gradients,
    invert_gradient_pair,
)
from repro.attacks.linear import LinearClassifier, LinearModelInversion
from repro.attacks.loki import LOKIAttack
from repro.attacks.qbi import QBIAttack, sole_activation_probability
from repro.attacks.registry import (
    AttackKnob,
    AttackRegistryError,
    AttackSpec,
    DuplicateAttackError,
    UnknownAttackError,
    attack_spec,
    available_attacks,
    make_attack,
    register_attack,
    unregister_attack,
)
from repro.attacks.rtf import RTFAttack
from repro.attacks.traps import TrapImprintAttack

__all__ = [
    "ActiveReconstructionAttack",
    "ReconstructionResult",
    "clip_to_image",
    "ImprintedModel",
    "activation_matrix",
    "extract_imprint_gradients",
    "invert_gradient_pair",
    "IMPRINT_WEIGHT",
    "IMPRINT_BIAS",
    "RTFAttack",
    "CAHAttack",
    "QBIAttack",
    "LOKIAttack",
    "TrapImprintAttack",
    "sole_activation_probability",
    "LinearClassifier",
    "LinearModelInversion",
    "AttackSpec",
    "AttackKnob",
    "AttackRegistryError",
    "UnknownAttackError",
    "DuplicateAttackError",
    "register_attack",
    "unregister_attack",
    "attack_spec",
    "available_attacks",
    "make_attack",
]
