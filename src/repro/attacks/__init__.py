"""Active reconstruction attacks: RTF, CAH, and linear-model inversion."""

from repro.attacks.base import (
    ActiveReconstructionAttack,
    ReconstructionResult,
    clip_to_image,
)
from repro.attacks.cah import CAHAttack
from repro.attacks.imprint import (
    IMPRINT_BIAS,
    IMPRINT_WEIGHT,
    ImprintedModel,
    activation_matrix,
    extract_imprint_gradients,
    invert_gradient_pair,
)
from repro.attacks.linear import LinearClassifier, LinearModelInversion
from repro.attacks.rtf import RTFAttack

__all__ = [
    "ActiveReconstructionAttack",
    "ReconstructionResult",
    "clip_to_image",
    "ImprintedModel",
    "activation_matrix",
    "extract_imprint_gradients",
    "invert_gradient_pair",
    "IMPRINT_WEIGHT",
    "IMPRINT_BIAS",
    "RTFAttack",
    "CAHAttack",
    "LinearClassifier",
    "LinearModelInversion",
]
