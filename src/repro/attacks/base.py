"""Attack interface: craft malicious parameters, then invert gradients."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.attacks.imprint import ImprintedModel


@dataclass
class ReconstructionResult:
    """Output of a reconstruction attempt.

    ``images`` holds the candidate reconstructions in (K, C, H, W) layout
    (K depends on the attack: bins with signal for RTF, activated neurons
    for CAH, classes present for the linear attack).  ``neuron_indices``
    maps each reconstruction back to the neuron (or bin / class) that
    produced it.  ``raw`` optionally keeps the flat unclipped vectors.

    ``occupancy`` (aligned with ``images``) is each reconstruction's raw
    bias-gradient mass — the Eq. 6 denominator before any clamping, i.e.
    the summed backprop coefficients of the samples the neuron/bin caught.
    Values near zero mark ill-conditioned inversions a caller may want to
    discount.  ``reason`` explains an *empty* result in a structured way
    ("no occupied bins", "degenerate trap calibration: ...") instead of
    leaving an empty array indistinguishable from a healthy miss.
    """

    images: np.ndarray
    neuron_indices: list[int] = field(default_factory=list)
    raw: Optional[np.ndarray] = None
    occupancy: Optional[np.ndarray] = None
    reason: Optional[str] = None

    def __len__(self) -> int:
        return len(self.images)

    @classmethod
    def empty(
        cls, image_shape: tuple[int, int, int], reason: Optional[str] = None
    ) -> "ReconstructionResult":
        """An empty result carrying a structured explanation."""
        return cls(
            images=np.empty((0,) + tuple(image_shape)),
            neuron_indices=[],
            reason=reason,
        )


class ActiveReconstructionAttack:
    """A dishonest-server attack: parameter manipulation + gradient inversion.

    Lifecycle (one FL round, paper Sec. III-A):

    1. ``craft(model)`` — the server overwrites the malicious layer of the
       global model before dispatching it.
    2. The (honest) client computes batch gradients on the crafted model.
    3. ``reconstruct(gradients)`` — the server inverts the uploaded
       gradients into candidate training images.
    """

    name = "abstract"

    def craft(self, model: ImprintedModel) -> None:
        raise NotImplementedError

    def reconstruct(self, gradients: dict[str, np.ndarray]) -> ReconstructionResult:
        raise NotImplementedError


def clip_to_image(
    flat_vectors: np.ndarray, image_shape: tuple[int, int, int]
) -> np.ndarray:
    """Reshape flat reconstructions to images and clip into [0, 1].

    Clipping matches how reconstructions are rendered/scored: pixel space
    is [0, 1] and PSNR uses that data range.
    """
    images = flat_vectors.reshape((-1,) + tuple(image_shape))
    return np.clip(images, 0.0, 1.0)
