"""QBI-style quantile-based bias initialization — Nowak et al., 2024.

QBI refines the CAH trap-weight recipe with one observation: for a batch
of ``B`` samples, the probability that a trap neuron is activated by
*exactly one* of them — the sole-activation event that makes Eq. 6 return
a sample verbatim — is

    P(sole) = B * p * (1 - p)^(B - 1)

which is maximized at ``p* = 1/B``.  CAH's fixed small constant leaves
sole-activation mass on the table at small batches and overfills traps at
large ones; QBI instead sets every trap's bias at the empirical
``(1 - 1/B)`` quantile of that neuron's projection distribution over
public data, so each attacked neuron fires for a ``1/B`` fraction of
inputs and the expected number of verbatim extractions per round is
maximal for the batch size the server anticipates.

Against OASIS the attack degrades the same way CAH does: batch expansion
multiplies the effective ``B`` without telling the server, pushing every
trap past its sole-activation optimum into multi-sample overlap — and the
random trap directions give transformed copies independent projections,
so the drop is probabilistic rather than structural (paper Fig. 6 trend).
"""

from __future__ import annotations

from repro.attacks.traps import TrapImprintAttack


def sole_activation_probability(p: float, batch_size: int) -> float:
    """P(exactly one of ``batch_size`` samples activates a trap firing w.p. p)."""
    return batch_size * p * (1.0 - p) ** (batch_size - 1)


class QBIAttack(TrapImprintAttack):
    """Trap-weight imprint attack tuned to the sole-activation optimum.

    Parameters
    ----------
    num_neurons:
        Number of attacked neurons ``n``.
    expected_batch_size:
        The batch size ``B`` the server anticipates; the per-neuron
        activation probability is set to ``1/B``, the maximizer of the
        sole-activation probability above.
    pixel_mean / pixel_std:
        Gaussian fallback prior when no public data is available;
        :meth:`calibrate_from_public_data` replaces the fallback with
        per-neuron empirical quantiles.
    seed:
        Seed for drawing the trap directions (the server chooses these).
    """

    name = "qbi"

    def __init__(
        self,
        num_neurons: int,
        expected_batch_size: int = 8,
        pixel_mean: float = 0.5,
        pixel_std: float = 0.25,
        seed: int = 0,
        signal_tolerance: float = 1e-10,
        deduplicate: bool = True,
    ) -> None:
        if expected_batch_size < 1:
            raise ValueError("expected_batch_size must be >= 1")
        self.expected_batch_size = expected_batch_size
        # p* = 1/B maximizes B*p*(1-p)^(B-1).  B=1 would give p=1, where
        # sole activation is certain — but a layer whose traps *all* fire
        # is indistinguishable from mistuned biases (the near-total-
        # activation guard in TrapImprintAttack rightly discards it), so
        # cap at 0.5: for a single-sample batch every fired trap still
        # returns the sample verbatim, and half the traps firing stays
        # well under the guard.
        probability = min(1.0 / expected_batch_size, 0.5)
        super().__init__(
            num_neurons,
            probability,
            pixel_mean=pixel_mean,
            pixel_std=pixel_std,
            seed=seed,
            signal_tolerance=signal_tolerance,
            deduplicate=deduplicate,
        )
