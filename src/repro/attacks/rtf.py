"""Robbing the Fed (RTF) — Fowl et al., ICLR 2022.

The server points every attacked neuron's weight row along one *measurement
direction* ``h`` (here: the mean pixel value, as in the paper and as noted
by OASIS Sec. IV-B) and staggers the biases at the negated Gaussian
quantiles of the measurement distribution:

    W_i = scale * h          b_i = -scale * q_i,   q_1 < q_2 < ... < q_n

Neuron ``i`` then fires exactly when ``h . x > q_i``, so a sample activates
the *prefix* of neurons whose quantile lies below its measurement.  The
successive difference of two neurons' gradients therefore isolates the
samples falling in one quantile bin:

    dL/dW_i - dL/dW_{i+1} = sum_{j in bin i} g_j x_j
    dL/db_i - dL/db_{i+1} = sum_{j in bin i} g_j

and their ratio is Eq. 6 applied to the bin.  A bin holding a single sample
yields that sample verbatim; a bin holding several yields their
``g``-weighted linear combination — which is precisely the handle OASIS
exploits: major rotations preserve the mean pixel value, so an image and
its rotations land in the *same bin* and only their overlap is recoverable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import stats

from repro.attacks.base import ActiveReconstructionAttack, ReconstructionResult, clip_to_image
from repro.attacks.imprint import ImprintedModel, extract_imprint_gradients


class RTFAttack(ActiveReconstructionAttack):
    """Robbing-the-Fed imprint attack with mean-pixel measurement bins.

    Parameters
    ----------
    num_neurons:
        Number of attacked neurons ``n`` (bins = n - 1).
    measurement_mean / measurement_std:
        The server's prior over the per-image mean pixel value, e.g.
        estimated from public data with
        :meth:`calibrate_from_public_data`.
    scale:
        Magnitude of the crafted weights; cancels in the inversion.
    signal_tolerance:
        Bias-gradient differences below this are treated as empty bins.
    denominator_floor:
        Clamp for the Eq. 6 denominator: a bin whose bias-gradient
        difference sits just above ``signal_tolerance`` is *occupied* but
        numerically treacherous — dividing by it amplifies gradient noise
        into garbage pixels.  Denominators are clamped (sign-preserving)
        to at least this floor in both the ``images`` and ``raw`` paths,
        bounding the amplification at ``1/denominator_floor`` while the
        result's ``occupancy`` field still reports the raw bin mass so
        callers can discount the weak bins.  Defaults to
        ``signal_tolerance`` (no behaviour change for well-conditioned
        bins).
    """

    name = "rtf"

    def __init__(
        self,
        num_neurons: int,
        measurement_mean: float = 0.5,
        measurement_std: float = 0.1,
        scale: float = 1.0,
        signal_tolerance: float = 1e-10,
        denominator_floor: Optional[float] = None,
    ) -> None:
        if num_neurons < 2:
            raise ValueError("RTF needs at least two neurons to form a bin")
        self.num_neurons = num_neurons
        self.measurement_mean = measurement_mean
        self.measurement_std = measurement_std
        self.scale = scale
        self.signal_tolerance = signal_tolerance
        self.denominator_floor = (
            signal_tolerance if denominator_floor is None else denominator_floor
        )
        if self.denominator_floor < signal_tolerance:
            raise ValueError(
                "denominator_floor below signal_tolerance would clamp bins "
                "already classified as empty"
            )
        self._image_shape: Optional[tuple[int, int, int]] = None
        self._quantiles: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    def calibrate_from_public_data(self, public_images: np.ndarray) -> None:
        """Fit the measurement prior from a public dataset (RTF Sec. 3)."""
        measurements = public_images.reshape(len(public_images), -1).mean(axis=1)
        self.measurement_mean = float(measurements.mean())
        self.measurement_std = float(max(measurements.std(), 1e-6))

    def bin_edges(self) -> np.ndarray:
        """The Gaussian quantiles q_1 < ... < q_n staggering the biases."""
        probabilities = (np.arange(1, self.num_neurons + 1)) / (self.num_neurons + 1)
        return stats.norm.ppf(
            probabilities, loc=self.measurement_mean, scale=self.measurement_std
        )

    # ------------------------------------------------------------------
    # Attack lifecycle
    # ------------------------------------------------------------------
    def craft(self, model: ImprintedModel) -> None:
        if model.num_neurons != self.num_neurons:
            raise ValueError(
                f"model has {model.num_neurons} attacked neurons, "
                f"attack expects {self.num_neurons}"
            )
        self._image_shape = model.input_shape
        d = model.flat_dim
        measurement_row = np.full(d, 1.0 / d)  # h . x = mean pixel value
        quantiles = self.bin_edges()
        weight = self.scale * np.tile(measurement_row, (self.num_neurons, 1))
        bias = -self.scale * quantiles
        model.set_imprint_parameters(weight, bias)
        self._quantiles = quantiles

    def reconstruct(self, gradients: dict[str, np.ndarray]) -> ReconstructionResult:
        if self._image_shape is None:
            raise RuntimeError("craft() must run before reconstruct()")
        weight_grad, bias_grad = extract_imprint_gradients(gradients)
        weight_diff = weight_grad[:-1] - weight_grad[1:]
        bias_diff = bias_grad[:-1] - bias_grad[1:]
        occupied = np.abs(bias_diff) > self.signal_tolerance
        indices = np.flatnonzero(occupied)
        if indices.size == 0:
            return ReconstructionResult.empty(
                self._image_shape, reason="no occupied measurement bin"
            )
        occupancy = bias_diff[indices]
        # Sign-preserving clamp: a denominator barely above the tolerance
        # would amplify gradient noise by up to 1/tolerance; both the
        # clipped images and the raw vectors divide by the same clamped
        # value so they can never disagree about a bin's reconstruction.
        denominators = np.sign(occupancy) * np.maximum(
            np.abs(occupancy), self.denominator_floor
        )
        flat = weight_diff[indices] / denominators[:, None]
        return ReconstructionResult(
            images=clip_to_image(flat, self._image_shape),
            neuron_indices=[int(i) for i in indices],
            raw=flat,
            occupancy=occupancy,
        )

    # ------------------------------------------------------------------
    # Introspection used by analysis/tests
    # ------------------------------------------------------------------
    def bin_of(self, images: np.ndarray) -> np.ndarray:
        """Index of the quantile bin each image's measurement falls into."""
        if self._quantiles is None:
            raise RuntimeError("craft() must run before bin_of()")
        measurements = images.reshape(len(images), -1).mean(axis=1)
        return np.searchsorted(self._quantiles, measurements) - 1
