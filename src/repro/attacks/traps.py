"""Shared trap-weight machinery for the CAH-family imprint attacks.

CAH, QBI, and LOKI all build their malicious layer the same way: random
*trap directions* as weight rows, biases tuned so each attacked neuron
fires for a controlled fraction of inputs, and Eq. 6 inversion of every
neuron that fired.  This module factors that recipe out so the three
attacks differ only in *how they choose the activation probability* (CAH:
fixed small constant; QBI: the sole-activation optimum ``1/B``; LOKI:
per-client-disjoint neuron blocks) and keeps the gradient algebra
identical across them.

:class:`TrapImprintAttack` is the common base class.  It also owns the
degenerate-calibration guard: trap tuning silently falls apart when the
calibration data makes the quantile placement meaningless (a single
public sample, constant projections, non-finite pixels — then every
neuron fires or none do), and the base class converts that into an empty
:class:`~repro.attacks.base.ReconstructionResult` with a structured
``reason`` instead of raising deep inside a quantile call or emitting
batch-mean garbage.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import stats

from repro.attacks.base import (
    ActiveReconstructionAttack,
    ReconstructionResult,
    clip_to_image,
)
from repro.attacks.imprint import ImprintedModel, extract_imprint_gradients

# Fewer public samples than this and the empirical quantile is noise; the
# Gaussian moment fallback takes over (matches the original CAH guard).
MIN_EMPIRICAL_SAMPLES = 8

# Structured reason for a healthy-but-silent inversion (no trap fired).
# Callers that need to distinguish "nothing to report" from real failure
# modes compare against this constant, never the prose.
NO_SIGNAL_REASON = "no trap neuron fired"


def trap_weight_rows(
    num_rows: int, flat_dim: int, rng: np.random.Generator
) -> np.ndarray:
    """Unit-variance random trap directions: rows w_i ~ N(0, 1/d) entrywise."""
    return rng.standard_normal((num_rows, flat_dim)) / np.sqrt(flat_dim)


def trap_biases(
    weight: np.ndarray,
    activation_probability: float,
    public_flat: Optional[np.ndarray] = None,
    pixel_mean: float = 0.5,
    pixel_std: float = 0.25,
) -> np.ndarray:
    """Biases placing each trap at the target activation probability.

    With enough public data the bias sits at the *empirical* ``(1 - p)``
    quantile of that neuron's projection distribution — the data-driven
    tuning CAH/QBI describe, considerably sharper than a Gaussian moment
    fit when pixels are spatially correlated.  Otherwise falls back to the
    iid-pixel Gaussian approximation (proj mean ``m * sum(w)``, std
    ``s * ||w||``).
    """
    if public_flat is not None and len(public_flat) >= MIN_EMPIRICAL_SAMPLES:
        projections = weight @ public_flat.T  # (n, num_public)
        thresholds = np.quantile(
            projections, 1.0 - activation_probability, axis=1
        )
        return -thresholds
    row_sums = weight.sum(axis=1)
    row_norms = np.linalg.norm(weight, axis=1)
    z = stats.norm.ppf(1.0 - activation_probability)
    return -(pixel_mean * row_sums + z * pixel_std * row_norms)


def calibration_degeneracy(public_flat: Optional[np.ndarray]) -> Optional[str]:
    """Why empirical trap calibration would degenerate on this public set.

    Returns ``None`` when the data can support a quantile placement, or a
    structured reason when it cannot: non-finite pixels poison every
    quantile, and a calibration set without projection spread (a single
    sample, or identical samples) pins every threshold to the same point
    mass — the bias then sits *at* the only observed projection and every
    trap either fires for everything or for nothing.
    """
    if public_flat is None or len(public_flat) < MIN_EMPIRICAL_SAMPLES:
        return None  # Gaussian fallback path; nothing empirical to degenerate
    if not np.all(np.isfinite(public_flat)):
        return "public calibration data contains non-finite pixels"
    if np.ptp(public_flat, axis=0).max() == 0.0:
        return (
            "public calibration samples are identical (no projection "
            "spread); every trap would fire for all inputs or none"
        )
    return None


def invert_active_neurons(
    weight_grad: np.ndarray,
    bias_grad: np.ndarray,
    tolerance: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Eq. 6 over every neuron carrying signal.

    Returns ``(flat_reconstructions, neuron_indices, occupancy)`` where
    ``occupancy`` is the raw bias gradient of each inverted neuron (the
    summed backprop coefficients of the samples it caught).
    """
    active = np.abs(bias_grad) > tolerance
    indices = np.flatnonzero(active)
    flat = weight_grad[indices] / bias_grad[indices, None]
    return flat, indices, bias_grad[indices]


def deduplicate_reconstructions(
    flat: np.ndarray, indices: np.ndarray, similarity: float = 0.9999
) -> tuple[np.ndarray, np.ndarray]:
    """Collapse near-identical reconstructions (many traps catch the same x).

    Greedy pass in neuron order; keeps the first representative of each
    cluster of cosine-similar vectors.  The pairwise similarities are
    computed as one Gram matrix so the pass stays fast for hundreds of
    candidate reconstructions.
    """
    norms = np.linalg.norm(flat, axis=1)
    norms = np.where(norms < 1e-12, 1.0, norms)
    normalized = flat / norms[:, None]
    gram = normalized @ normalized.T
    duplicate_of_earlier_kept = np.zeros(len(flat), dtype=bool)
    keep: list[int] = []
    for row in range(len(flat)):
        if duplicate_of_earlier_kept[row]:
            continue
        keep.append(row)
        duplicate_of_earlier_kept |= gram[row] > similarity
    keep_array = np.array(keep, dtype=np.int64)
    return flat[keep_array], indices[keep_array]


class TrapImprintAttack(ActiveReconstructionAttack):
    """Base class for trap-weight imprint attacks (CAH, QBI, LOKI blocks).

    Subclasses set :attr:`activation_probability` (directly or derived)
    and inherit calibration, crafting, the degenerate-calibration guard,
    and Eq. 6 inversion of every activated neuron.
    """

    # Reconstructions where this fraction of traps (or more) fired are
    # degenerate: honest trap tuning keeps per-neuron firing probability
    # small, so near-total activation means the biases are mistuned and
    # every "reconstruction" is the same batch-mean garbage.
    degenerate_activation_fraction = 0.95

    def __init__(
        self,
        num_neurons: int,
        activation_probability: float,
        pixel_mean: float = 0.5,
        pixel_std: float = 0.25,
        seed: int = 0,
        signal_tolerance: float = 1e-10,
        deduplicate: bool = True,
    ) -> None:
        if not 0.0 < activation_probability < 1.0:
            raise ValueError("activation_probability must be in (0, 1)")
        self.num_neurons = num_neurons
        self.activation_probability = activation_probability
        self.pixel_mean = pixel_mean
        self.pixel_std = pixel_std
        self.seed = seed
        self.signal_tolerance = signal_tolerance
        self.deduplicate = deduplicate
        self._image_shape: Optional[tuple[int, int, int]] = None
        self._public_flat: Optional[np.ndarray] = None
        self._calibration_reason: Optional[str] = None

    def calibrate_from_public_data(self, public_images: np.ndarray) -> None:
        """Calibrate against a public dataset.

        Keeps the flattened public images so :meth:`craft` can place each
        trap neuron's bias at the *empirical* (1 - p) quantile of that
        neuron's projection distribution.
        """
        flat = public_images.reshape(len(public_images), -1).astype(np.float64)
        self._public_flat = flat
        finite = flat[np.all(np.isfinite(flat), axis=1)]
        self.pixel_mean = float(finite.mean()) if len(finite) else self.pixel_mean
        self.pixel_std = (
            float(max(finite.std(), 1e-6)) if len(finite) else self.pixel_std
        )

    def _check_model(self, model: ImprintedModel) -> None:
        if model.num_neurons != self.num_neurons:
            raise ValueError(
                f"model has {model.num_neurons} attacked neurons, "
                f"attack expects {self.num_neurons}"
            )

    def craft(self, model: ImprintedModel) -> None:
        self._check_model(model)
        self._image_shape = model.input_shape
        self._calibration_reason = calibration_degeneracy(self._public_flat)
        if self._calibration_reason is not None:
            # Install a disarmed layer (no trap ever fires) rather than
            # shipping quantiles computed from garbage: the client still
            # receives a well-formed model, and reconstruct() reports the
            # structured reason instead of emitting nonsense images.
            weight = np.zeros((self.num_neurons, model.flat_dim))
            bias = np.full(self.num_neurons, -1.0)
            model.set_imprint_parameters(weight, bias)
            return
        rng = np.random.default_rng(self.seed)
        weight = trap_weight_rows(self.num_neurons, model.flat_dim, rng)
        bias = trap_biases(
            weight,
            self.activation_probability,
            public_flat=self._public_flat,
            pixel_mean=self.pixel_mean,
            pixel_std=self.pixel_std,
        )
        model.set_imprint_parameters(weight, bias)

    def _calibration_failure(self) -> Optional[ReconstructionResult]:
        """The reasoned empty result for a disarmed layer, if disarmed."""
        if self._calibration_reason is None:
            return None
        return ReconstructionResult.empty(
            self._image_shape,
            reason=f"degenerate trap calibration: {self._calibration_reason}",
        )

    def _invert_guarded(
        self,
        weight_grad: np.ndarray,
        bias_grad: np.ndarray,
        index_offset: int = 0,
    ) -> ReconstructionResult:
        """Eq. 6 over one (slice of a) trap layer, with the sanity guards.

        ``index_offset`` shifts the reported neuron indices when the
        arrays are a block slice of a larger layer (LOKI's per-client
        blocks).
        """
        flat, indices, occupancy = invert_active_neurons(
            weight_grad, bias_grad, self.signal_tolerance
        )
        if indices.size == 0:
            return ReconstructionResult.empty(
                self._image_shape, reason=NO_SIGNAL_REASON
            )
        if (
            len(bias_grad) > 0
            and indices.size / len(bias_grad) >= self.degenerate_activation_fraction
        ):
            return ReconstructionResult.empty(
                self._image_shape,
                reason=(
                    f"{indices.size}/{len(bias_grad)} trap neurons fired; "
                    "near-total activation means the bias tuning degenerated "
                    "(every trap catches the whole batch) and inversions "
                    "would be batch-mean garbage"
                ),
            )
        if self.deduplicate and len(flat) > 1:
            flat, indices = deduplicate_reconstructions(flat, indices)
            occupancy = bias_grad[indices]
        return ReconstructionResult(
            images=clip_to_image(flat, self._image_shape),
            neuron_indices=[int(index_offset + i) for i in indices],
            raw=flat,
            occupancy=occupancy,
        )

    def reconstruct(self, gradients: dict[str, np.ndarray]) -> ReconstructionResult:
        if self._image_shape is None:
            raise RuntimeError("craft() must run before reconstruct()")
        failure = self._calibration_failure()
        if failure is not None:
            return failure
        weight_grad, bias_grad = extract_imprint_gradients(gradients)
        return self._invert_guarded(weight_grad, bias_grad)
