"""Imprint-layer machinery shared by the active reconstruction attacks.

The threat model (paper Sec. III-A): a dishonest server inserts a malicious
fully-connected layer of ``n`` attacked neurons *directly after the input*
of the global model before dispatching it.  The client trains honestly on
the modified model; the gradients of the malicious layer then memorize
training inputs, recoverable by gradient inversion (Eq. 6):

    x_t = (dL/db_i)^(-1) * (dL/dW_i)

for any neuron ``i`` activated by exactly one sample ``x_t``.

:class:`ImprintedModel` is the modified global model: flatten -> malicious
Linear(d, n) -> ReLU -> fixed decoder Linear(n, d) -> classifier head.  The
decoder's rows are *identical*, which makes the backpropagated coefficient
``dL/dz_i`` equal across attacked neurons for a given sample — the property
the RTF successive-difference disaggregation relies on (and which holds in
the original attack's pass-through construction).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Linear
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor

IMPRINT_WEIGHT = "imprint.weight"
IMPRINT_BIAS = "imprint.bias"


class ImprintedModel(Module):
    """A global model carrying a malicious imprint layer after the input.

    Parameters
    ----------
    input_shape:
        (C, H, W) of the client images; flattened dimension is the attack
        surface ``d``.
    num_neurons:
        Number of attacked neurons ``n``.
    num_classes:
        Output classes of the (innocuous-looking) classifier head.
    rng:
        Generator for the head/decoder initialization.
    gradient_amplification:
        Norm of each decoder column — an attacker-controlled knob.  Larger
        values make the malicious layer's gradients dominate the client's
        update, which is how the attack survives moderate gradient noise
        (the dishonest server trades stealth for robustness).
    """

    def __init__(
        self,
        input_shape: tuple[int, int, int],
        num_neurons: int,
        num_classes: int,
        rng: Optional[np.random.Generator] = None,
        gradient_amplification: float = 1.0,
    ) -> None:
        super().__init__()
        # repro-lint: disable=no-global-rng -- caller-convenience fallback for interactive use; every library path passes a fingerprint-seeded generator
        rng = rng if rng is not None else np.random.default_rng()
        self.input_shape = tuple(input_shape)
        flat_dim = int(np.prod(input_shape))
        self.flat_dim = flat_dim
        self.num_neurons = num_neurons
        self.gradient_amplification = gradient_amplification
        self.imprint = Linear(flat_dim, num_neurons, rng=rng)
        self.decoder = Linear(num_neurons, flat_dim, rng=rng)
        self.head = Linear(flat_dim, num_classes, rng=rng)
        self._install_passthrough_decoder(rng)

    def _install_passthrough_decoder(self, rng: np.random.Generator) -> None:
        """Give the decoder identical columns so every attacked neuron feeds
        the downstream identically (equal backprop coefficients per sample)."""
        direction = rng.standard_normal(self.flat_dim)
        direction /= np.linalg.norm(direction)
        # Linear computes x @ W.T: W has shape (flat_dim, num_neurons) here,
        # so identical *columns* across neurons means W[:, i] == direction.
        self.decoder.weight.data = np.tile(
            (self.gradient_amplification * direction)[:, None],
            (1, self.num_neurons),
        )
        self.decoder.bias.data = np.zeros_like(self.decoder.bias.data)

    def forward(self, x: Tensor) -> Tensor:
        flat = x.flatten(1) if x.ndim > 2 else x
        hidden = self.imprint(flat).relu()
        decoded = self.decoder(hidden)
        return self.head(decoded)

    # ------------------------------------------------------------------
    # Attack surface accessors
    # ------------------------------------------------------------------
    def set_imprint_parameters(self, weight: np.ndarray, bias: np.ndarray) -> None:
        """Overwrite the malicious layer (the server-side manipulation)."""
        if weight.shape != self.imprint.weight.shape:
            raise ValueError(
                f"weight shape {weight.shape} != {self.imprint.weight.shape}"
            )
        if bias.shape != self.imprint.bias.shape:
            raise ValueError(f"bias shape {bias.shape} != {self.imprint.bias.shape}")
        self.imprint.weight.data = weight.astype(np.float64).copy()
        self.imprint.bias.data = bias.astype(np.float64).copy()

    def imprint_parameters(self) -> tuple[np.ndarray, np.ndarray]:
        return self.imprint.weight.data, self.imprint.bias.data


def extract_imprint_gradients(
    gradients: dict[str, np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Pull (dL/dW, dL/db) of the malicious layer out of a client update."""
    try:
        return gradients[IMPRINT_WEIGHT], gradients[IMPRINT_BIAS]
    except KeyError as error:
        raise KeyError(
            "client update does not contain imprint-layer gradients; "
            f"expected keys {IMPRINT_WEIGHT!r}, {IMPRINT_BIAS!r}"
        ) from error


def invert_gradient_pair(
    weight_grad: np.ndarray,
    bias_grad: float,
    tolerance: float = 1e-12,
) -> Optional[np.ndarray]:
    """Eq. 6: recover the input as (dL/db_i)^-1 * dL/dW_i.

    Returns None when the neuron carries no signal (|dL/db_i| below
    ``tolerance``), i.e. no sample activated it.
    """
    if abs(float(bias_grad)) <= tolerance:
        return None
    return weight_grad / float(bias_grad)


def activation_matrix(
    weight: np.ndarray, bias: np.ndarray, flat_images: np.ndarray
) -> np.ndarray:
    """Boolean (num_images, num_neurons) matrix of ReLU activations.

    Used by the Proposition 1 analysis: two images are mutually protected
    when their activation rows are identical.
    """
    preactivation = flat_images @ weight.T + bias
    return preactivation > 0.0
