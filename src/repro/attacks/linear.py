"""Gradient inversion on single-layer (logistic-regression) models.

Paper Sec. IV-D: a restrictive setting from Geiping et al. / Fowl et al.
where the global model is one linear layer trained with logistic loss and
every image in the batch carries a unique label.  The softmax cross-entropy
gradients of class row ``k`` are

    dL/dW_k = sum_j (p_jk - y_jk) x_j        dL/db_k = sum_j (p_jk - y_jk)

so dividing the two (Eq. 6 again, without any ReLU gating) reconstructs a
weighting of the batch dominated by the class-``k`` sample, whose
coefficient ``p_tk - 1`` is the only O(1) term.  With OASIS, the class-``k``
"sample" is the image *plus its transforms sharing the label*, so the ratio
is a linear combination of the image and its transformed copies — the
single-layer case where Proposition 1 holds by construction (the paper:
"adding transformed images to the training batch guarantees that x_t and
X'_t activate the same neuron").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attacks.base import ReconstructionResult, clip_to_image
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.tensor import Tensor


class LinearClassifier(Module):
    """Single fully-connected layer: logits = x W^T + b (flattens images)."""

    def __init__(
        self,
        input_shape: tuple[int, int, int],
        num_classes: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.input_shape = tuple(input_shape)
        self.flat_dim = int(np.prod(input_shape))
        self.num_classes = num_classes
        self.fc = Linear(self.flat_dim, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        flat = x.flatten(1) if x.ndim > 2 else x
        return self.fc(flat)


class LinearModelInversion:
    """Invert single-layer gradients class-row by class-row.

    Unlike the imprint attacks there is nothing to craft: the server simply
    reads the uploaded gradients of the (honest) linear model.
    """

    name = "linear"

    def __init__(self, signal_tolerance: float = 1e-10) -> None:
        self.signal_tolerance = signal_tolerance
        self._image_shape: Optional[tuple[int, int, int]] = None

    def craft(self, model: LinearClassifier) -> None:
        """No parameter manipulation; remembers the image geometry."""
        self._image_shape = model.input_shape

    def reconstruct(self, gradients: dict[str, np.ndarray]) -> ReconstructionResult:
        if self._image_shape is None:
            raise RuntimeError("craft() must run before reconstruct()")
        weight_grad = gradients["fc.weight"]
        bias_grad = gradients["fc.bias"]
        # A class row has dL/db_k = sum_j (p_jk - y_jk): strictly negative
        # when class k is present in the batch (the -1 from its own label
        # dominates), positive otherwise.  Only present classes carry a
        # recoverable sample, so invert only the negative rows.
        indices = np.flatnonzero(bias_grad < -self.signal_tolerance)
        if indices.size == 0:
            return ReconstructionResult.empty(
                self._image_shape, reason="no class row carries signal"
            )
        flat = weight_grad[indices] / bias_grad[indices, None]
        return ReconstructionResult(
            images=clip_to_image(flat, self._image_shape),
            neuron_indices=[int(i) for i in indices],
            raw=flat,
            occupancy=bias_grad[indices],
        )
