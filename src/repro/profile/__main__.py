"""CLI: profile one sweep cell and print the op-time breakdown as JSON.

::

    PYTHONPATH=src python -m repro.profile --cell rtfxMR
    PYTHONPATH=src python -m repro.profile --cell linearxdpsgd --rounds 3
    PYTHONPATH=src python -m repro.profile --cell cahxWO --reference

``--cell`` takes ``<attack>x<defense>`` (first ``x`` is the separator;
defense specs with ``>`` compose as usual, quote them from the shell).
``--reference`` profiles the pre-acceleration kernel graph instead of the
fused one, which is how the DESIGN.md op tables were produced.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

import repro.tensor.backend as backend
from repro.profile import profile_cell


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.profile",
        description="attribute one sweep cell's wall time to tensor ops",
    )
    parser.add_argument(
        "--cell",
        required=True,
        metavar="ATTACKxDEFENSE",
        help="cell to profile, e.g. rtfxMR or 'linearxMR>dpsgd'",
    )
    parser.add_argument(
        "--rounds", type=int, default=1, help="FL rounds to run (default 1)"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--top", type=int, default=None, help="keep only the N hottest ops"
    )
    parser.add_argument(
        "--reference",
        action="store_true",
        help="profile the unfused reference kernels instead of the fused ones",
    )
    args = parser.parse_args(argv)

    attack, sep, defense = args.cell.partition("x")
    if not sep or not attack or not defense:
        parser.error(f"--cell must look like <attack>x<defense>, got {args.cell!r}")

    mode = "reference" if args.reference else "fused"
    previous = backend.kernel_mode()
    backend.set_kernel_mode(mode)
    try:
        report, result = profile_cell(
            attack, defense, rounds=args.rounds, seed=args.seed
        )
    finally:
        backend.set_kernel_mode(previous)
    if args.top is not None:
        report["ops"] = dict(list(report["ops"].items())[: args.top])
    payload = {
        "cell": args.cell,
        "attack": attack,
        "defense": defense,
        "rounds": args.rounds,
        "seed": args.seed,
        "kernel_mode": mode,
        "profile": report,
        "result": result,
    }
    json.dump(payload, sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
