"""Op-level profiler for the tensor core: where does a sweep cell spend time?

The acceleration work in :mod:`repro.tensor` (fused kernels, buffer pools,
in-place optimizers) was driven by measurement, and this module is the
measuring instrument.  It rides the :func:`repro.tensor.set_profile_hook`
seam in ``Tensor._make``: every graph-node construction fires the hook with
the op's backward factory (whose ``__qualname__`` names the op) and the
freshly computed result array, so the profiler can

- **count** node constructions and result bytes per named op,
- **attribute forward wall time** per op — the elapsed time between two
  consecutive node constructions is charged to the node just built, since
  ``_make`` runs immediately after the op's forward arithmetic, and
- **time backward closures** per op exactly, by returning a wrapping
  backward factory from the hook (``_make`` swaps it in).

Forward attribution is a delta scheme, so glue work between two ops
(python dispatch, non-tensor numpy) is charged to the downstream op; the
profiler reports the out-of-graph remainder separately as
``unattributed_seconds`` so totals always reconcile with wall time.

Typical use, as a context manager around any tensor workload::

    from repro.profile import Profiler

    with Profiler() as prof:
        loss = loss_fn(model(Tensor(images)), labels)
        loss.backward()
    print(json.dumps(prof.report(), indent=2))

or from the command line against one sweep cell (see ``__main__``)::

    PYTHONPATH=src python -m repro.profile --cell rtfxMR

The profiler is observational only: it never changes op order, dtypes, or
values, so a profiled run produces byte-identical results (the golden
suite holds with a profiler installed — ``tests/test_profile.py`` checks
a cell under profiling matches its unprofiled result exactly).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.tensor import set_profile_hook

__all__ = ["OpStats", "Profiler", "op_name", "profile_cell"]


def op_name(backward_factory: Callable) -> str:
    """Human op name from a backward factory's ``__qualname__``.

    ``Tensor.__add__.<locals>.backward`` -> ``__add__``;
    ``conv2d.<locals>.backward`` -> ``conv2d``;
    ``linear.<locals>.backward`` (fused) -> ``linear``.
    """
    qualname = getattr(backward_factory, "__qualname__", repr(backward_factory))
    head = qualname.split(".<locals>")[0]
    return head.split(".")[-1]


@dataclass
class OpStats:
    """Accumulated counters for one named op."""

    calls: int = 0
    forward_seconds: float = 0.0
    backward_calls: int = 0
    backward_seconds: float = 0.0
    result_bytes: int = 0

    def to_dict(self) -> dict:
        return {
            "calls": self.calls,
            "forward_seconds": self.forward_seconds,
            "backward_calls": self.backward_calls,
            "backward_seconds": self.backward_seconds,
            "result_bytes": self.result_bytes,
        }


@dataclass
class Profiler:
    """Context manager that attributes tensor-core wall time to named ops.

    Re-entrant installs are not supported (one profiler at a time); the
    previously installed hook, if any, is restored on exit.
    """

    ops: dict[str, OpStats] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def __post_init__(self) -> None:
        self._previous_hook: Optional[Callable] = None
        self._started_at: float = 0.0
        self._last_event: float = 0.0
        self._active = False

    # ------------------------------------------------------------------
    # Hook plumbing
    # ------------------------------------------------------------------
    def _hook(self, backward_factory: Callable, data: np.ndarray) -> Callable:
        now = time.perf_counter()
        name = op_name(backward_factory)
        stats = self.ops.get(name)
        if stats is None:
            stats = self.ops[name] = OpStats()
        stats.calls += 1
        stats.forward_seconds += now - self._last_event
        stats.result_bytes += int(getattr(data, "nbytes", 0))
        self._last_event = now

        def timed_factory(out):
            run = backward_factory(out)

            def timed_run() -> None:
                start = time.perf_counter()
                run()
                end = time.perf_counter()
                stats.backward_seconds += end - start
                stats.backward_calls += 1
                # A backward interval must not also be charged to the next
                # forward op's construction delta.
                self._last_event = end

            return timed_run

        return timed_factory

    def __enter__(self) -> "Profiler":
        if self._active:
            raise RuntimeError("Profiler is not re-entrant")
        self._active = True
        self._previous_hook = set_profile_hook(self._hook)
        self._started_at = self._last_event = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        set_profile_hook(self._previous_hook)
        self.wall_seconds += time.perf_counter() - self._started_at
        self._active = False

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def attributed_seconds(self) -> float:
        return sum(
            s.forward_seconds + s.backward_seconds for s in self.ops.values()
        )

    @property
    def total_calls(self) -> int:
        return sum(s.calls for s in self.ops.values())

    def report(self, top: Optional[int] = None) -> dict:
        """JSON-ready summary, ops sorted by attributed time (descending).

        Ties (all-zero timings in a fast run) break on the op name so the
        report is deterministic.
        """
        ranked = sorted(
            self.ops.items(),
            key=lambda item: (
                -(item[1].forward_seconds + item[1].backward_seconds),
                item[0],
            ),
        )
        if top is not None:
            ranked = ranked[:top]
        return {
            "wall_seconds": self.wall_seconds,
            "attributed_seconds": self.attributed_seconds,
            "unattributed_seconds": max(
                0.0, self.wall_seconds - self.attributed_seconds
            ),
            "total_ops": self.total_calls,
            "ops": {name: stats.to_dict() for name, stats in ranked},
        }


def profile_cell(
    attack: str,
    defense: str,
    rounds: int = 1,
    seed: int = 0,
) -> tuple[dict, dict]:
    """Run one smoke-grid sweep cell under the profiler.

    Builds the standard smoke grid restricted to ``attack`` x ``defense``
    (full participation, 2 clients, batch 3 — the same shape the CI smoke
    sweep runs) and returns ``(profile_report, cell_result)``.
    """
    from repro.experiments.sweep import GRID_PRESETS

    runner = GRID_PRESETS["smoke"](
        seed, rounds, None, attacks=(attack,), defenses=(defense,)
    )
    (cell,) = runner.cells()
    with Profiler() as profiler:
        result = runner.run_cell(cell)
    return profiler.report(), result
