"""Tabular OASIS — the paper's future-work direction, implemented.

The paper's conclusion: "the attack principle that we uncover in Section
III-A is not limited to any data types.  Future work will focus on finding
alternative methods besides image augmentation to implement an effective
defense for tabular and textual data."

The principle transfers directly: a companion ``x'`` defends ``x``
whenever both activate the same attacked neurons.  For tabular rows the
equivalent of a label-preserving, measurement-preserving transformation is
built from two ingredients:

- **Feature-group permutation**: swapping values within exchangeable
  feature groups (e.g. symmetric sensor channels) permutes coordinates, so
  any permutation-invariant measurement — in particular RTF's mean — is
  preserved exactly, just as a 90-degree rotation permutes pixels.
- **Mean-preserving jitter**: adding zero-sum noise within a feature group
  perturbs every coordinate while keeping the group (and global) mean
  fixed — the tabular analogue of a shear.

Both keep the row's semantics for models that are (or are trained to be)
invariant to the group structure, mirroring how image augmentation trains
rotation invariance.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.defense.base import ClientDefense


class TabularTransform:
    """A label-preserving transformation of one feature row."""

    name = "identity"

    def __call__(self, row: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError


class GroupPermutation(TabularTransform):
    """Permute coordinates within exchangeable feature groups.

    ``groups`` is a list of index arrays; each group's values are cyclically
    shifted by one, a deterministic permutation so repeated expansion is
    reproducible.  Coordinates outside every group are untouched.
    """

    def __init__(self, groups: Sequence[Sequence[int]]) -> None:
        self.groups = [np.asarray(g, dtype=np.int64) for g in groups]
        for group in self.groups:
            if len(group) < 2:
                raise ValueError("permutation groups need at least two features")
        self.name = "group_permutation"

    def __call__(self, row: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = row.copy()
        for group in self.groups:
            out[group] = np.roll(row[group], 1)
        return out


class MeanPreservingJitter(TabularTransform):
    """Add zero-sum noise: perturbs every feature, keeps the mean exact."""

    def __init__(self, scale: float = 0.1) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self.name = f"jitter_{scale}"

    def __call__(self, row: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        noise = rng.standard_normal(row.shape) * self.scale
        noise -= noise.mean()
        return row + noise


class TabularOasisDefense(ClientDefense):
    """OASIS Eq. 7 for feature rows: D' = D ∪ transformed companions.

    Parameters
    ----------
    transforms:
        The tabular transformations building ``X'_t``.  Default: one cyclic
        permutation over all features plus two mean-preserving jitters —
        three companions per row, matching the image suites' size.
    num_features:
        Row width; used to build the default transform set.
    seed:
        Seed for the jitter noise (client-held, unknown to the server).
        Grid runners replace this stream via
        :meth:`~repro.defense.base.ClientDefense.reseed` with a
        configuration-fingerprint-derived one, so defended cells stay
        order/worker-invariant like every other stochastic defense.
    """

    def __init__(
        self,
        num_features: int,
        transforms: Optional[Sequence[TabularTransform]] = None,
        seed: int = 0,
    ) -> None:
        if transforms is None:
            transforms = [
                GroupPermutation([list(range(num_features))]),
                MeanPreservingJitter(0.05),
                MeanPreservingJitter(0.15),
            ]
        self.num_features = num_features
        self.transforms = list(transforms)
        self._rng = np.random.default_rng(seed)
        self.name = "TabularOASIS"

    def expansion_factor(self) -> int:
        return len(self.transforms) + 1

    def expand_batch(
        self, rows: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Originals first, then one block per transform (like image OASIS)."""
        if rows.ndim != 2:
            raise ValueError("tabular batches must be (batch, features)")
        blocks = [rows]
        label_blocks = [labels]
        for transform in self.transforms:
            transformed = np.stack(
                [transform(row, self._rng) for row in rows]
            )
            blocks.append(transformed)
            label_blocks.append(labels.copy())
        return np.concatenate(blocks, axis=0), np.concatenate(label_blocks, axis=0)

    def process_batch(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        return self.expand_batch(images, labels)
