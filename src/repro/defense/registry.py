"""Pluggable defense registry: spec strings -> composable client defenses.

The sweep engine grids over defenses the same way it grids over attacks
(:mod:`repro.attacks.registry`), so the defense axis must be *data*, not a
hard-coded ``"WO" | OasisDefense(name)`` branch.  Each defense registers a
:class:`DefenseSpec` — its factory, which pipeline stage it acts at, and
the config knobs it exposes — and every consumer (``SweepRunner``, the
CLI's ``--defenses`` flag, the per-figure harnesses, tests) resolves
defenses through :func:`make_defense`.

Spec-string grammar
-------------------

One defense arm is a ``">"``-separated chain of stages; each stage is a
registered name with optional ``knob=value`` arguments::

    WO                              # no defense
    MR+SH                           # OASIS with the MR+SH suite
    dpsgd(noise_multiplier=0.5)     # DP-SGD with a non-default knob
    MR>dpsgd                        # OASIS composed with DP-SGD
    SH>prune(prune_fraction=0.8)>dpfed

Multi-stage specs build a
:class:`~repro.defense.pipeline.DefensePipeline`; a single stage returns
the bare defense.  Values parse as Python literals (``0.5``, ``True``)
with bare words falling back to strings (``suite=MR``).

Adding a defense:

1. Implement :class:`~repro.defense.base.ClientDefense` (override only the
   hooks you use; override ``reseed`` only if you hold private state
   beyond the base class's ``_rng``).
2. Register it::

       register_defense(DefenseSpec(
           name="mydefense",
           factory=_make_mydefense,
           stage="gradient",
           description="one line for --help and docs",
           knobs=(DefenseKnob("strength", 1.0, "what it does"),),
       ))

3. It is now reachable from ``python -m repro.experiments.sweep
   --defenses mydefense`` (and composable: ``MR>mydefense``), and every
   registry-driven test picks it up automatically.

Register at import time, in a module that parallel sweep workers also
import: under the ``spawn`` start method each worker re-imports this
registry fresh, so a parent-only registration is invisible to workers.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Callable

from repro.augment.suites import available_suites, suite_by_name
from repro.defense.base import ClientDefense, NoDefense
from repro.defense.baselines import (
    DPGradientDefense,
    DPSGDDefense,
    GradientPruningDefense,
    TransformReplaceDefense,
)
from repro.defense.oasis import OasisDefense
from repro.defense.pipeline import STAGE_SEPARATOR, DefensePipeline
from repro.defense.tabular import TabularOasisDefense
from repro.utils.rng import derive_seed


class DefenseRegistryError(ValueError):
    """Base for registry misuse errors."""


class UnknownDefenseError(DefenseRegistryError):
    """The requested defense name is not registered."""


class DuplicateDefenseError(DefenseRegistryError):
    """A defense name is already registered (pass ``replace=True`` to allow)."""


class DefenseSpecError(DefenseRegistryError):
    """A defense spec string does not parse under the stage grammar."""


@dataclass(frozen=True)
class DefenseKnob:
    """One declared configuration knob of a registered defense."""

    name: str
    default: object
    description: str = ""


@dataclass(frozen=True)
class DefenseSpec:
    """Everything the registry knows about one defense.

    ``factory`` is called as ``factory(**knobs)`` and must return a
    ready-to-use :class:`~repro.defense.base.ClientDefense`; seeding is
    applied afterwards through :meth:`~ClientDefense.reseed`, never inside
    the factory.  ``stage`` names the pipeline point the defense acts at
    (``"batch"``, ``"gradient"``, or ``"none"`` for the WO arm) and
    ``stochastic`` marks defenses that draw randomness — the ones whose
    cells depend on fingerprint-derived seeding for order invariance.
    """

    name: str
    factory: Callable[..., ClientDefense]
    stage: str = "batch"
    stochastic: bool = False
    description: str = ""
    knobs: tuple[DefenseKnob, ...] = field(default_factory=tuple)

    def knob_names(self) -> set[str]:
        return {knob.name for knob in self.knobs}


# Registered names may carry "+" (suite unions like MR+SH) but none of the
# grammar's structural characters (">", parens, commas, "=", whitespace).
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9_+-]+$")

_REGISTRY: dict[str, DefenseSpec] = {}


def register_defense(spec: DefenseSpec, replace: bool = False) -> DefenseSpec:
    """Add ``spec`` to the registry; duplicates are an error unless replacing."""
    if not spec.name or not _NAME_PATTERN.match(spec.name):
        raise DefenseRegistryError(
            f"defense name {spec.name!r} must be non-empty and use only "
            "letters, digits, '_', '+', '-' (the spec grammar reserves "
            "'>', parentheses, commas, and '=')"
        )
    if spec.name in _REGISTRY and not replace:
        raise DuplicateDefenseError(
            f"defense {spec.name!r} is already registered; pass replace=True "
            "to overwrite it deliberately"
        )
    _REGISTRY[spec.name] = spec
    return spec


def unregister_defense(name: str) -> None:
    """Remove a defense from the registry (plugin teardown / test hygiene)."""
    if name not in _REGISTRY:
        raise UnknownDefenseError(f"cannot unregister unknown defense {name!r}")
    del _REGISTRY[name]


def defense_spec(name: str) -> DefenseSpec:
    """Look up a registered defense, with a helpful unknown-name error."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownDefenseError(
            f"unknown defense {name!r}; registered defenses: "
            f"{', '.join(available_defenses())}"
        ) from None


def available_defenses() -> tuple[str, ...]:
    """All registered defense names, in registration order."""
    return tuple(_REGISTRY)


def _parse_value(text: str):
    """A knob value: a Python literal, or a bare word as a string."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


_STAGE_PATTERN = re.compile(
    r"^(?P<name>[A-Za-z0-9_+-]+)(?:\((?P<kwargs>.*)\))?$"
)


def _parse_stage(token: str, spec: str) -> tuple[str, dict]:
    match = _STAGE_PATTERN.match(token)
    if match is None:
        raise DefenseSpecError(
            f"cannot parse defense stage {token!r} in spec {spec!r}; "
            "expected name or name(knob=value, ...)"
        )
    name = match.group("name")
    kwargs: dict = {}
    body = match.group("kwargs")
    if body:
        for part in body.split(","):
            part = part.strip()
            if not part:
                continue
            key, separator, value = part.partition("=")
            if not separator or not key.strip():
                raise DefenseSpecError(
                    f"cannot parse knob {part!r} of stage {token!r} in spec "
                    f"{spec!r}; expected knob=value"
                )
            kwargs[key.strip()] = _parse_value(value.strip())
    return name, kwargs


def parse_defense_spec(spec: str) -> list[tuple[str, dict]]:
    """Parse a spec string into ``[(stage_name, knob_dict), ...]``.

    Purely syntactic — names are not resolved against the registry here,
    so callers can report unknown-name and bad-grammar problems
    separately.
    """
    tokens = [token.strip() for token in spec.split(STAGE_SEPARATOR)]
    if not spec.strip() or any(not token for token in tokens):
        raise DefenseSpecError(
            f"empty stage in defense spec {spec!r}; expected "
            "name or name>name>... chains"
        )
    return [_parse_stage(token, spec) for token in tokens]


def split_spec_list(text: str) -> list[str]:
    """Split a comma-separated list of defense specs, respecting parens.

    The CLI's ``--defenses`` values look like
    ``"WO,MR,dpsgd(clip_norm=2.0,noise_multiplier=0.5),MR>dpsgd"`` — commas
    inside a stage's knob parentheses separate knobs, not arms.  Empty
    items are dropped, whitespace trimmed; an unbalanced parenthesis is a
    grammar error.
    """
    specs: list[str] = []
    current: list[str] = []
    depth = 0
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise DefenseSpecError(
                    f"unbalanced ')' in defense spec list {text!r}"
                )
        if char == "," and depth == 0:
            specs.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise DefenseSpecError(f"unbalanced '(' in defense spec list {text!r}")
    specs.append("".join(current).strip())
    return [spec for spec in specs if spec]


def canonical_spec(spec: str) -> str:
    """Fully-normalized spec string — :func:`make_defense`'s seeding key.

    Rendered back from the parsed form with knobs sorted by name and no
    incidental whitespace, so every spelling of the same configuration
    (``"dpsgd(a=1, b=2)"``, ``"dpsgd(b=2,a=1)"``, ``" dpsgd(a=1,b=2) "``)
    hands ``make_defense(spec, seed=...)`` the same private streams.

    Scope note: sweep grids key their cells (store cache, cell seeds) by
    the *literal* arm string — two spellings of one configuration are two
    distinct arms there, each internally deterministic.  Keep the
    spelling stable between a run and its ``--resume``; this helper only
    guarantees that direct ``make_defense``/``defense_from_name`` callers
    (lineups, per-trial defenses) are spelling-invariant.
    """
    stages = []
    for name, kwargs in parse_defense_spec(spec):
        if kwargs:
            rendered = ",".join(
                f"{key}={kwargs[key]!r}" for key in sorted(kwargs)
            )
            stages.append(f"{name}({rendered})")
        else:
            stages.append(name)
    return STAGE_SEPARATOR.join(stages)


def validate_defense_spec(spec: str) -> None:
    """Fail fast on a bad spec, raising whatever :func:`make_defense` would.

    Grammar errors, unknown names, undeclared knobs, invalid knob values
    (a factory rejecting ``clip_norm=-1``), and unsatisfiable pipelines
    (two per-sample-clipping stages) all surface here.  Grid runners call
    this per arm at construction so a bad spec aborts immediately, not
    one cell deep into a sweep.  Implemented as a throwaway build:
    factories are pure constructors, so building and discarding is both
    cheap and exactly as strict as the real thing.
    """
    make_defense(spec)


def make_defense(
    spec: "str | ClientDefense",
    seed: "int | None" = None,
    **knobs,
) -> ClientDefense:
    """Build a defense (or stack) from a spec string.

    Multi-stage specs return a
    :class:`~repro.defense.pipeline.DefensePipeline`; a single stage
    returns the bare defense.  ``knobs`` merge into (and override) the
    spec string's own arguments and are only meaningful for single-stage
    specs — for chains, put knobs in the string where they are
    unambiguous.  Undeclared knobs are a configuration typo and raise.

    With ``seed``, the built defense is reseeded with a seed derived from
    ``(seed, "defense", canonical spec)`` so every stochastic stage draws
    an order/worker-invariant private stream; grid runners pass their
    cell's fingerprint-derived seed here.  An already-built
    :class:`~repro.defense.base.ClientDefense` passes through (reseeded
    when ``seed`` is given).
    """
    if isinstance(spec, ClientDefense):
        if knobs:
            raise DefenseRegistryError(
                "knobs cannot be applied to an already-built defense "
                f"instance {spec.name!r}"
            )
        if seed is not None:
            spec.reseed(derive_seed(seed, "defense", spec.name))
        return spec
    stages = parse_defense_spec(spec)
    if knobs and len(stages) != 1:
        raise DefenseRegistryError(
            f"keyword knobs are ambiguous for the multi-stage spec {spec!r}; "
            "write them into the spec string per stage, e.g. "
            "'MR>dpsgd(noise_multiplier=0.5)'"
        )
    built: list[ClientDefense] = []
    for name, kwargs in stages:
        registered = defense_spec(name)
        merged = {**kwargs, **knobs} if len(stages) == 1 else kwargs
        unknown = set(merged) - registered.knob_names()
        if unknown:
            raise DefenseRegistryError(
                f"unknown knob(s) {sorted(unknown)} for defense {name!r}; "
                f"declared knobs: {sorted(registered.knob_names())}"
            )
        try:
            built.append(registered.factory(**merged))
        except DefenseRegistryError:
            raise
        except (ValueError, KeyError, TypeError) as error:
            # Normalize factory rejections (a negative clip_norm, an
            # unknown suite's KeyError-family UnknownSuiteError, a
            # mistyped knob value) into the registry's ValueError family,
            # so every bad spec is catchable the same way — the CLI and
            # grid runners fail fast with one usage error, never a raw
            # traceback.
            raise DefenseSpecError(
                f"cannot build stage {name!r} of defense spec {spec!r}: "
                f"{error}"
            ) from error
    defense = built[0] if len(built) == 1 else DefensePipeline(built)
    if seed is not None:
        defense.reseed(derive_seed(seed, "defense", canonical_spec(spec)))
    return defense


# --------------------------------------------------------------------------
# Built-in registrations.
# --------------------------------------------------------------------------


def _make_none(**knobs):
    return NoDefense()


def _make_oasis(suite: str):
    def factory(include_original: bool = True):
        return OasisDefense(suite, include_original=include_original)

    return factory


def _make_dpsgd(clip_norm: float = 1.0, noise_multiplier: float = 0.1):
    return DPSGDDefense(clip_norm=clip_norm, noise_multiplier=noise_multiplier)


def _make_dpfed(clip_norm: float = 1.0, noise_multiplier: float = 0.1):
    return DPGradientDefense(
        clip_norm=clip_norm, noise_multiplier=noise_multiplier
    )


def _make_prune(prune_fraction: float = 0.9):
    return GradientPruningDefense(prune_fraction=prune_fraction)


def _make_ats(suite: str = "MR"):
    return TransformReplaceDefense(suite=suite)


def _make_tabular(num_features: int = 8):
    return TabularOasisDefense(num_features=num_features)


register_defense(DefenseSpec(
    name="WO",
    factory=_make_none,
    stage="none",
    description="no defense — the paper's without-OASIS baseline arm",
))

for _suite_name in available_suites():
    register_defense(DefenseSpec(
        name=_suite_name,
        factory=_make_oasis(_suite_name),
        stage="batch",
        description=(
            f"OASIS batch expansion with the {_suite_name} suite "
            f"({len(suite_by_name(_suite_name))} transforms; paper Eq. 7)"
        ),
        knobs=(
            DefenseKnob(
                "include_original", True,
                "keep originals in D' (disable only for ablations)",
            ),
        ),
    ))

register_defense(DefenseSpec(
    name="dpsgd",
    factory=_make_dpsgd,
    stage="gradient",
    stochastic=True,
    description=(
        "DP-SGD: per-example clipping + Gaussian noise sigma = z*C/B "
        "(Abadi et al.; the paper's utility-cost baseline)"
    ),
    knobs=(
        DefenseKnob("clip_norm", 1.0, "per-example L2 clip C"),
        DefenseKnob("noise_multiplier", 0.1, "noise multiplier z"),
    ),
))

register_defense(DefenseSpec(
    name="dpfed",
    factory=_make_dpfed,
    stage="gradient",
    stochastic=True,
    description=(
        "update-level DP (DP-FedSGD): clip the whole update, add "
        "N(0, (z*C)^2) before upload"
    ),
    knobs=(
        DefenseKnob("clip_norm", 1.0, "update L2 clip C"),
        DefenseKnob("noise_multiplier", 0.1, "noise multiplier z = sigma/C"),
    ),
))

register_defense(DefenseSpec(
    name="prune",
    factory=_make_prune,
    stage="gradient",
    description=(
        "gradient magnitude pruning (Zhu et al. / Soteria-style); the "
        "paper notes pruned gradients still leak content"
    ),
    knobs=(
        DefenseKnob("prune_fraction", 0.9, "fraction of entries zeroed"),
    ),
))

register_defense(DefenseSpec(
    name="ats",
    factory=_make_ats,
    stage="batch",
    stochastic=True,
    description=(
        "ATSPrivacy-style transform-replace (Gao et al. 2021): each image "
        "replaced by one transformed version, batch size unchanged "
        "(RTF defeats it — paper Fig. 14)"
    ),
    knobs=(
        DefenseKnob("suite", "MR", "transformation suite to draw from"),
    ),
))

register_defense(DefenseSpec(
    name="tabular",
    factory=_make_tabular,
    stage="batch",
    stochastic=True,
    description=(
        "tabular OASIS: group permutation + mean-preserving jitter "
        "companions for feature rows (paper future-work direction)"
    ),
    knobs=(
        DefenseKnob("num_features", 8, "row width the default transforms cover"),
    ),
))
