"""Defenses: OASIS (the paper's contribution), analysis tools, baselines."""

from repro.defense.analysis import ActivationOverlapReport, activation_overlap_report
from repro.defense.base import ClientDefense, NoDefense
from repro.defense.baselines import (
    DPGradientDefense,
    DPSGDDefense,
    GradientPruningDefense,
    TransformReplaceDefense,
    defense_lineup,
)
from repro.defense.detection import DetectionReport, inspect_state
from repro.defense.oasis import OasisDefense
from repro.defense.tabular import (
    GroupPermutation,
    MeanPreservingJitter,
    TabularOasisDefense,
    TabularTransform,
)

__all__ = [
    "ClientDefense",
    "NoDefense",
    "OasisDefense",
    "DPGradientDefense",
    "DPSGDDefense",
    "GradientPruningDefense",
    "TransformReplaceDefense",
    "defense_lineup",
    "ActivationOverlapReport",
    "activation_overlap_report",
    "TabularOasisDefense",
    "TabularTransform",
    "GroupPermutation",
    "MeanPreservingJitter",
    "inspect_state",
    "DetectionReport",
]
