"""Defenses: OASIS (the paper's contribution), the composable pipeline,
the pluggable registry, analysis tools, and baselines."""

from repro.defense.analysis import ActivationOverlapReport, activation_overlap_report
from repro.defense.base import ClientDefense, NoDefense
from repro.defense.baselines import (
    DPGradientDefense,
    DPSGDDefense,
    GradientPruningDefense,
    TransformReplaceDefense,
    defense_lineup,
)
from repro.defense.detection import DetectionReport, inspect_state
from repro.defense.oasis import OasisDefense
from repro.defense.pipeline import STAGE_SEPARATOR, DefensePipeline
from repro.defense.registry import (
    DefenseKnob,
    DefenseRegistryError,
    DefenseSpec,
    DefenseSpecError,
    DuplicateDefenseError,
    UnknownDefenseError,
    available_defenses,
    canonical_spec,
    defense_spec,
    make_defense,
    parse_defense_spec,
    register_defense,
    split_spec_list,
    unregister_defense,
    validate_defense_spec,
)
from repro.defense.tabular import (
    GroupPermutation,
    MeanPreservingJitter,
    TabularOasisDefense,
    TabularTransform,
)

__all__ = [
    "ClientDefense",
    "NoDefense",
    "OasisDefense",
    "DefensePipeline",
    "STAGE_SEPARATOR",
    "DPGradientDefense",
    "DPSGDDefense",
    "GradientPruningDefense",
    "TransformReplaceDefense",
    "defense_lineup",
    "DefenseKnob",
    "DefenseSpec",
    "DefenseRegistryError",
    "DefenseSpecError",
    "DuplicateDefenseError",
    "UnknownDefenseError",
    "available_defenses",
    "canonical_spec",
    "defense_spec",
    "make_defense",
    "parse_defense_spec",
    "register_defense",
    "split_spec_list",
    "unregister_defense",
    "validate_defense_spec",
    "ActivationOverlapReport",
    "activation_overlap_report",
    "TabularOasisDefense",
    "TabularTransform",
    "GroupPermutation",
    "MeanPreservingJitter",
    "inspect_state",
    "DetectionReport",
]
