"""Proposition 1 analysis: activation-set overlap between images and transforms.

Paper Sec. III-A proves that if ``x_t`` shares its *entire* set of activated
malicious neurons with a companion ``x'_t``, the adversary cannot isolate
``x_t``'s gradients from the batch sum.  These utilities measure how often
that premise holds for a crafted attack layer, a batch, and an OASIS suite
— turning the paper's theory into a checkable, testable quantity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.imprint import ImprintedModel, activation_matrix
from repro.defense.oasis import OasisDefense


@dataclass
class ActivationOverlapReport:
    """Per-batch summary of Proposition 1's premise.

    Attributes
    ----------
    protected:
        Boolean per original image: True when some companion activates an
        identical neuron set (the proposition's sufficient condition).
    sole_activations:
        Number of attacked neurons activated by exactly one member of D'
        (each is a perfect-reconstruction opportunity for the attacker).
    jaccard:
        Mean Jaccard similarity between each original's activation set and
        its best-overlapping companion (1.0 = identical sets).
    """

    protected: np.ndarray
    sole_activations: int
    jaccard: np.ndarray

    @property
    def protected_fraction(self) -> float:
        if len(self.protected) == 0:
            return 0.0
        return float(np.mean(self.protected))

    @property
    def mean_jaccard(self) -> float:
        if len(self.jaccard) == 0:
            return 0.0
        return float(np.mean(self.jaccard))


def _jaccard(a: np.ndarray, b: np.ndarray) -> float:
    union = np.logical_or(a, b).sum()
    if union == 0:
        return 1.0
    return float(np.logical_and(a, b).sum() / union)


def activation_overlap_report(
    model: ImprintedModel,
    defense: OasisDefense,
    images: np.ndarray,
    labels: np.ndarray,
) -> ActivationOverlapReport:
    """Evaluate Proposition 1's premise for a crafted model and a batch.

    Expands the batch exactly as the client would, computes the boolean
    activation matrix of the malicious layer over D', and checks, for every
    original, whether any of its transformed companions activates the same
    neuron set.
    """
    if len(images) == 0:
        return ActivationOverlapReport(
            protected=np.zeros(0, dtype=bool),
            sole_activations=0,
            jaccard=np.zeros(0),
        )
    expanded, _ = defense.expand_batch(images, labels)
    weight, bias = model.imprint_parameters()
    flat = expanded.reshape(len(expanded), -1).astype(np.float64)
    activations = activation_matrix(weight, bias, flat)

    batch_size = len(images)
    protected = np.zeros(batch_size, dtype=bool)
    jaccard = np.zeros(batch_size)
    for t in range(batch_size):
        row = activations[t]
        best = 0.0
        for companion in defense.companions_of(t, batch_size):
            companion_row = activations[companion]
            if np.array_equal(row, companion_row):
                protected[t] = True
            best = max(best, _jaccard(row, companion_row))
        jaccard[t] = best

    counts = activations.sum(axis=0)
    sole = int(np.sum(counts == 1))
    return ActivationOverlapReport(
        protected=protected, sole_activations=sole, jaccard=jaccard
    )
