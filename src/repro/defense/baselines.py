"""Baseline defenses the paper compares against (Secs. I, V; Fig. 14).

- :class:`DPGradientDefense` — DP-SGD-style per-sample clipping plus
  Gaussian noise (Abadi et al.).  The paper's motivation: at noise levels
  that hide reconstructions, accuracy collapses.
- :class:`GradientPruningDefense` — magnitude sparsification (Zhu et al. /
  Soteria-style); the paper notes pruned gradients still leak content.
- :class:`TransformReplaceDefense` — the ATSPrivacy-style mechanism of Gao
  et al. (CVPR 2021) that *replaces* each image with one transformed
  version instead of unioning transforms in.  Fig. 14 shows RTF defeats it:
  a replaced image can still be a neuron's sole activator, so it is
  reconstructed verbatim (just transformed — content revealed).

All three register in :mod:`repro.defense.registry` (``dpsgd``, ``dpfed``,
``prune``, ``ats``) and compose with OASIS through
:class:`~repro.defense.pipeline.DefensePipeline` spec strings like
``"MR>dpsgd"``.  The stochastic ones (noise, transform choice) draw from
the private generator installed by
:meth:`~repro.defense.base.ClientDefense.reseed` when a grid runner has
derived one from its cell's configuration fingerprint, falling back to the
caller-provided generator otherwise — never from a fixed or global stream,
so defended cells stay order- and worker-invariant.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.augment.suites import TransformSuite, suite_by_name
from repro.defense.base import ClientDefense


class DPGradientDefense(ClientDefense):
    """Update-level DP: clip the gradient to ``clip_norm``, add N(0, sigma^2).

    ``noise_multiplier`` is sigma / clip_norm, the standard DP-SGD
    parameterization; noise is added to the *aggregate* update the client
    uploads, which is the FL-practical variant (DP-FedSGD).
    """

    def __init__(
        self,
        clip_norm: float = 1.0,
        noise_multiplier: float = 0.1,
        seed: "int | None" = None,
    ) -> None:
        if clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        if noise_multiplier < 0:
            raise ValueError("noise_multiplier must be non-negative")
        self.clip_norm = clip_norm
        self.noise_multiplier = noise_multiplier
        self.name = f"DP(sigma={noise_multiplier})"
        if seed is not None:
            self.reseed(seed)

    def process_gradients(
        self,
        gradients: dict[str, np.ndarray],
        rng: np.random.Generator,
    ) -> dict[str, np.ndarray]:
        rng = self._generator(rng)
        total_norm = np.sqrt(
            sum(float(np.sum(g ** 2)) for g in gradients.values())
        )
        scale = min(1.0, self.clip_norm / max(total_norm, 1e-12))
        sigma = self.noise_multiplier * self.clip_norm
        noised = {}
        for name, grad in gradients.items():
            noise = rng.standard_normal(grad.shape) * sigma
            noised[name] = grad * scale + noise
        return noised


class DPSGDDefense(ClientDefense):
    """Abadi et al.'s DP-SGD: per-example clipping + calibrated Gaussian noise.

    Each example's gradient is clipped to ``clip_norm`` (= C); the client
    uploads the mean of clipped gradients plus N(0, (z * C / B)^2) noise,
    where ``z`` is ``noise_multiplier``.  Two properties matter for the
    paper's argument:

    - Clipping alone cannot stop gradient inversion: it rescales each
      example's gradients uniformly, and Eq. 6 divides two gradients of the
      same example, so the ratio — the reconstruction — is unchanged.
    - Only the *noise* breaks reconstruction, and the z needed to do so
      also perturbs every honest training step (the utility cost the paper
      contrasts OASIS against).
    """

    def __init__(
        self,
        clip_norm: float = 1.0,
        noise_multiplier: float = 0.1,
        seed: "int | None" = None,
    ) -> None:
        if clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        if noise_multiplier < 0:
            raise ValueError("noise_multiplier must be non-negative")
        self.clip_norm = clip_norm
        self.noise_multiplier = noise_multiplier
        self.per_sample_clip = clip_norm
        self.name = f"DPSGD(z={noise_multiplier})"
        if seed is not None:
            self.reseed(seed)

    def finalize_update(
        self,
        gradients: dict[str, np.ndarray],
        num_examples: int,
        rng: np.random.Generator,
    ) -> dict[str, np.ndarray]:
        sigma = self.noise_multiplier * self.clip_norm / max(num_examples, 1)
        if sigma == 0.0:
            return gradients
        rng = self._generator(rng)
        return {
            name: grad + rng.standard_normal(grad.shape) * sigma
            for name, grad in gradients.items()
        }


class GradientPruningDefense(ClientDefense):
    """Zero out the smallest-magnitude fraction of every gradient tensor."""

    def __init__(self, prune_fraction: float = 0.9) -> None:
        if not 0.0 <= prune_fraction < 1.0:
            raise ValueError("prune_fraction must be in [0, 1)")
        self.prune_fraction = prune_fraction
        self.name = f"Prune({prune_fraction})"

    def process_gradients(
        self,
        gradients: dict[str, np.ndarray],
        rng: np.random.Generator,
    ) -> dict[str, np.ndarray]:
        pruned = {}
        for name, grad in gradients.items():
            flat = np.abs(grad).reshape(-1)
            k = int(len(flat) * self.prune_fraction)
            if k == 0:
                pruned[name] = grad.copy()
                continue
            threshold = np.partition(flat, k - 1)[k - 1]
            mask = np.abs(grad) > threshold
            pruned[name] = grad * mask
        return pruned


class TransformReplaceDefense(ClientDefense):
    """ATSPrivacy-style: replace each image with one transformed version.

    The batch size is unchanged — no union with the original — so the attack
    principle still applies to the transformed images themselves, and RTF
    reconstructs them perfectly (paper Fig. 14).

    ``seed`` installs a private generator for the per-image transform
    choice (``None`` draws from the caller's generator); grid runners
    reseed it from the cell's configuration fingerprint instead, so the
    chosen transforms never depend on execution order.
    """

    def __init__(
        self, suite: "TransformSuite | str" = "MR", seed: "int | None" = None
    ) -> None:
        if isinstance(suite, str):
            suite = suite_by_name(suite)
        self.suite = suite
        self.name = f"ATS({suite.name})"
        if seed is not None:
            self.reseed(seed)

    def process_batch(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        rng = self._generator(rng)
        choices = rng.integers(0, len(self.suite.transforms), size=len(images))
        replaced = np.stack(
            [
                self.suite.transforms[choice](image)
                for image, choice in zip(images, choices)
            ]
        ).astype(images.dtype, copy=False)
        return replaced, labels.copy()


def defense_lineup(names: Sequence[str]) -> list[ClientDefense]:
    """Build the standard figure lineups from registered spec strings.

    Registry-backed: ``"WO"`` maps to no defense, suite names to OASIS,
    and any registered spec (``"dpsgd"``, ``"MR>dpsgd"``...) works too.
    Unknown names raise
    :class:`~repro.defense.registry.UnknownDefenseError` listing the
    available defenses instead of an opaque ``KeyError``.
    """
    # Imported lazily: the registry module imports this one for the
    # baseline classes it registers.
    from repro.defense.registry import make_defense

    return [make_defense(name) for name in names]
