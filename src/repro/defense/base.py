"""Client-side defense interface: the four-stage pipeline surface.

A defense acts at explicit points of a client's local update, in order:

- ``process_batch``: preprocess the training batch *before* gradients are
  computed (ATSPrivacy-style replacement acts here; OASIS expansion rides
  this hook too — its ``expand_batch`` is the batch-growing special case).
- gradient computation (per-sample clipped when ``per_sample_clip`` is
  set, plain batch gradients otherwise — see
  :func:`repro.fl.gradients.compute_defended_update`).
- ``process_gradients``: post-process the computed gradients (pruning,
  update-level noising).
- ``finalize_update``: the last hook before upload; receives the batch
  size the gradients were actually averaged over, for defenses whose
  noise calibration depends on it (DP-SGD's sigma * C / B).

Every hook defaults to identity so defenses override only what they use.
Defenses compose through :class:`repro.defense.pipeline.DefensePipeline`,
which chains any sequence of stages and multiplies their
``expansion_factor`` contributions, and resolve by name through
:mod:`repro.defense.registry`.

Stochastic defenses (DP noise, transform-replace) draw from a *private*
generator installed by :meth:`ClientDefense.reseed` — derived from a
configuration-fingerprint seed via :func:`repro.utils.rng.rng_for` — so a
sweep cell's noise is invariant to execution order and worker assignment.
Without :meth:`reseed` they fall back to the caller-provided generator.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import rng_for


class ClientDefense:
    """No-op defense; base class for all client-side mechanisms."""

    name = "none"

    # When set (a positive float), the client computes per-example
    # gradients, clips each to this L2 norm, and averages — the DP-SGD
    # microbatch discipline.  None means ordinary batch gradients.
    per_sample_clip: float | None = None

    # Private generator installed by reseed(); stochastic hooks prefer it
    # over the caller's generator when present.
    _rng: "np.random.Generator | None" = None

    def expansion_factor(self) -> int:
        """|D'| / |D| of :meth:`process_batch`; 1 for non-expanding defenses."""
        return 1

    def reseed(self, base_seed: int) -> None:
        """Install a private generator keyed by ``(base_seed, self.name)``.

        Called by the registry/pipeline with a fingerprint-derived seed so
        every stochastic stage draws an order- and worker-invariant stream.
        Deterministic defenses inherit this and simply never consume it.
        """
        self._rng = rng_for(base_seed, "defense", self.name)

    def _generator(self, rng: np.random.Generator) -> np.random.Generator:
        """The stream stochastic hooks draw from: private when reseeded."""
        return self._rng if self._rng is not None else rng

    def process_batch(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        return images, labels

    def process_gradients(
        self,
        gradients: dict[str, np.ndarray],
        rng: np.random.Generator,
    ) -> dict[str, np.ndarray]:
        return gradients

    def finalize_update(
        self,
        gradients: dict[str, np.ndarray],
        num_examples: int,
        rng: np.random.Generator,
    ) -> dict[str, np.ndarray]:
        """Last hook before upload; identity by default.

        Runs *after* :meth:`process_gradients` — both are invoked by
        :func:`repro.fl.gradients.compute_defended_update`, so a defense
        overriding both gets both applied, exactly once each.  Override
        this one when the action depends on the batch size the gradients
        were averaged over (DP-SGD's sigma * C / B noise calibration).
        """
        return gradients

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NoDefense(ClientDefense):
    """Explicit "WO" (without OASIS) arm of the paper's comparisons."""

    name = "WO"
