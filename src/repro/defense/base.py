"""Client-side defense interface.

A defense may act at two points of a client's local update:

- ``process_batch``: preprocess the training batch *before* gradients are
  computed (OASIS augments here; ATSPrivacy-style replaces here).
- ``process_gradients``: post-process the computed gradients before upload
  (DP noising and gradient pruning act here).

Both hooks default to identity so defenses override only what they use.
"""

from __future__ import annotations

import numpy as np


class ClientDefense:
    """No-op defense; base class for all client-side mechanisms."""

    name = "none"

    # When set (a positive float), the client computes per-example
    # gradients, clips each to this L2 norm, and averages — the DP-SGD
    # microbatch discipline.  None means ordinary batch gradients.
    per_sample_clip: float | None = None

    def process_batch(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        return images, labels

    def process_gradients(
        self,
        gradients: dict[str, np.ndarray],
        rng: np.random.Generator,
    ) -> dict[str, np.ndarray]:
        return gradients

    def finalize_update(
        self,
        gradients: dict[str, np.ndarray],
        num_examples: int,
        rng: np.random.Generator,
    ) -> dict[str, np.ndarray]:
        """Last hook before upload; defaults to :meth:`process_gradients`.

        Defenses whose noise calibration depends on the batch size
        (DP-SGD's sigma * C / B) override this instead.
        """
        return self.process_gradients(gradients, rng)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NoDefense(ClientDefense):
    """Explicit "WO" (without OASIS) arm of the paper's comparisons."""

    name = "WO"
