"""Composable defense stacks: chain client-side defenses into one pipeline.

The paper evaluates OASIS both alone and *composed* with standard FL
training — and its central claim is that batch-space defenses compose where
gradient-space defenses trade utility away (Sec. V).  A
:class:`DefensePipeline` makes that composition a first-class object: any
sequence of :class:`~repro.defense.base.ClientDefense` stages chains
through the four-stage hook surface in order

    process_batch -> (gradient computation) -> process_gradients
                  -> finalize_update

with batch hooks applied first-to-last (so ``MR>dpsgd`` expands the batch
before DP-SGD's per-sample clipping sees it), gradient hooks applied in the
same stage order, and expansion factors multiplying — the FedAvg example
count reported upstream stays the *pre*-expansion batch size no matter how
many stages expand (see
:func:`repro.fl.gradients.compute_defended_update`), while ``finalize_update``
still receives the fully-expanded count for noise calibration.

Stochasticity stays order/worker-invariant: :meth:`DefensePipeline.reseed`
hands every stage its own seed derived from the pipeline's base seed, the
stage index, and the stage name, so adding or reordering stages never
perturbs another stage's stream and serial/parallel/resumed sweeps remain
byte-identical.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.defense.base import ClientDefense
from repro.utils.rng import derive_seed

# The stage separator of the registry's spec-string grammar ("MR>dpsgd").
STAGE_SEPARATOR = ">"


class DefensePipeline(ClientDefense):
    """A sequence of client-side defenses applied as one.

    Parameters
    ----------
    stages:
        The defenses to chain, applied in order at every hook.  Nested
        pipelines are flattened, so composing compositions never builds a
        tree.  At most one stage may request per-sample clipping
        (``per_sample_clip``): two clipping regimes in one update have no
        well-defined composition, and silently picking one would run a
        different experiment than the one asked for.
    name:
        Display name; defaults to the stage names joined with ``">"``,
        matching the registry's spec-string grammar.
    """

    def __init__(
        self, stages: Sequence[ClientDefense], name: "str | None" = None
    ) -> None:
        flat: list[ClientDefense] = []
        for stage in stages:
            if isinstance(stage, DefensePipeline):
                flat.extend(stage.stages)
            else:
                flat.append(stage)
        if not flat:
            raise ValueError("a defense pipeline needs at least one stage")
        self.stages = tuple(flat)
        clippers = [
            stage for stage in self.stages if stage.per_sample_clip is not None
        ]
        if len(clippers) > 1:
            raise ValueError(
                "at most one pipeline stage may set per_sample_clip; got "
                f"{[stage.name for stage in clippers]} — two per-sample "
                "clipping regimes cannot compose in a single update"
            )
        self.per_sample_clip = (
            clippers[0].per_sample_clip if clippers else None
        )
        self.name = name or STAGE_SEPARATOR.join(
            stage.name for stage in self.stages
        )

    def expansion_factor(self) -> int:
        """|D'| / |D| through the whole chain: the stage factors multiply."""
        factor = 1
        for stage in self.stages:
            factor *= stage.expansion_factor()
        return factor

    def reseed(self, base_seed: int) -> None:
        """Give every stage an independent stream derived from ``base_seed``.

        Keyed by stage index *and* name, so two identically-named stages
        (e.g. the same jitter twice) still draw independently, and a
        stage's stream never moves because a sibling was added or removed.
        """
        for index, stage in enumerate(self.stages):
            stage.reseed(derive_seed(base_seed, "stage", str(index), stage.name))

    def process_batch(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        for stage in self.stages:
            images, labels = stage.process_batch(images, labels, rng)
        return images, labels

    def process_gradients(
        self,
        gradients: dict[str, np.ndarray],
        rng: np.random.Generator,
    ) -> dict[str, np.ndarray]:
        for stage in self.stages:
            gradients = stage.process_gradients(gradients, rng)
        return gradients

    def finalize_update(
        self,
        gradients: dict[str, np.ndarray],
        num_examples: int,
        rng: np.random.Generator,
    ) -> dict[str, np.ndarray]:
        # Chain the stages' own finalize hooks with the shared
        # post-expansion example count; stage order matches the
        # process_gradients pass.
        for stage in self.stages:
            gradients = stage.finalize_update(gradients, num_examples, rng)
        return gradients

    def __repr__(self) -> str:
        return f"DefensePipeline({self.name!r}, {len(self.stages)} stages)"
