"""Client-side malicious-model inspection.

The paper's threat model notes the dishonest server keeps modifications
"minimal to avoid detection" — implying clients could inspect incoming
models.  This module implements that inspection as a complementary (not
alternative) measure to OASIS: it flags the structural signatures of the
known imprint attacks in a received state dict.

Signatures checked per fully-connected weight/bias pair:

- **RTF (structural)**: many mutually colinear weight rows (compared
  against the dominant row direction, sign-insensitive) with strictly
  monotone biases — the quantile-bin construction.
- **LOKI (structural)**: a large fraction of exactly-zero weight rows
  whose biases are pinned far negative (permanently dark neurons)
  alongside a live block — the per-client-disjoint block construction.
  No conventional initialization or training produces bit-zero rows.
- **CAH (functional)**: when the client probes the layer with its *own*
  data, trap weights show an implausibly sparse activation profile —
  nearly every neuron fires for only a small fraction of inputs, unlike
  any conventionally initialized or trained layer.
- **QBI (functional)**: quantile-placed biases pin every neuron's firing
  rate to the *same* target (1/B), so the per-neuron activation rates
  cluster in a band far tighter than any conventional layer's — even
  when the target rate itself is too large for the CAH sparsity check.
  The band's ceiling deliberately stops below 0.5: rates pinned *at*
  one half (QBI with ``expected_batch_size=2``) are statistically
  indistinguishable from an honest zero-bias layer on centered data, so
  flagging them would trade a detection nobody can make for a steady
  false-positive stream.

Layer discovery is deliberately forgiving about naming: an attacker
controls the state-dict keys, so weight/bias pairs are matched under any
of the common separators (``imprint.weight``, ``imprint_weight``, a bare
``weight``) and a transposed weight matrix (bias length matching the
*column* count) is normalized before inspection rather than escaping it.

Detection is heuristic by design: a server aware of the detector can trade
attack efficiency for stealth (e.g. noising rows), which is exactly why
the paper pursues the input-side OASIS defense instead of detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class DetectionReport:
    """Findings from inspecting one model state."""

    suspicious: bool
    findings: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.suspicious


# Separators under which `<root><sep>weight` / `<root><sep>bias` pairs are
# recognized.  "" covers a bare top-level "weight" key.
_KEY_SEPARATORS = (".", "_", "-", "/", "")


def _bias_key_candidates(name: str) -> list[str]:
    """Possible bias keys for a weight key, lowercased, across conventions."""
    lowered = name.lower()
    candidates = []
    for sep in _KEY_SEPARATORS:
        suffix = f"{sep}weight"
        if lowered.endswith(suffix):
            # The bias may use a different separator than the weight
            # (e.g. "imprint_weight" next to "imprint.bias").
            bare_root = lowered[: len(lowered) - len(suffix)]
            for bias_sep in _KEY_SEPARATORS:
                candidate = bare_root + bias_sep + "bias"
                if candidate not in candidates:
                    candidates.append(candidate)
            break
    return candidates


def _linear_pairs(state: dict[str, np.ndarray]):
    """Yield (name, weight, bias) for FC layers found in a state dict.

    Matches weight keys under any common separator, finds the partner
    bias under any separator — both case-insensitively, since the
    dishonest server chooses the key spelling — and normalizes a
    transposed weight (bias length equal to the column count) so a layer
    stored as ``(d, n)`` instead of ``(n, d)`` cannot escape inspection.
    """
    by_lowered: dict[str, np.ndarray] = {}
    for name, value in state.items():
        by_lowered.setdefault(name.lower(), value)
    for name, value in state.items():
        value = np.asarray(value)
        if value.ndim != 2:
            continue
        for bias_name in _bias_key_candidates(name):
            bias = by_lowered.get(bias_name)
            if bias is None:
                continue
            bias = np.asarray(bias)
            if bias.ndim != 1:
                continue
            if bias.shape[0] == value.shape[0]:
                yield name, value, bias
                break
            if bias.shape[0] == value.shape[1]:
                yield name, value.T, bias
                break


def _colinear_row_fraction(weight: np.ndarray, tolerance: float = 1e-6) -> float:
    """Fraction of rows colinear with the *dominant* row direction.

    The reference is the modal row — the row with the most (anti)parallel
    partners under ``|cosine| > 1 - tolerance`` — not ``rows[0]``: a server
    aware of a first-row comparison could noise just that one imprint row
    and drop the detected fraction to ~0 while keeping the attack intact.
    Counting ``|cosine|`` also catches negated copies of the imprint
    direction, which extract inputs just as well (Eq. 6 is sign-invariant).
    """
    norms = np.linalg.norm(weight, axis=1)
    valid = norms > 1e-12
    if valid.sum() < 2:
        return 0.0
    rows = weight[valid] / norms[valid][:, None]
    cosines = np.abs(rows @ rows.T)
    partner_counts = (cosines > 1.0 - tolerance).sum(axis=1)
    return float(partner_counts.max() / len(rows))


def inspect_state(
    state: dict[str, np.ndarray],
    probe_inputs: np.ndarray | None = None,
    colinear_threshold: float = 0.9,
    sparse_activation_threshold: float = 0.1,
    sparse_neuron_fraction: float = 0.9,
    zero_row_fraction: float = 0.2,
    disabled_bias_threshold: float = -1e3,
    rate_band_ceiling: float = 0.45,
    rate_band_spread: float = 0.08,
    min_neurons: int = 16,
) -> DetectionReport:
    """Scan a broadcast model state for imprint-attack signatures.

    Parameters
    ----------
    state:
        The broadcast state dict (as the client receives it).
    probe_inputs:
        Optional (num_probes, ...) array of the client's *own* samples.
        When given, fully-connected layers whose input width matches the
        flattened probe width are additionally checked for the CAH/QBI
        trap-weight signatures (implausibly sparse or implausibly uniform
        activation rates).
    zero_row_fraction / disabled_bias_threshold:
        LOKI signature: at least this fraction of rows exactly zero, each
        with a bias below the threshold (a neuron that can never fire).
    rate_band_ceiling / rate_band_spread:
        QBI signature: at least ``sparse_neuron_fraction`` of probed
        activation rates at or below the ceiling with a standard
        deviation below the spread — rates tuned to one shared quantile.
        The default ceiling (0.45) catches every ``expected_batch_size
        >= 3``; rates pinned at 0.5 (B=2) are left alone by design (see
        the module docstring).
    """
    findings: list[str] = []
    flat_probes = None
    if probe_inputs is not None and len(probe_inputs) >= 8:
        flat_probes = probe_inputs.reshape(len(probe_inputs), -1).astype(np.float64)
    for layer, weight, bias in _linear_pairs(state):
        if weight.shape[0] < min_neurons:
            continue
        colinear = _colinear_row_fraction(weight)
        monotone = bool(
            np.all(np.diff(bias) < 0.0) or np.all(np.diff(bias) > 0.0)
        )
        if colinear >= colinear_threshold and monotone:
            findings.append(
                f"{layer}: {100 * colinear:.0f}% identical weight rows with "
                "monotone biases (RTF-style quantile imprint)"
            )
            continue
        row_norms = np.linalg.norm(weight, axis=1)
        zero_rows = row_norms == 0.0
        disabled = zero_rows & (bias < disabled_bias_threshold)
        dead_fraction = float(np.mean(disabled))
        if zero_row_fraction <= dead_fraction < 1.0:
            findings.append(
                f"{layer}: {100 * dead_fraction:.0f}% exactly-zero weight "
                "rows with disabling biases next to a live block "
                "(LOKI-style per-client imprint blocks)"
            )
            continue
        if flat_probes is not None and weight.shape[1] == flat_probes.shape[1]:
            rates = ((flat_probes @ weight.T + bias) > 0.0).mean(axis=0)
            sparse = float(np.mean(rates < sparse_activation_threshold))
            if sparse >= sparse_neuron_fraction:
                findings.append(
                    f"{layer}: {100 * sparse:.0f}% of neurons fire for <"
                    f"{100 * sparse_activation_threshold:.0f}% of local data "
                    "(CAH-style trap weights)"
                )
                continue
            banded = float(np.mean(rates <= rate_band_ceiling))
            spread = float(rates.std())
            if (
                banded >= sparse_neuron_fraction
                and spread <= rate_band_spread
                and float(rates.mean()) > 0.0
            ):
                findings.append(
                    f"{layer}: activation rates pinned to a "
                    f"{100 * rate_band_ceiling:.0f}%-band with spread "
                    f"{spread:.3f} (QBI-style quantile-tuned trap biases)"
                )
    return DetectionReport(suspicious=bool(findings), findings=findings)
