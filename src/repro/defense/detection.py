"""Client-side malicious-model inspection.

The paper's threat model notes the dishonest server keeps modifications
"minimal to avoid detection" — implying clients could inspect incoming
models.  This module implements that inspection as a complementary (not
alternative) measure to OASIS: it flags the structural signatures of the
known imprint attacks in a received state dict.

Signatures checked per fully-connected weight/bias pair:

- **RTF (structural)**: many mutually colinear weight rows (compared
  against the dominant row direction, sign-insensitive) with strictly
  monotone biases — the quantile-bin construction.
- **CAH (functional)**: when the client probes the layer with its *own*
  data, trap weights show an implausibly sparse activation profile —
  nearly every neuron fires for only a small fraction of inputs, unlike
  any conventionally initialized or trained layer.

Detection is heuristic by design: a server aware of the detector can trade
attack efficiency for stealth (e.g. noising rows), which is exactly why
the paper pursues the input-side OASIS defense instead of detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class DetectionReport:
    """Findings from inspecting one model state."""

    suspicious: bool
    findings: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.suspicious


def _linear_pairs(state: dict[str, np.ndarray]):
    """Yield (name, weight, bias) for FC layers found in a state dict."""
    for name, value in state.items():
        if not name.endswith(".weight") or value.ndim != 2:
            continue
        bias_name = name[: -len(".weight")] + ".bias"
        bias = state.get(bias_name)
        if bias is not None and bias.ndim == 1 and bias.shape[0] == value.shape[0]:
            yield name[: -len(".weight")], value, bias


def _colinear_row_fraction(weight: np.ndarray, tolerance: float = 1e-6) -> float:
    """Fraction of rows colinear with the *dominant* row direction.

    The reference is the modal row — the row with the most (anti)parallel
    partners under ``|cosine| > 1 - tolerance`` — not ``rows[0]``: a server
    aware of a first-row comparison could noise just that one imprint row
    and drop the detected fraction to ~0 while keeping the attack intact.
    Counting ``|cosine|`` also catches negated copies of the imprint
    direction, which extract inputs just as well (Eq. 6 is sign-invariant).
    """
    norms = np.linalg.norm(weight, axis=1)
    valid = norms > 1e-12
    if valid.sum() < 2:
        return 0.0
    rows = weight[valid] / norms[valid][:, None]
    cosines = np.abs(rows @ rows.T)
    partner_counts = (cosines > 1.0 - tolerance).sum(axis=1)
    return float(partner_counts.max() / len(rows))


def inspect_state(
    state: dict[str, np.ndarray],
    probe_inputs: np.ndarray | None = None,
    colinear_threshold: float = 0.9,
    sparse_activation_threshold: float = 0.1,
    sparse_neuron_fraction: float = 0.9,
    min_neurons: int = 16,
) -> DetectionReport:
    """Scan a broadcast model state for imprint-attack signatures.

    Parameters
    ----------
    state:
        The broadcast state dict (as the client receives it).
    probe_inputs:
        Optional (num_probes, ...) array of the client's *own* samples.
        When given, fully-connected layers whose input width matches the
        flattened probe width are additionally checked for the CAH
        trap-weight signature (implausibly sparse activations).
    """
    findings: list[str] = []
    flat_probes = None
    if probe_inputs is not None and len(probe_inputs) >= 8:
        flat_probes = probe_inputs.reshape(len(probe_inputs), -1).astype(np.float64)
    for layer, weight, bias in _linear_pairs(state):
        if weight.shape[0] < min_neurons:
            continue
        colinear = _colinear_row_fraction(weight)
        monotone = bool(
            np.all(np.diff(bias) < 0.0) or np.all(np.diff(bias) > 0.0)
        )
        if colinear >= colinear_threshold and monotone:
            findings.append(
                f"{layer}: {100 * colinear:.0f}% identical weight rows with "
                "monotone biases (RTF-style quantile imprint)"
            )
            continue
        if flat_probes is not None and weight.shape[1] == flat_probes.shape[1]:
            rates = ((flat_probes @ weight.T + bias) > 0.0).mean(axis=0)
            sparse = float(np.mean(rates < sparse_activation_threshold))
            if sparse >= sparse_neuron_fraction:
                findings.append(
                    f"{layer}: {100 * sparse:.0f}% of neurons fire for <"
                    f"{100 * sparse_activation_threshold:.0f}% of local data "
                    "(CAH-style trap weights)"
                )
    return DetectionReport(suspicious=bool(findings), findings=findings)
