"""The OASIS defense (paper Sec. III-B, Eq. 7).

For every image ``x_t`` in the local batch ``D``, OASIS builds the set
``X'_t`` of transformed counterparts via a
:class:`~repro.augment.TransformSuite` and trains on

    D' = D  ∪  X'_1 ∪ ... ∪ X'_B            (Eq. 7)

with each transformed image inheriting its original's label.  When an image
and its transforms activate the same attacked neurons (Proposition 1), the
best an active reconstruction attack can extract is a linear combination of
the image and its transforms — an unrecognizable overlap — while the extra
augmented data preserves (often improves) model generalization.
"""

from __future__ import annotations

import numpy as np

from repro.augment.suites import TransformSuite, suite_by_name
from repro.defense.base import ClientDefense


class OasisDefense(ClientDefense):
    """Batch expansion with a transformation suite (the paper's defense).

    Parameters
    ----------
    suite:
        A :class:`TransformSuite` or a paper name ("MR", "mR", "SH",
        "HFlip", "VFlip", "MR+SH").
    include_original:
        Keep the original images in D' (Eq. 7 unions them in; disabling
        this turns OASIS into the weaker replace-style defense and exists
        only for ablations).
    """

    def __init__(self, suite: TransformSuite | str, include_original: bool = True) -> None:
        if isinstance(suite, str):
            suite = suite_by_name(suite)
        self.suite = suite
        self.include_original = include_original
        self.name = suite.name

    def expansion_factor(self) -> int:
        """|D'| / |D|: one original plus one image per transform."""
        return len(self.suite) + (1 if self.include_original else 0)

    def expand_batch(
        self, images: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Construct D' (Eq. 7): originals first, then transform blocks.

        Output ordering is deterministic: ``images`` then, for each
        transform in the suite, the transformed copies of the whole batch.
        The companion indices of original ``t`` are thus
        ``B*(k+1) + t`` for transform index ``k``.

        Each transform block is produced by the suite's vectorized
        :meth:`~repro.augment.TransformSuite.expand_batch` path — one
        shared-grid gather per transform instead of a per-image Python
        loop, which is what lets the defense keep up with large-scale
        multi-client attack evaluation.
        """
        if len(images) == 0:
            return images.copy(), labels.copy()
        blocks = [images] if self.include_original else []
        label_blocks = [labels] if self.include_original else []
        for transformed in self.suite.expand_batch(images):
            blocks.append(transformed.astype(images.dtype, copy=False))
            label_blocks.append(labels.copy())
        return np.concatenate(blocks, axis=0), np.concatenate(label_blocks, axis=0)

    def companions_of(self, index: int, batch_size: int) -> list[int]:
        """Indices in D' of the transformed copies of original ``index``."""
        offset = 1 if self.include_original else 0
        return [batch_size * (k + offset) + index for k in range(len(self.suite))]

    def process_batch(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        return self.expand_batch(images, labels)

    def __repr__(self) -> str:
        return f"OasisDefense(suite={self.suite.name!r})"
