"""Datasets and loaders: procedural ImageNet/CIFAR100 stand-ins."""

from repro.data.loaders import DataLoader, class_balanced_batch
from repro.data.synthetic import (
    IMAGENETTE_CLASSES,
    SyntheticImageDataset,
    make_synthetic_dataset,
    synthetic_cifar100,
    synthetic_imagenet,
    train_test_split,
)

__all__ = [
    "SyntheticImageDataset",
    "make_synthetic_dataset",
    "synthetic_imagenet",
    "synthetic_cifar100",
    "train_test_split",
    "DataLoader",
    "class_balanced_batch",
    "IMAGENETTE_CLASSES",
]
