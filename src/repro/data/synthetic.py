"""Procedural image datasets standing in for ImageNet and CIFAR100.

The paper evaluates on an ImageNet 10-class subset (Imagenette) and on
CIFAR100.  Neither is downloadable in this offline environment, so we
synthesize structured datasets that exercise the identical code paths:

- Each class has a smooth *prototype field* (a superposition of random
  low-frequency 2D cosines per channel) plus a class-specific geometric
  marker, so classes are visually and statistically distinct and a CNN can
  learn them (Table I regime).
- Each sample perturbs its prototype with an instance field, amplitude
  jitter, and pixel noise, so batches contain genuinely distinct images for
  the reconstruction attacks to recover.

The reconstruction attacks operate on raw pixel algebra (per-image scalar
measurements and ReLU activations), not semantics, so this substitution
preserves the behaviour under study.  See DESIGN.md section 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

IMAGENETTE_CLASSES = (
    "tench",
    "English springer",
    "cassette player",
    "chain saw",
    "church",
    "French horn",
    "garbage truck",
    "gas pump",
    "golf ball",
    "parachute",
)


@dataclass
class SyntheticImageDataset:
    """In-memory labelled image dataset in NCHW float layout, pixels in [0,1]."""

    images: np.ndarray
    labels: np.ndarray
    num_classes: int
    name: str = "synthetic"
    class_names: Sequence[str] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.images.ndim != 4:
            raise ValueError("images must be (N, C, H, W)")
        if len(self.images) != len(self.labels):
            raise ValueError("images and labels length mismatch")
        if not self.class_names:
            self.class_names = tuple(f"class_{i}" for i in range(self.num_classes))

    def __len__(self) -> int:
        return len(self.images)

    @property
    def image_shape(self) -> tuple[int, int, int]:
        return tuple(self.images.shape[1:])

    @property
    def flat_dim(self) -> int:
        return int(np.prod(self.image_shape))

    def subset(self, indices: np.ndarray) -> "SyntheticImageDataset":
        return SyntheticImageDataset(
            self.images[indices],
            self.labels[indices],
            self.num_classes,
            name=self.name,
            class_names=self.class_names,
        )

    def batch(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return (images, labels) as float64/int64 arrays for training."""
        return self.images[indices].astype(np.float64), self.labels[indices]

    def sample_batch(
        self, batch_size: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        indices = rng.choice(len(self), size=batch_size, replace=False)
        return self.batch(indices)

    def pixel_statistics(self) -> tuple[float, float]:
        """Mean and std of the per-image mean pixel value.

        The RTF attack calibrates its bin quantiles against exactly this
        scalar measurement distribution (paper Sec. IV-B), assuming the
        server knows public statistics of the data domain.
        """
        means = self.images.reshape(len(self), -1).mean(axis=1)
        return float(means.mean()), float(means.std())


def _smooth_field(
    rng: np.random.Generator,
    channels: int,
    height: int,
    width: int,
    waves: int = 4,
    max_frequency: float = 3.0,
) -> np.ndarray:
    """Superpose random low-frequency cosines into a (C, H, W) field."""
    yy, xx = np.mgrid[0:height, 0:width].astype(np.float64)
    yy /= height
    xx /= width
    out = np.zeros((channels, height, width))
    for c in range(channels):
        for _ in range(waves):
            fx, fy = rng.uniform(0.5, max_frequency, size=2)
            phase = rng.uniform(0.0, 2.0 * np.pi)
            amplitude = rng.uniform(0.4, 1.0)
            out[c] += amplitude * np.cos(2.0 * np.pi * (fx * xx + fy * yy) + phase)
    return out


def _class_marker(
    rng: np.random.Generator, channels: int, height: int, width: int
) -> np.ndarray:
    """A class-distinctive soft disk with random position, radius, colour."""
    cy = rng.uniform(0.25, 0.75) * height
    cx = rng.uniform(0.25, 0.75) * width
    radius = rng.uniform(0.12, 0.28) * min(height, width)
    colour = rng.uniform(-1.0, 1.0, size=channels)
    yy, xx = np.mgrid[0:height, 0:width].astype(np.float64)
    dist2 = (yy - cy) ** 2 + (xx - cx) ** 2
    bump = np.exp(-dist2 / (2.0 * radius ** 2))
    return colour[:, None, None] * bump[None, :, :]


def _normalize01(image: np.ndarray) -> np.ndarray:
    low = image.min()
    high = image.max()
    if high - low < 1e-12:
        return np.zeros_like(image)
    return (image - low) / (high - low)


def make_synthetic_dataset(
    num_classes: int,
    samples_per_class: int,
    image_size: int = 32,
    channels: int = 3,
    seed: int = 0,
    noise_level: float = 0.06,
    instance_weight: float = 0.25,
    name: str = "synthetic",
    class_names: Optional[Sequence[str]] = None,
) -> SyntheticImageDataset:
    """Generate a class-structured dataset of smooth textured images.

    Samples of a class share a prototype field and marker; each sample mixes
    in its own instance field and noise, then is renormalized to [0, 1].
    """
    rng = np.random.default_rng(seed)
    proto_rng, marker_rng, sample_rng = (
        np.random.default_rng(s) for s in np.random.SeedSequence(seed).spawn(3)
    )
    del rng
    prototypes = [
        _smooth_field(proto_rng, channels, image_size, image_size)
        for _ in range(num_classes)
    ]
    markers = [
        _class_marker(marker_rng, channels, image_size, image_size)
        for _ in range(num_classes)
    ]
    total = num_classes * samples_per_class
    images = np.empty((total, channels, image_size, image_size), dtype=np.float32)
    labels = np.empty(total, dtype=np.int64)
    index = 0
    for label in range(num_classes):
        base = prototypes[label] + 1.5 * markers[label]
        for _ in range(samples_per_class):
            amplitude = sample_rng.uniform(0.8, 1.2)
            instance = _smooth_field(
                sample_rng, channels, image_size, image_size, waves=2, max_frequency=6.0
            )
            noise = sample_rng.standard_normal(base.shape) * noise_level
            raw = amplitude * base + instance_weight * instance + noise
            images[index] = _normalize01(raw).astype(np.float32)
            labels[index] = label
            index += 1
    order = np.random.default_rng(seed + 1).permutation(total)
    return SyntheticImageDataset(
        images[order],
        labels[order],
        num_classes,
        name=name,
        class_names=tuple(class_names) if class_names else (),
    )


def synthetic_imagenet(
    samples_per_class: int = 32,
    image_size: int = 64,
    seed: int = 1001,
) -> SyntheticImageDataset:
    """Stand-in for the paper's 10-class ImageNet (Imagenette) subset."""
    return make_synthetic_dataset(
        num_classes=10,
        samples_per_class=samples_per_class,
        image_size=image_size,
        seed=seed,
        name="imagenet",
        class_names=IMAGENETTE_CLASSES,
    )


def synthetic_cifar100(
    samples_per_class: int = 8,
    image_size: int = 32,
    seed: int = 2002,
) -> SyntheticImageDataset:
    """Stand-in for CIFAR100: 100 classes of 3x32x32 images."""
    return make_synthetic_dataset(
        num_classes=100,
        samples_per_class=samples_per_class,
        image_size=image_size,
        seed=seed,
        name="cifar100",
    )


def train_test_split(
    dataset: SyntheticImageDataset,
    test_fraction: float = 0.2,
    seed: int = 0,
) -> tuple[SyntheticImageDataset, SyntheticImageDataset]:
    """Split into train/test with a seeded shuffle, stratification-free."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    n_test = max(1, int(len(dataset) * test_fraction))
    return dataset.subset(order[n_test:]), dataset.subset(order[:n_test])
