"""Minibatch iteration over datasets with deterministic shuffling."""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.data.synthetic import SyntheticImageDataset


class DataLoader:
    """Iterates (images, labels) minibatches over a dataset.

    Shuffling is reseeded per epoch from a root seed, so two loaders built
    with the same arguments replay identical batch streams — required for
    the paper's with/without-OASIS accuracy comparison (Table I) to be a
    controlled experiment.
    """

    def __init__(
        self,
        dataset: SyntheticImageDataset,
        batch_size: int,
        shuffle: bool = True,
        seed: int = 0,
        drop_last: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.seed = seed
        self.drop_last = drop_last
        self._epoch = 0

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        if self.shuffle:
            rng = np.random.default_rng((self.seed, self._epoch))
            order = rng.permutation(n)
        else:
            order = np.arange(n)
        self._epoch += 1
        end = n - (n % self.batch_size) if self.drop_last else n
        for start in range(0, end, self.batch_size):
            indices = order[start : start + self.batch_size]
            if self.drop_last and len(indices) < self.batch_size:
                break
            yield self.dataset.batch(indices)


def class_balanced_batch(
    dataset: SyntheticImageDataset,
    batch_size: int,
    rng: np.random.Generator,
    unique_labels: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw a batch; with ``unique_labels`` every label appears at most once.

    The linear-model inversion experiment (paper Sec. IV-D) assumes batches
    whose images carry unique labels; this helper constructs them.
    """
    if unique_labels:
        classes = np.unique(dataset.labels)
        if batch_size > len(classes):
            raise ValueError(
                f"cannot draw {batch_size} unique labels from {len(classes)} classes"
            )
        chosen = rng.choice(classes, size=batch_size, replace=False)
        indices = np.array(
            [rng.choice(np.flatnonzero(dataset.labels == c)) for c in chosen]
        )
        return dataset.batch(indices)
    return dataset.sample_batch(batch_size, rng)
