"""Numpy-backed autograd tensor engine.

The engine provides PyTorch-like eager automatic differentiation with exact
float64 gradient algebra.  It exists because the OASIS active-reconstruction
attacks invert the literal gradient arithmetic of a Linear+ReLU layer
(Eq. 6 of the paper): any substrate with approximate gradients would change
the experiment, so we build the exact thing.
"""

from repro.tensor import backend, buffers
from repro.tensor.autograd import is_grad_enabled, no_grad, topological_order
from repro.tensor.backend import reference_kernels, set_kernel_mode, use_backend
from repro.tensor.conv import (
    avg_pool2d,
    batch_norm,
    conv2d,
    global_avg_pool2d,
    max_pool2d,
)
from repro.tensor.tensor import Tensor, concatenate, set_profile_hook, stack

__all__ = [
    "Tensor",
    "concatenate",
    "stack",
    "no_grad",
    "is_grad_enabled",
    "topological_order",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "batch_norm",
    "backend",
    "buffers",
    "reference_kernels",
    "set_kernel_mode",
    "use_backend",
    "set_profile_hook",
]
