"""Single-node fused kernels for the hot chains of the training loop.

Each kernel here collapses a multi-node autograd chain into one graph node
with a hand-written backward.  The contract, enforced by the equivalence
suite (``tests/test_tensor_core_equivalence.py``) and the golden grids, is
**bit-identity with the reference graph**: the forward replays the exact
float64 op order the unfused chain executes, and the backward replays the
exact contribution order the reference closures produce — so a sweep cell
run on fused kernels is byte-for-byte the cell run on the reference graph,
just with ~4x fewer graph nodes and temporaries on its hottest path.

Why bit-identity holds (the derivations live in DESIGN.md "The tensor
core"): ``a - b == a + (-b)`` exactly; negation is a sign-bit flip and
commutes bitwise with pairwise-summation reductions; multiplication is
commutative exactly; ``out=`` ufuncs round identically to their allocating
forms; and the backward contribution order is read off the reference
graph's reversed topological order, not re-derived algebraically.

Callers are expected to gate on :data:`repro.tensor.backend.FUSED` — in
reference mode the layers/losses build the original chains instead, which
is what ``benchmarks/bench_tensor_core.py`` measures against.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

import repro.tensor.backend as backend
import repro.tensor.buffers as buffers
from repro.tensor.tensor import Tensor

__all__ = ["linear", "cross_entropy"]


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor]) -> Tensor:
    """Fused ``y = x @ W.T + b`` for 2-D activations: one node, no views.

    Replaces the reference transpose->matmul->add three-node chain.  The
    backward replays the reference contribution order (bias from the add
    node first, then weight, then the input from the matmul node) and the
    reference BLAS call shapes — ``grad_w`` is computed as
    ``(x.T @ g).T`` exactly as the transpose node's backward produced it,
    because a differently-laid-out GEMM may sum in a different order.
    """
    xp = backend.xp
    data = x.data @ weight.data.T
    if bias is not None:
        xp.add(data, bias.data, out=data)
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(out: Tensor) -> Callable[[], None]:
        def run() -> None:
            g = out.grad
            if bias is not None and bias.requires_grad:
                bias._accumulate(g.sum(axis=(0,)), fresh=True)
            if weight.requires_grad:
                # The reference BLAS call, then an exact elementwise copy
                # into a C-contiguous pooled buffer: downstream *full*
                # reductions (gradient clipping's np.sum) flatten in
                # memory order, so handing out the transpose view itself
                # would change their pairwise-summation grouping.
                grad_w = x.data.T @ g
                buf = buffers.acquire(weight.data.shape, grad_w.dtype)
                np.copyto(buf, grad_w.T)
                weight._accumulate(buf, fresh=True)
            if x.requires_grad:
                x._accumulate(g @ weight.data, fresh=True)

        return run

    return Tensor._make(data, parents, backward)


def _one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Bitwise-identical twin of :func:`repro.nn.losses.one_hot`."""
    labels = np.asarray(labels, dtype=np.int64)
    encoded = np.zeros((labels.shape[0], num_classes))
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def cross_entropy(logits: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Fused softmax cross-entropy over integer targets: one graph node.

    Replaces the ~10-node reference chain (max/sub/exp/sum/log/sub/mul/
    sum/neg/sum/scale) built by ``log_softmax`` + ``CrossEntropyLoss``.
    Forward and backward replay the reference op order exactly — see the
    module docstring for the bit-identity contract.
    """
    if reduction not in ("mean", "sum"):
        raise ValueError(f"unsupported reduction: {reduction}")
    xp = backend.xp
    num_classes = logits.shape[-1]
    encoded = _one_hot(np.asarray(targets), num_classes)

    # Forward, op for op as the reference chain computes it.
    maxes = logits.data.max(axis=-1, keepdims=True)
    shifted = logits.data - maxes
    exps = xp.exp(shifted)
    sums = exps.sum(axis=-1, keepdims=True)
    log_probs = shifted - xp.log(sums)
    per_sample = -(log_probs * encoded).sum(axis=-1)
    total = per_sample.sum()
    if reduction == "mean":
        inv = 1.0 / per_sample.size
        data = total * inv
    else:
        inv = None
        data = total

    def backward(out: Tensor) -> Callable[[], None]:
        def run() -> None:
            if not logits.requires_grad:
                return
            # Reference reversed-topo replay: the loss scale, then the
            # one-hot path into log_probs, then the log-sum-exp path.
            g = out.grad * inv if inv is not None else out.grad
            a1 = (-g) * encoded
            g_sums = a1.sum(axis=-1, keepdims=True)
            grad_logits = a1 + xp.broadcast_to((-g_sums) / sums, a1.shape) * exps
            logits._accumulate(grad_logits, fresh=True)

        return run

    return Tensor._make(np.asarray(data), (logits,), backward)
