"""Autograd bookkeeping: gradient mode and the backward pass.

The engine is a reverse-mode automatic differentiation system in the style
of PyTorch's eager mode: every operation on :class:`~repro.tensor.Tensor`
records a closure that propagates the output gradient to its parents.
Calling :meth:`Tensor.backward` topologically sorts the recorded graph and
runs the closures in reverse order.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.tensor.tensor import Tensor

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables gradient recording.

    Inside the context, operations produce plain result tensors with no
    autograd graph attached, mirroring ``torch.no_grad()``.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def topological_order(root: "Tensor") -> list["Tensor"]:
    """Return tensors reachable from ``root`` in reverse-usable order.

    The returned list ends with ``root``; iterating it backwards visits every
    node after all of its consumers, which is the order required for
    reverse-mode accumulation.  Iterative DFS is used so deep graphs (long
    training loops, deep ResNets) do not hit the recursion limit.
    """
    order: list["Tensor"] = []
    visited: set[int] = set()
    stack: list[tuple["Tensor", bool]] = [(root, False)]
    while stack:
        node, children_done = stack.pop()
        if children_done:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    return order
