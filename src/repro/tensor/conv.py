"""Convolution and pooling primitives built on im2col.

These operations complete the autograd engine with the spatial ops required
by the ResNet-18 evaluation model of the OASIS paper.  All ops take and
return :class:`~repro.tensor.Tensor` in NCHW layout.

The kernels are dual-mode (see :mod:`repro.tensor.backend`): the fused mode
gathers patches through a zero-copy strided view into a pooled column
buffer, scatters gradients back with a :math:`k^2` slice-accumulate loop,
and reuses cached einsum contraction paths; the reference mode keeps the
pre-acceleration fancy-index gather and ``np.add.at`` scatter.  Both modes
are bit-identical: the gather reads the same elements into the same layout,
the slice loop applies per-pixel contributions in exactly ``np.add.at``'s
patch-major order (for a fixed output pixel, contributing patches arrive in
ascending ``ki*k+kj``, and within one patch offset every target pixel is
written at most once), and a cached einsum path dispatches the same
contraction ``optimize=True`` would re-derive on every call.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

import numpy as np

import repro.tensor.backend as backend
import repro.tensor.buffers as buffers
from repro.tensor.tensor import Tensor


@lru_cache(maxsize=None)
def _im2col_indices(
    height: int, width: int, kernel: int, stride: int
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Return gather indices mapping an image to its patch matrix.

    Cached: every conv/pool forward of every cell of every sweep used to
    recompute these index grids from scratch.  The returned arrays are
    marked read-only so no caller can corrupt the cache.
    """
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    i0 = np.repeat(np.arange(kernel), kernel)
    j0 = np.tile(np.arange(kernel), kernel)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    rows = i0.reshape(-1, 1) + i1.reshape(1, -1)
    cols = j0.reshape(-1, 1) + j1.reshape(1, -1)
    rows.flags.writeable = False
    cols.flags.writeable = False
    return rows, cols, out_h, out_w


_EINSUM_PATHS: dict = {}


def _einsum(equation: str, a: np.ndarray, b: np.ndarray, out=None):
    """``einsum`` with the contraction path cached per (equation, shapes).

    ``optimize=True`` re-runs the path search on every call — measurable
    against small convolutions — while an explicit path dispatches the
    identical contraction, so results are bit-identical.
    """
    key = (equation, a.shape, b.shape)
    path = _EINSUM_PATHS.get(key)
    if path is None:
        path = np.einsum_path(equation, a, b, optimize=True)[0]
        _EINSUM_PATHS[key] = path
    return backend.xp.einsum(equation, a, b, out=out, optimize=path)


def _im2col(x: np.ndarray, kernel: int, stride: int) -> tuple[np.ndarray, tuple]:
    """Rearrange ``x`` (N,C,H,W) into columns of shape (N, C*k*k, L).

    Fused mode copies a 6-D strided window view straight into a pooled
    buffer (same elements, same (ki*k+kj, oh*out_w+ow) layout as the
    reference fancy-index gather); callers release the buffer when their
    backward (or grad-free forward) is done with it.
    """
    n, c, h, w = x.shape
    rows, cols, out_h, out_w = _im2col_indices(h, w, kernel, stride)
    if backend.FUSED:
        sn, sc, sh, sw = x.strides
        view = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, kernel, kernel, out_h, out_w),
            strides=(sn, sc, sh, sw, sh * stride, sw * stride),
        )
        buf = buffers.acquire((n, c * kernel * kernel, out_h * out_w), x.dtype)
        np.copyto(buf.reshape(n, c, kernel, kernel, out_h, out_w), view)
        return buf, (rows, cols, out_h, out_w)
    patches = x[:, :, rows, cols]
    # Fancy indexing with leading slices yields a transposed-view layout;
    # materialize in C order so both kernel modes hand every consumer the
    # same memory layout (full reductions over a pool's output flatten in
    # memory order, so a layout mismatch shows up as one-ulp drift).
    patches = np.ascontiguousarray(patches)
    return patches.reshape(n, c * kernel * kernel, -1), (rows, cols, out_h, out_w)


def _col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    rows: np.ndarray,
    col_idx: np.ndarray,
    stride: int,
) -> np.ndarray:
    """Scatter-add column gradients back to image layout (inverse of im2col).

    Fused mode replaces the ``np.add.at`` scatter with a slice-accumulate
    loop over the ``k*k`` patch offsets.  Summation order is provably
    identical: ``np.add.at`` applies colliding contributions in its index
    arrays' C iteration order (patch-offset-major), and the loop applies
    whole patch offsets in that same ascending order while within one
    offset every target pixel receives at most one contribution.
    """
    n, c, h, w = x_shape
    if backend.FUSED:
        out_h = (h - kernel) // stride + 1
        out_w = (w - kernel) // stride + 1
        grad = buffers.acquire((n, c, h, w), cols.dtype)
        grad.fill(0.0)
        patches = cols.reshape(n, c, kernel, kernel, out_h, out_w)
        for ki in range(kernel):
            row_end = ki + stride * out_h
            for kj in range(kernel):
                col_end = kj + stride * out_w
                grad[:, :, ki:row_end:stride, kj:col_end:stride] += patches[:, :, ki, kj]
        return grad
    grad = np.zeros((n, c, h, w), dtype=cols.dtype)
    patches = cols.reshape(n, c, kernel * kernel, -1)
    np.add.at(grad, (slice(None), slice(None), rows, col_idx), patches)
    return grad


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None, stride: int = 1, padding: int = 0) -> Tensor:
    """2D cross-correlation (the deep-learning "convolution").

    Parameters
    ----------
    x: input of shape (N, C_in, H, W)
    weight: kernel of shape (C_out, C_in, k, k)
    bias: optional per-channel bias of shape (C_out,)
    """
    if padding:
        x = x.pad2d(padding)
    n, c_in, h, w = x.shape
    c_out, _, kernel, _ = weight.shape
    fused = backend.FUSED
    cols, (rows, col_idx, out_h, out_w) = _im2col(x.data, kernel, stride)
    w_mat = weight.data.reshape(c_out, -1)
    if fused:
        out = _einsum("of,nfl->nol", w_mat, cols)
        if bias is not None:
            np.add(out, bias.data.reshape(1, -1, 1), out=out)
    else:
        out = np.einsum("of,nfl->nol", w_mat, cols, optimize=True)
        if bias is not None:
            out = out + bias.data.reshape(1, -1, 1)
    out = out.reshape(n, c_out, out_h, out_w)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(result: Tensor) -> Callable[[], None]:
        def run() -> None:
            grad_out = result.grad.reshape(n, c_out, -1)
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad_out.sum(axis=(0, 2)), fresh=fused)
            if weight.requires_grad:
                if fused:
                    grad_w = _einsum("nol,nfl->of", grad_out, cols)
                else:
                    grad_w = np.einsum("nol,nfl->of", grad_out, cols, optimize=True)
                weight._accumulate(grad_w.reshape(weight.shape), fresh=fused)
            if x.requires_grad:
                if fused:
                    grad_cols = buffers.acquire(cols.shape, cols.dtype)
                    _einsum("of,nol->nfl", w_mat, grad_out, out=grad_cols)
                else:
                    grad_cols = np.einsum("of,nol->nfl", w_mat, grad_out, optimize=True)
                grad_x = _col2im(grad_cols, x.shape, kernel, rows, col_idx, stride)
                if fused:
                    buffers.release(grad_cols)
                x._accumulate(grad_x, fresh=fused)
            if fused:
                buffers.release(cols)

        return run

    result = Tensor._make(out, parents, backward)
    if fused and result._backward is None:
        # Grad-free forward (no_grad inversion paths): nothing will run
        # the backward, so hand the column buffer back immediately.
        buffers.release(cols)
    return result


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) windows."""
    stride = stride if stride is not None else kernel
    n, c, h, w = x.shape
    fused = backend.FUSED
    cols, (rows, col_idx, out_h, out_w) = _im2col(
        x.data.reshape(n * c, 1, h, w), kernel, stride
    )
    # cols: (N*C, k*k, L)
    argmax = cols.argmax(axis=1)
    out = np.take_along_axis(cols, argmax[:, None, :], axis=1)[:, 0, :]
    out = out.reshape(n, c, out_h, out_w)

    def backward(result: Tensor) -> Callable[[], None]:
        def run() -> None:
            if not x.requires_grad:
                return
            grad_out = result.grad.reshape(n * c, 1, -1)
            if fused:
                grad_cols = buffers.acquire(cols.shape, cols.dtype)
                grad_cols.fill(0.0)
            else:
                grad_cols = np.zeros_like(cols)
            np.put_along_axis(grad_cols, argmax[:, None, :], grad_out, axis=1)
            grad = _col2im(grad_cols, (n * c, 1, h, w), kernel, rows, col_idx, stride)
            if fused:
                buffers.release(grad_cols)
                buffers.release(cols)
            x._accumulate(grad.reshape(n, c, h, w), fresh=fused)

        return run

    result = Tensor._make(out, (x,), backward)
    if fused and result._backward is None:
        buffers.release(cols)
    return result


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling over windows."""
    stride = stride if stride is not None else kernel
    n, c, h, w = x.shape
    fused = backend.FUSED
    cols, (rows, col_idx, out_h, out_w) = _im2col(
        x.data.reshape(n * c, 1, h, w), kernel, stride
    )
    out = cols.mean(axis=1).reshape(n, c, out_h, out_w)
    window = kernel * kernel

    def backward(result: Tensor) -> Callable[[], None]:
        def run() -> None:
            if not x.requires_grad:
                return
            grad_out = result.grad.reshape(n * c, 1, -1) / window
            grad_cols = np.broadcast_to(grad_out, cols.shape)
            grad = _col2im(grad_cols, (n * c, 1, h, w), kernel, rows, col_idx, stride)
            if fused:
                buffers.release(cols)
            x._accumulate(grad.reshape(n, c, h, w), fresh=fused)

        return run

    result = Tensor._make(out, (x,), backward)
    if fused and result._backward is None:
        buffers.release(cols)
    return result


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Adaptive average pooling to 1x1, returned as (N, C)."""
    return x.mean(axis=(2, 3))


def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Fused batch normalization over (N, H, W) per channel.

    Updates ``running_mean``/``running_var`` in place while ``training``.
    ``x`` may be (N, C) or (N, C, H, W).  (This op was numpy-fused from
    the start; only the gradient-adoption hint is mode-dependent.)
    """
    spatial = x.ndim == 4
    axes = (0, 2, 3) if spatial else (0,)
    shape = (1, -1, 1, 1) if spatial else (1, -1)

    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        count = x.data.size // x.shape[1]
        unbiased = var * count / max(count - 1, 1)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased
    else:
        mean = running_mean
        var = running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean.reshape(shape)) * inv_std.reshape(shape)
    out = gamma.data.reshape(shape) * x_hat + beta.data.reshape(shape)

    def backward(result: Tensor) -> Callable[[], None]:
        def run() -> None:
            fused = backend.FUSED
            grad_out = result.grad
            if beta.requires_grad:
                beta._accumulate(grad_out.sum(axis=axes), fresh=fused)
            if gamma.requires_grad:
                gamma._accumulate((grad_out * x_hat).sum(axis=axes), fresh=fused)
            if not x.requires_grad:
                return
            if training:
                g = grad_out * gamma.data.reshape(shape)
                mean_g = g.mean(axis=axes, keepdims=True)
                mean_gx = (g * x_hat).mean(axis=axes, keepdims=True)
                grad_x = (g - mean_g - x_hat * mean_gx) * inv_std.reshape(shape)
            else:
                grad_x = grad_out * gamma.data.reshape(shape) * inv_std.reshape(shape)
            x._accumulate(grad_x, fresh=fused)

        return run

    return Tensor._make(out, (x, gamma, beta), backward)
