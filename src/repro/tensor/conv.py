"""Convolution and pooling primitives built on im2col.

These operations complete the autograd engine with the spatial ops required
by the ResNet-18 evaluation model of the OASIS paper.  All ops take and
return :class:`~repro.tensor.Tensor` in NCHW layout.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.tensor.tensor import Tensor


def _im2col_indices(
    height: int, width: int, kernel: int, stride: int
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Return gather indices mapping an image to its patch matrix."""
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    i0 = np.repeat(np.arange(kernel), kernel)
    j0 = np.tile(np.arange(kernel), kernel)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    rows = i0.reshape(-1, 1) + i1.reshape(1, -1)
    cols = j0.reshape(-1, 1) + j1.reshape(1, -1)
    return rows, cols, out_h, out_w


def _im2col(x: np.ndarray, kernel: int, stride: int) -> tuple[np.ndarray, tuple]:
    """Rearrange ``x`` (N,C,H,W) into columns of shape (N, C*k*k, L)."""
    n, c, h, w = x.shape
    rows, cols, out_h, out_w = _im2col_indices(h, w, kernel, stride)
    # (N, C, k*k, L)
    patches = x[:, :, rows, cols]
    return patches.reshape(n, c * kernel * kernel, -1), (rows, cols, out_h, out_w)


def _col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    rows: np.ndarray,
    col_idx: np.ndarray,
) -> np.ndarray:
    """Scatter-add column gradients back to image layout (inverse of im2col)."""
    n, c, h, w = x_shape
    grad = np.zeros((n, c, h, w), dtype=cols.dtype)
    patches = cols.reshape(n, c, kernel * kernel, -1)
    np.add.at(grad, (slice(None), slice(None), rows, col_idx), patches)
    return grad


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None, stride: int = 1, padding: int = 0) -> Tensor:
    """2D cross-correlation (the deep-learning "convolution").

    Parameters
    ----------
    x: input of shape (N, C_in, H, W)
    weight: kernel of shape (C_out, C_in, k, k)
    bias: optional per-channel bias of shape (C_out,)
    """
    if padding:
        x = x.pad2d(padding)
    n, c_in, h, w = x.shape
    c_out, _, kernel, _ = weight.shape
    cols, (rows, col_idx, out_h, out_w) = _im2col(x.data, kernel, stride)
    w_mat = weight.data.reshape(c_out, -1)
    out = np.einsum("of,nfl->nol", w_mat, cols, optimize=True)
    if bias is not None:
        out = out + bias.data.reshape(1, -1, 1)
    out = out.reshape(n, c_out, out_h, out_w)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(result: Tensor) -> Callable[[], None]:
        def run() -> None:
            grad_out = result.grad.reshape(n, c_out, -1)
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad_out.sum(axis=(0, 2)))
            if weight.requires_grad:
                grad_w = np.einsum("nol,nfl->of", grad_out, cols, optimize=True)
                weight._accumulate(grad_w.reshape(weight.shape))
            if x.requires_grad:
                grad_cols = np.einsum("of,nol->nfl", w_mat, grad_out, optimize=True)
                x._accumulate(_col2im(grad_cols, x.shape, kernel, rows, col_idx))

        return run

    return Tensor._make(out, parents, backward)


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) windows."""
    stride = stride if stride is not None else kernel
    n, c, h, w = x.shape
    cols, (rows, col_idx, out_h, out_w) = _im2col(
        x.data.reshape(n * c, 1, h, w), kernel, stride
    )
    # cols: (N*C, k*k, L)
    argmax = cols.argmax(axis=1)
    out = np.take_along_axis(cols, argmax[:, None, :], axis=1)[:, 0, :]
    out = out.reshape(n, c, out_h, out_w)

    def backward(result: Tensor) -> Callable[[], None]:
        def run() -> None:
            if not x.requires_grad:
                return
            grad_out = result.grad.reshape(n * c, 1, -1)
            grad_cols = np.zeros_like(cols)
            np.put_along_axis(grad_cols, argmax[:, None, :], grad_out, axis=1)
            grad = _col2im(grad_cols, (n * c, 1, h, w), kernel, rows, col_idx)
            x._accumulate(grad.reshape(n, c, h, w))

        return run

    return Tensor._make(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling over windows."""
    stride = stride if stride is not None else kernel
    n, c, h, w = x.shape
    cols, (rows, col_idx, out_h, out_w) = _im2col(
        x.data.reshape(n * c, 1, h, w), kernel, stride
    )
    out = cols.mean(axis=1).reshape(n, c, out_h, out_w)
    window = kernel * kernel

    def backward(result: Tensor) -> Callable[[], None]:
        def run() -> None:
            if not x.requires_grad:
                return
            grad_out = result.grad.reshape(n * c, 1, -1) / window
            grad_cols = np.broadcast_to(grad_out, cols.shape)
            grad = _col2im(grad_cols, (n * c, 1, h, w), kernel, rows, col_idx)
            x._accumulate(grad.reshape(n, c, h, w))

        return run

    return Tensor._make(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Adaptive average pooling to 1x1, returned as (N, C)."""
    return x.mean(axis=(2, 3))


def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Fused batch normalization over (N, H, W) per channel.

    Updates ``running_mean``/``running_var`` in place while ``training``.
    ``x`` may be (N, C) or (N, C, H, W).
    """
    spatial = x.ndim == 4
    axes = (0, 2, 3) if spatial else (0,)
    shape = (1, -1, 1, 1) if spatial else (1, -1)

    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        count = x.data.size // x.shape[1]
        unbiased = var * count / max(count - 1, 1)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased
    else:
        mean = running_mean
        var = running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean.reshape(shape)) * inv_std.reshape(shape)
    out = gamma.data.reshape(shape) * x_hat + beta.data.reshape(shape)

    def backward(result: Tensor) -> Callable[[], None]:
        def run() -> None:
            grad_out = result.grad
            if beta.requires_grad:
                beta._accumulate(grad_out.sum(axis=axes))
            if gamma.requires_grad:
                gamma._accumulate((grad_out * x_hat).sum(axis=axes))
            if not x.requires_grad:
                return
            if training:
                count = x.data.size // x.shape[1]
                g = grad_out * gamma.data.reshape(shape)
                mean_g = g.mean(axis=axes, keepdims=True)
                mean_gx = (g * x_hat).mean(axis=axes, keepdims=True)
                grad_x = (g - mean_g - x_hat * mean_gx) * inv_std.reshape(shape)
                # The three-term formula above already folds in the count.
                del count
            else:
                grad_x = grad_out * gamma.data.reshape(shape) * inv_std.reshape(shape)
            x._accumulate(grad_x)

        return run

    return Tensor._make(out, (x, gamma, beta), backward)
