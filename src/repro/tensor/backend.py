"""The array-backend seam and the kernel-mode switch for the tensor core.

Two orthogonal knobs live here, both read on every hot-path kernel:

**The backend seam.**  Every kernel in :mod:`repro.tensor` and
:mod:`repro.nn` reaches its array namespace through :data:`xp` (rebound by
:func:`set_backend`) instead of importing ``numpy`` directly.  The contract
a backend must satisfy is deliberately the numpy one — the golden grids pin
*bit patterns*, so a conforming backend must reproduce numpy's float64
semantics exactly (same ufuncs, same pairwise-summation reductions, same
broadcasting, ``out=`` support on ufuncs and ``einsum``).  A backend that
only promises *approximate* parity (float32, GPUs, relaxed reductions) can
still slot in for exploratory work, but golden/byte-identity suites are
only meaningful under the default numpy backend.  The seam exists so that
swap touches no attack/defense/experiment code: those layers only ever see
:class:`~repro.tensor.Tensor`.

**The kernel mode.**  ``"fused"`` (the default) runs the accelerated
kernels: single-node fused ops (subtract, mean/var, linear, cross-entropy),
in-place gradient accumulation over the :mod:`repro.tensor.buffers` pool,
``out=`` optimizer arithmetic, and the strided ``_col2im``.  ``"reference"``
reproduces the pre-acceleration op-for-op graph — one node per primitive,
allocating accumulation — and exists for two reasons: it is the in-repo A/B
baseline that ``benchmarks/bench_tensor_core.py`` measures speedups
against, and it is the oracle the byte-identity equivalence suite compares
the fused kernels to (every fused kernel must produce bit-identical values
*and* bit-identical accumulation order; see DESIGN.md "The tensor core").
"""

from __future__ import annotations

import contextlib
from typing import Iterator

import numpy

__all__ = [
    "ArrayBackend",
    "NUMPY",
    "active",
    "set_backend",
    "use_backend",
    "kernel_mode",
    "set_kernel_mode",
    "reference_kernels",
    "xp",
    "FUSED",
]


class ArrayBackend:
    """A named array namespace the kernels route through.

    ``module`` is anything numpy-API-compatible; byte-identity guarantees
    only hold when it reproduces numpy float64 semantics exactly (see
    module docstring for the contract).
    """

    __slots__ = ("name", "module")

    def __init__(self, name: str, module) -> None:
        self.name = name
        self.module = module

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArrayBackend({self.name!r})"


NUMPY = ArrayBackend("numpy", numpy)

_ACTIVE: ArrayBackend = NUMPY

#: The active array namespace.  Kernels read this module attribute at call
#: time (``backend.xp.exp(...)``) so :func:`set_backend` takes effect
#: without re-importing anything.
xp = NUMPY.module

#: Fast-path predicate for the kernel mode, read by every kernel.  True
#: means the fused/in-place kernels run; False means the reference
#: (pre-acceleration) graph is built instead.
FUSED: bool = True

_MODES = ("fused", "reference")


def active() -> ArrayBackend:
    """Return the active :class:`ArrayBackend`."""
    return _ACTIVE


def set_backend(backend: ArrayBackend) -> ArrayBackend:
    """Install ``backend`` as the active array namespace; return the old one."""
    global _ACTIVE, xp
    if not isinstance(backend, ArrayBackend):
        raise TypeError(f"expected ArrayBackend, got {type(backend).__name__}")
    previous = _ACTIVE
    _ACTIVE = backend
    xp = backend.module
    return previous


@contextlib.contextmanager
def use_backend(backend: ArrayBackend) -> Iterator[ArrayBackend]:
    """Context manager form of :func:`set_backend`."""
    previous = set_backend(backend)
    try:
        yield backend
    finally:
        set_backend(previous)


def kernel_mode() -> str:
    """Return the active kernel mode: ``"fused"`` or ``"reference"``."""
    return "fused" if FUSED else "reference"


def set_kernel_mode(mode: str) -> str:
    """Select the kernel mode; returns the previous mode.

    ``"fused"`` is the production default.  ``"reference"`` rebuilds the
    pre-acceleration graph and is intended for A/B benchmarking and the
    byte-identity equivalence suite only — it is strictly slower.
    """
    global FUSED
    if mode not in _MODES:
        raise ValueError(f"unknown kernel mode {mode!r}; expected one of {_MODES}")
    previous = kernel_mode()
    FUSED = mode == "fused"
    return previous


@contextlib.contextmanager
def reference_kernels() -> Iterator[None]:
    """Run the enclosed block on the pre-acceleration reference kernels."""
    previous = set_kernel_mode("reference")
    try:
        yield
    finally:
        set_kernel_mode(previous)
