"""A numpy-backed tensor with reverse-mode automatic differentiation.

This module provides the differentiable :class:`Tensor` used by every other
subsystem in the repository (the neural-network library, the federated
learning simulator, and the reconstruction attacks).  The reconstruction
attacks in the OASIS paper rely on *exact* gradient algebra — notably the
identity ``dL/dW_i = (dL/db_i) * x`` for a ReLU-gated linear layer — so the
implementation favours numerical exactness (float64 by default) and
PyTorch-compatible gradient accumulation semantics (gradients of a batch are
summed over the batch dimension).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.tensor.autograd import is_grad_enabled, topological_order

ArrayLike = Union[np.ndarray, float, int, Sequence]

DEFAULT_DTYPE = np.float64


def _as_array(data: ArrayLike, dtype=DEFAULT_DTYPE) -> np.ndarray:
    if isinstance(data, np.ndarray):
        if data.dtype != dtype:
            return data.astype(dtype)
        return data
    return np.asarray(data, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A multi-dimensional array that records operations for autodiff.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64`` unless another dtype is
        supplied.
    requires_grad:
        When True, operations involving this tensor build a backward graph
        and :meth:`backward` accumulates into :attr:`grad`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        dtype=DEFAULT_DTYPE,
        name: str = "",
    ) -> None:
        self.data = _as_array(data, dtype)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._parents: tuple["Tensor", ...] = ()
        self._backward: Optional[Callable[[], None]] = None
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_note})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad, dtype=self.data.dtype)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[["Tensor"], Callable[[], None]],
    ) -> "Tensor":
        """Build an op result, attaching the graph only in grad mode."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, dtype=data.dtype)
        if requires:
            out._parents = tuple(p for p in parents if p.requires_grad or p._parents)
            out._backward = backward(out)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None or grad is self.data else grad
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to 1 for scalar outputs (the usual loss case).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar output")
            grad = np.ones_like(self.data)
        grad = _as_array(grad, self.data.dtype)
        self._accumulate(grad)
        for node in reversed(topological_order(self)):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: ArrayLike) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(_as_array(other, self.data.dtype))

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data + other.data

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad, other.shape))

            return run

        return Tensor._make(data, (self, other), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(-out.grad)

            return run

        return Tensor._make(data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(-self._coerce(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__add__(-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data * other.data

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

            return run

        return Tensor._make(data, (self, other), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data / other.data

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad / other.data, self.shape))
                if other.requires_grad:
                    grad_other = -out.grad * self.data / (other.data ** 2)
                    other._accumulate(_unbroadcast(grad_other, other.shape))

            return run

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

            return run

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise non-linearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = np.where(mask, self.data, 0.0)

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * mask)

            return run

        return Tensor._make(data, (self,), backward)

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * data)

            return run

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad / self.data)

            return run

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self.__pow__(0.5)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * (1.0 - data ** 2))

            return run

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * data * (1.0 - data))

            return run

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)
        sign = np.sign(self.data)

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * sign)

            return run

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * mask)

            return run

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Matrix operations
    # ------------------------------------------------------------------
    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        data = self.data @ other.data

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    if other.data.ndim == 1:
                        self._accumulate(np.outer(out.grad, other.data).reshape(self.shape))
                    else:
                        grad = out.grad @ np.swapaxes(other.data, -1, -2)
                        self._accumulate(_unbroadcast(grad, self.shape))
                if other.requires_grad:
                    if self.data.ndim == 1:
                        other._accumulate(np.outer(self.data, out.grad).reshape(other.shape))
                    else:
                        grad = np.swapaxes(self.data, -1, -2) @ out.grad
                        other._accumulate(_unbroadcast(grad, other.shape))

            return run

        return Tensor._make(data, (self, other), backward)

    def transpose(self, *axes: int) -> "Tensor":
        order = axes if axes else tuple(reversed(range(self.ndim)))
        data = self.data.transpose(order)
        inverse = np.argsort(order)

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad.transpose(inverse))

            return run

        return Tensor._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.shape

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad.reshape(original))

            return run

        return Tensor._make(data, (self,), backward)

    def flatten(self, start_dim: int = 1) -> "Tensor":
        lead = self.shape[:start_dim]
        return self.reshape(*lead, -1)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    grad = np.zeros_like(self.data)
                    np.add.at(grad, index, out.grad)
                    self._accumulate(grad)

            return run

        return Tensor._make(data, (self,), backward)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions symmetrically."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.ndim - 2) + [(padding, padding), (padding, padding)]
        data = np.pad(self.data, pad_width)
        slices = tuple(
            slice(None) if before == 0 else slice(before, -before)
            for before, _ in pad_width
        )

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad[slices])

            return run

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if not self.requires_grad:
                    return
                grad = out.grad
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    axes = tuple(a % self.ndim for a in axes)
                    shape = tuple(
                        1 if i in axes else s for i, s in enumerate(self.shape)
                    )
                    grad = grad.reshape(shape)
                self._accumulate(np.broadcast_to(grad, self.shape))

            return run

        return Tensor._make(np.asarray(data), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        max_kept = self.data.max(axis=axis, keepdims=True)
        mask = self.data == max_kept
        counts = mask.sum(axis=axis, keepdims=True)

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if not self.requires_grad:
                    return
                grad = out.grad
                if axis is not None and not keepdims:
                    grad = np.expand_dims(grad, axis)
                self._accumulate(mask * grad / counts)

            return run

        return Tensor._make(np.asarray(data), (self,), backward)

    # ------------------------------------------------------------------
    # Composite helpers used by losses
    # ------------------------------------------------------------------
    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - self.max(axis=axis, keepdims=True).detach()
        return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()

    def softmax(self, axis: int = -1) -> "Tensor":
        return self.log_softmax(axis=axis).exp()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> "Tensor":
        # repro-lint: disable=no-global-rng -- caller-convenience fallback for interactive use; every library path passes a fingerprint-seeded generator
        rng = rng if rng is not None else np.random.default_rng()
        return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(out: Tensor) -> Callable[[], None]:
        def run() -> None:
            for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    index = [slice(None)] * out.grad.ndim
                    index[axis] = slice(start, end)
                    tensor._accumulate(out.grad[tuple(index)])

        return run

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new ``axis``."""
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(out: Tensor) -> Callable[[], None]:
        def run() -> None:
            for i, tensor in enumerate(tensors):
                if tensor.requires_grad:
                    tensor._accumulate(np.take(out.grad, i, axis=axis))

        return run

    return Tensor._make(data, tuple(tensors), backward)
