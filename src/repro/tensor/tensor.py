"""A numpy-backed tensor with reverse-mode automatic differentiation.

This module provides the differentiable :class:`Tensor` used by every other
subsystem in the repository (the neural-network library, the federated
learning simulator, and the reconstruction attacks).  The reconstruction
attacks in the OASIS paper rely on *exact* gradient algebra — notably the
identity ``dL/dW_i = (dL/db_i) * x`` for a ReLU-gated linear layer — so the
implementation favours numerical exactness (float64 by default) and
PyTorch-compatible gradient accumulation semantics (gradients of a batch are
summed over the batch dimension).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

import repro.tensor.backend as backend
import repro.tensor.buffers as buffers
from repro.tensor.autograd import is_grad_enabled, topological_order

ArrayLike = Union[np.ndarray, float, int, Sequence]

DEFAULT_DTYPE = np.float64

# Optional op-construction hook for repro.profile: called as
# ``hook(backward_factory, data)`` from Tensor._make for every graph node.
# A single global read when unset keeps the disabled cost negligible.
_PROFILE_HOOK: Optional[Callable] = None


def set_profile_hook(hook: Optional[Callable]) -> Optional[Callable]:
    """Install (or clear, with None) the ``Tensor._make`` profiling hook.

    Returns the previously installed hook so callers can restore it.  The
    hook receives the op's backward factory (whose ``__qualname__`` names
    the op) and the freshly computed result array; :mod:`repro.profile`
    uses it to attribute sweep-cell wall time to named ops.  A hook may
    return a replacement backward factory (or None to keep the original),
    which is how the profiler times backward closures per op.
    """
    global _PROFILE_HOOK
    previous = _PROFILE_HOOK
    _PROFILE_HOOK = hook
    return previous


def _as_array(data: ArrayLike, dtype=DEFAULT_DTYPE) -> np.ndarray:
    if isinstance(data, np.ndarray):
        if data.dtype != dtype:
            return data.astype(dtype)
        return data
    return np.asarray(data, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A multi-dimensional array that records operations for autodiff.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64`` unless another dtype is
        supplied.
    requires_grad:
        When True, operations involving this tensor build a backward graph
        and :meth:`backward` accumulates into :attr:`grad`.
    """

    __slots__ = (
        "data", "grad", "requires_grad", "_parents", "_backward", "name",
        "_grad_owned",
    )

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        dtype=DEFAULT_DTYPE,
        name: str = "",
    ) -> None:
        self.data = _as_array(data, dtype)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._parents: tuple["Tensor", ...] = ()
        self._backward: Optional[Callable[[], None]] = None
        self.name = name
        # True when ``grad`` is exclusively ours: safe to mutate in place
        # and to hand back to the buffer pool at zero_grad().
        self._grad_owned = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_note})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad, dtype=self.data.dtype)

    def zero_grad(self) -> None:
        if self._grad_owned and self.grad is not None:
            buffers.release(self.grad)
        self.grad = None
        self._grad_owned = False

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[["Tensor"], Callable[[], None]],
    ) -> "Tensor":
        """Build an op result, attaching the graph only in grad mode."""
        if _PROFILE_HOOK is not None:
            replacement = _PROFILE_HOOK(backward, data)
            if replacement is not None:
                backward = replacement
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, dtype=data.dtype)
        if requires:
            out._parents = tuple(p for p in parents if p.requires_grad or p._parents)
            out._backward = backward(out)
        return out

    def _accumulate(self, grad: np.ndarray, fresh: bool = False) -> None:
        """Add one backward contribution to :attr:`grad`.

        ``fresh=True`` asserts the caller just computed ``grad`` and holds
        no other reference to it (fused kernels pass this), so it can be
        adopted as an owned buffer without the defensive copy.  Arrays
        *not* marked fresh may be shared — e.g. both parents of an ``add``
        with equal shapes receive the same ``out.grad`` array — so they
        are borrowed read-only and upgraded to an owned pool buffer only
        when a second contribution arrives.

        The fused path produces bit-identical values to the reference
        path: ``np.copyto``/``np.add(..., out=)`` round exactly like
        ``.copy()``/``+`` — only the allocation behaviour differs.
        """
        if not self.requires_grad:
            return
        if backend.FUSED:
            current = self.grad
            if current is None:
                if fresh:
                    self.grad = grad
                    self._grad_owned = True
                elif grad.base is not None or grad is self.data:
                    buf = buffers.acquire(grad.shape, grad.dtype)
                    np.copyto(buf, grad)
                    self.grad = buf
                    self._grad_owned = True
                else:
                    self.grad = grad
                    self._grad_owned = False
            elif self._grad_owned:
                np.add(current, grad, out=current)
            else:
                buf = buffers.acquire(current.shape, current.dtype)
                np.add(current, grad, out=buf)
                self.grad = buf
                self._grad_owned = True
            return
        # Reference kernels: the pre-acceleration allocating accumulate,
        # kept as the A/B baseline and byte-identity oracle.
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None or grad is self.data else grad
            self._grad_owned = False
        else:
            self.grad = self.grad + grad  # repro-lint: disable=no-allocating-accumulate -- reference kernel mode preserves the pre-acceleration graph as the bench baseline and equivalence oracle
            self._grad_owned = False

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to 1 for scalar outputs (the usual loss case).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar output")
            grad = np.ones_like(self.data)
        grad = _as_array(grad, self.data.dtype)
        self._accumulate(grad)
        for node in reversed(topological_order(self)):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: ArrayLike) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(_as_array(other, self.data.dtype))

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data + other.data

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad, other.shape))

            return run

        return Tensor._make(data, (self, other), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(-out.grad)

            return run

        return Tensor._make(data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        if not backend.FUSED:
            return self.__add__(-other)
        # One node instead of the reference neg+add pair.  Bit-identical:
        # ``a - b == a + (-b)`` exactly in IEEE-754, and negation commutes
        # bitwise with the unbroadcast reduction (round-to-nearest is
        # symmetric under sign flip), so ``-unbroadcast(g) == unbroadcast(-g)``.
        data = self.data - other.data

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad, self.shape))
                if other.requires_grad:
                    other._accumulate(-_unbroadcast(out.grad, other.shape), fresh=True)

            return run

        return Tensor._make(data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data * other.data

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

            return run

        return Tensor._make(data, (self, other), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data / other.data

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad / other.data, self.shape))
                if other.requires_grad:
                    grad_other = -out.grad * self.data / (other.data ** 2)
                    other._accumulate(_unbroadcast(grad_other, other.shape))

            return run

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

            return run

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise non-linearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = np.where(mask, self.data, 0.0)

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * mask)

            return run

        return Tensor._make(data, (self,), backward)

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * data)

            return run

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad / self.data)

            return run

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self.__pow__(0.5)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * (1.0 - data ** 2))

            return run

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * data * (1.0 - data))

            return run

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)
        sign = np.sign(self.data)

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * sign)

            return run

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * mask)

            return run

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Matrix operations
    # ------------------------------------------------------------------
    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        data = self.data @ other.data

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    if other.data.ndim == 1:
                        self._accumulate(np.outer(out.grad, other.data).reshape(self.shape))
                    else:
                        grad = out.grad @ np.swapaxes(other.data, -1, -2)
                        self._accumulate(_unbroadcast(grad, self.shape))
                if other.requires_grad:
                    if self.data.ndim == 1:
                        other._accumulate(np.outer(self.data, out.grad).reshape(other.shape))
                    else:
                        grad = np.swapaxes(self.data, -1, -2) @ out.grad
                        other._accumulate(_unbroadcast(grad, other.shape))

            return run

        return Tensor._make(data, (self, other), backward)

    def transpose(self, *axes: int) -> "Tensor":
        order = axes if axes else tuple(reversed(range(self.ndim)))
        data = self.data.transpose(order)
        inverse = np.argsort(order)

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad.transpose(inverse))

            return run

        return Tensor._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.shape

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad.reshape(original))

            return run

        return Tensor._make(data, (self,), backward)

    def flatten(self, start_dim: int = 1) -> "Tensor":
        lead = self.shape[:start_dim]
        return self.reshape(*lead, -1)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    grad = np.zeros_like(self.data)
                    np.add.at(grad, index, out.grad)
                    self._accumulate(grad)

            return run

        return Tensor._make(data, (self,), backward)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions symmetrically."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.ndim - 2) + [(padding, padding), (padding, padding)]
        data = np.pad(self.data, pad_width)
        slices = tuple(
            slice(None) if before == 0 else slice(before, -before)
            for before, _ in pad_width
        )

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad[slices])

            return run

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if not self.requires_grad:
                    return
                grad = out.grad
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    axes = tuple(a % self.ndim for a in axes)
                    shape = tuple(
                        1 if i in axes else s for i, s in enumerate(self.shape)
                    )
                    grad = grad.reshape(shape)
                self._accumulate(np.broadcast_to(grad, self.shape))

            return run

        return Tensor._make(np.asarray(data), (self,), backward)

    def _reduce_count(self, axis) -> int:
        if axis is None:
            return self.size
        axes = axis if isinstance(axis, tuple) else (axis,)
        return int(np.prod([self.shape[a % self.ndim] for a in axes]))

    def _expand_reduced(self, grad: np.ndarray, axis, keepdims: bool) -> np.ndarray:
        """Reshape a reduced gradient back to broadcast against ``self``."""
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            axes = tuple(a % self.ndim for a in axes)
            shape = tuple(1 if i in axes else s for i, s in enumerate(self.shape))
            grad = grad.reshape(shape)
        return grad

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self._reduce_count(axis)
        inv = 1.0 / count
        if not backend.FUSED:
            return self.sum(axis=axis, keepdims=keepdims) * inv
        # Fused sum-then-scale: one node for the reference sum+mul pair.
        # The scale must stay ``sum * (1/count)`` — dividing by ``count``
        # rounds differently, so np.mean would break byte-identity.
        data = self.data.sum(axis=axis, keepdims=keepdims) * inv

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if not self.requires_grad:
                    return
                grad = self._expand_reduced(out.grad * inv, axis, keepdims)
                self._accumulate(np.broadcast_to(grad, self.shape))

            return run

        return Tensor._make(np.asarray(data), (self,), backward)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        if not backend.FUSED:
            centered = self - self.mean(axis=axis, keepdims=True)
            return (centered * centered).mean(axis=axis, keepdims=keepdims)
        # Fused biased variance: one node for the reference seven-node
        # sum/scale/neg/add/mul/sum/scale chain.  Forward replays the
        # reference op order exactly; backward replays the reference
        # closure order (the ``centered*centered`` double contribution
        # first, then the mean-path correction), so values and the
        # accumulation order are bit-identical.
        count = self._reduce_count(axis)
        inv = 1.0 / count
        mean_kept = self.data.sum(axis=axis, keepdims=True) * inv
        centered = self.data - mean_kept
        squared = centered * centered
        data = squared.sum(axis=axis, keepdims=keepdims) * inv

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if not self.requires_grad:
                    return
                g_sq = np.broadcast_to(
                    self._expand_reduced(out.grad * inv, axis, keepdims), self.shape
                )
                term = g_sq * centered
                grad_centered = term + term
                self._accumulate(grad_centered, fresh=True)
                reduced = _unbroadcast(grad_centered, mean_kept.shape)
                self._accumulate(np.broadcast_to((-reduced) * inv, self.shape))

            return run

        return Tensor._make(np.asarray(data), (self,), backward)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        max_kept = self.data.max(axis=axis, keepdims=True)
        mask = self.data == max_kept
        counts = mask.sum(axis=axis, keepdims=True)

        def backward(out: "Tensor") -> Callable[[], None]:
            def run() -> None:
                if not self.requires_grad:
                    return
                grad = out.grad
                if axis is not None and not keepdims:
                    grad = np.expand_dims(grad, axis)
                self._accumulate(mask * grad / counts)

            return run

        return Tensor._make(np.asarray(data), (self,), backward)

    # ------------------------------------------------------------------
    # Composite helpers used by losses
    # ------------------------------------------------------------------
    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - self.max(axis=axis, keepdims=True).detach()
        return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()

    def softmax(self, axis: int = -1) -> "Tensor":
        return self.log_softmax(axis=axis).exp()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> "Tensor":
        # repro-lint: disable=no-global-rng -- caller-convenience fallback for interactive use; every library path passes a fingerprint-seeded generator
        rng = rng if rng is not None else np.random.default_rng()
        return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(out: Tensor) -> Callable[[], None]:
        def run() -> None:
            for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    index = [slice(None)] * out.grad.ndim
                    index[axis] = slice(start, end)
                    tensor._accumulate(out.grad[tuple(index)])

        return run

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new ``axis``."""
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(out: Tensor) -> Callable[[], None]:
        def run() -> None:
            for i, tensor in enumerate(tensors):
                if tensor.requires_grad:
                    tensor._accumulate(np.take(out.grad, i, axis=axis))

        return run

    return Tensor._make(data, tuple(tensors), backward)
