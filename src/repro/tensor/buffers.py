"""A shape/dtype-keyed pool of scratch arrays for the fused kernels.

The pre-acceleration core allocated a fresh full-size array for every
gradient accumulation, every im2col column matrix, and every optimizer
temporary — a profile of a smoke sweep cell attributes a large slice of
wall time to those allocations rather than to the GEMMs.  The pool turns
the steady-state of a training/attack loop (same model, same batch shape,
round after round) into zero-allocation reuse: a buffer released at
``zero_grad()`` or at the end of a conv backward is handed back for the
next round's identically-shaped request.

Rules (see DESIGN.md "The tensor core" for the ownership protocol):

- ``acquire`` returns an *uninitialized* array — callers must overwrite
  every element (``np.copyto``, ``out=`` kernels, or ``fill``).
- Only top-level arrays are pooled: ``release`` silently ignores views
  (``arr.base is not None``) and foreign dtypes, so callers may release
  opportunistically without checking.
- Releasing the same array twice is a no-op (identity-checked), because a
  double-release would hand one buffer to two owners.
- The pool is process-local and unbounded in key count but capped per key
  (:data:`MAX_PER_KEY`), so pathological shape churn degrades to plain
  allocation instead of hoarding memory.
"""

from __future__ import annotations

import numpy as np

MAX_PER_KEY = 8

__all__ = ["BufferPool", "acquire", "release", "clear", "stats", "MAX_PER_KEY"]


class BufferPool:
    """Free-list pool of ndarrays keyed by ``(shape, dtype)``."""

    __slots__ = ("_free", "_free_ids", "hits", "misses", "max_per_key")

    def __init__(self, max_per_key: int = MAX_PER_KEY) -> None:
        self._free: dict[tuple, list[np.ndarray]] = {}
        self._free_ids: set[int] = set()
        self.hits = 0
        self.misses = 0
        self.max_per_key = max_per_key

    def acquire(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Return an uninitialized C-contiguous array of ``shape``/``dtype``."""
        key = (tuple(shape), np.dtype(dtype).str)
        stock = self._free.get(key)
        if stock:
            self.hits += 1
            arr = stock.pop()
            self._free_ids.discard(id(arr))
            return arr
        self.misses += 1
        return np.empty(shape, dtype=dtype)

    def release(self, arr: np.ndarray) -> bool:
        """Return ``arr`` to the pool; True if it was actually pooled.

        Views, non-contiguous arrays, already-free arrays, and overflow
        beyond ``max_per_key`` are silently dropped (garbage-collected as
        before pooling existed) — release is always safe to call.
        """
        if not isinstance(arr, np.ndarray) or arr.base is not None:
            return False
        if not arr.flags.c_contiguous or not arr.flags.writeable:
            return False
        if id(arr) in self._free_ids:
            return False
        key = (arr.shape, arr.dtype.str)
        stock = self._free.setdefault(key, [])
        if len(stock) >= self.max_per_key:
            return False
        stock.append(arr)
        self._free_ids.add(id(arr))
        return True

    def clear(self) -> None:
        self._free.clear()
        self._free_ids.clear()

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "free_arrays": sum(len(v) for v in self._free.values()),
            "free_keys": len(self._free),
        }


_POOL = BufferPool()


def acquire(shape: tuple[int, ...], dtype) -> np.ndarray:
    """Take a C-contiguous scratch array from the process pool."""
    return _POOL.acquire(shape, dtype)


def release(arr: np.ndarray) -> bool:
    """Return ``arr`` to the process pool; False if it is unpoolable."""
    return _POOL.release(arr)


def clear() -> None:
    """Drop every pooled array and reset the process pool's counters."""
    _POOL.clear()


def stats() -> dict[str, int]:
    """Hit/miss/free counters for the process pool."""
    return _POOL.stats()
