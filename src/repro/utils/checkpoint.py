"""Model/state checkpointing to .npz archives.

The FL simulator exchanges plain ``dict[str, np.ndarray]`` states; these
helpers persist them (global-model checkpoints, attack reconstructions,
experiment artifacts) without any pickle security surface.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np


def save_state(path: str | Path, state: dict[str, np.ndarray]) -> Path:
    """Write a state dict to ``path`` (.npz appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **state)
    return path


def load_state(path: str | Path) -> dict[str, np.ndarray]:
    """Read a state dict written by :func:`save_state`."""
    with np.load(Path(path)) as archive:
        return {name: archive[name].copy() for name in archive.files}


def save_model(path: str | Path, model) -> Path:
    """Persist a :class:`~repro.nn.Module`'s parameters and buffers."""
    return save_state(path, model.state_dict())


def load_model(path: str | Path, model) -> None:
    """Restore a module in place from a checkpoint written by save_model."""
    model.load_state_dict(load_state(path))
