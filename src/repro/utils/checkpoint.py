"""Model/state checkpointing to .npz archives, and crash-safe file writes.

The FL simulator exchanges plain ``dict[str, np.ndarray]`` states; these
helpers persist them (global-model checkpoints, attack reconstructions,
experiment artifacts) without any pickle security surface.

All writes here are *atomic*: content lands in a temporary file in the
destination directory, is fsynced, and is moved into place with
:func:`os.replace`.  A reader therefore observes either the old complete
file or the new complete file — never a truncated half-write — which is
what the resumable sweep stores rely on to survive kills mid-persist.
"""

from __future__ import annotations

import io
import os
import tempfile
from pathlib import Path

import numpy as np


def atomic_write_bytes(path: str | Path, payload: bytes) -> Path:
    """Write ``payload`` to ``path`` atomically (temp file + ``os.replace``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        # repro-lint: disable=no-raw-write -- this IS the atomic writer: the raw write targets a same-directory temp file, fsyncs, and os.replace()s into place
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        # mkstemp creates 0600; give the final file the ordinary
        # umask-derived mode so artifacts stay readable by whoever could
        # read a plainly-written file.
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp_name, 0o666 & ~umask)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` (UTF-8) to ``path`` atomically."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_lines(path: str | Path, lines) -> Path:
    """Stream ``lines`` (newline-free strings) to ``path`` atomically.

    Unlike :func:`atomic_write_text`, the payload is written line by line
    as the iterable produces it, so a caller can emit millions of lines
    (e.g. a sweep-store compaction) without ever holding the whole file in
    memory.  Same crash-safety contract: temp file in the destination
    directory, fsync, ``os.replace``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        # repro-lint: disable=no-raw-write -- same atomic-writer internals as atomic_write_bytes: temp file, fsync, os.replace
        with os.fdopen(
            descriptor, "w", encoding="utf-8", newline="\n"
        ) as handle:
            for line in lines:
                handle.write(line)
                handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp_name, 0o666 & ~umask)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def save_state(path: str | Path, state: dict[str, np.ndarray]) -> Path:
    """Write a state dict to ``path`` (.npz appended if missing), atomically."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    buffer = io.BytesIO()
    np.savez(buffer, **state)  # repro-lint: disable=no-raw-write -- serializes into an in-memory buffer; the file write below is atomic
    return atomic_write_bytes(path, buffer.getvalue())


def load_state(path: str | Path) -> dict[str, np.ndarray]:
    """Read a state dict written by :func:`save_state`."""
    with np.load(Path(path)) as archive:
        return {name: archive[name].copy() for name in archive.files}


def save_model(path: str | Path, model) -> Path:
    """Persist a :class:`~repro.nn.Module`'s parameters and buffers."""
    return save_state(path, model.state_dict())


def load_model(path: str | Path, model) -> None:
    """Restore a module in place from a checkpoint written by save_model."""
    model.load_state_dict(load_state(path))
