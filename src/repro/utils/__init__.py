"""Shared utilities: deterministic RNG management and numeric helpers."""

from repro.utils.checkpoint import load_model, load_state, save_model, save_state
from repro.utils.numeric import numerical_gradient
from repro.utils.rng import SeedSequence, new_rng, spawn_rngs

__all__ = [
    "new_rng",
    "spawn_rngs",
    "SeedSequence",
    "numerical_gradient",
    "save_state",
    "load_state",
    "save_model",
    "load_model",
]
