"""Shared utilities: deterministic RNG management and numeric helpers."""

from repro.utils.checkpoint import (
    atomic_write_bytes,
    atomic_write_lines,
    atomic_write_text,
    load_model,
    load_state,
    save_model,
    save_state,
)
from repro.utils.numeric import numerical_gradient
from repro.utils.rng import (
    SeedSequence,
    derive_seed,
    new_rng,
    rng_for,
    seed_sequence_for,
    spawn_rngs,
)

__all__ = [
    "new_rng",
    "spawn_rngs",
    "SeedSequence",
    "seed_sequence_for",
    "derive_seed",
    "rng_for",
    "numerical_gradient",
    "save_state",
    "load_state",
    "save_model",
    "load_model",
    "atomic_write_bytes",
    "atomic_write_lines",
    "atomic_write_text",
]
