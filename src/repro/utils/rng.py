"""Deterministic random-number management.

Every stochastic component in the repository (dataset synthesis, model init,
client sampling, attack parameter crafting, DP noise) draws from an explicit
``numpy.random.Generator``.  ``spawn_rngs`` derives independent child
generators from a single experiment seed so that adding a consumer never
perturbs the streams of existing ones.

``seed_sequence_for`` / ``derive_seed`` extend that discipline to *named*
consumers: the child stream is keyed by string labels (e.g. a sweep cell's
configuration fingerprint) rather than a spawn position, so the stream a
consumer receives is invariant to enumeration order, to how work is sharded
across processes, and to which other consumers exist.  That invariance is
what lets serial and parallel sweep executors produce bit-identical results.
"""

from __future__ import annotations

import hashlib

import numpy as np

SeedSequence = np.random.SeedSequence


def new_rng(seed: int | None = None) -> np.random.Generator:
    """Create a generator from an integer seed (or OS entropy when None)."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``."""
    children = np.random.SeedSequence(seed).spawn(count)
    return [np.random.default_rng(child) for child in children]


def seed_sequence_for(base_seed: int, *labels: str) -> np.random.SeedSequence:
    """A :class:`~numpy.random.SeedSequence` keyed by ``labels``, not position.

    The labels are hashed into entropy words, so the resulting stream
    depends only on ``(base_seed, labels)`` — two callers asking for the
    same labels in two different processes (or at two different points of
    an enumeration) get the same stream, while any label change yields a
    statistically independent one.
    """
    entropy = [int(base_seed) & 0xFFFFFFFFFFFFFFFF]
    for label in labels:
        digest = hashlib.sha256(label.encode()).digest()
        entropy.extend(
            int.from_bytes(digest[offset : offset + 4], "little")
            for offset in range(0, 16, 4)
        )
    return np.random.SeedSequence(entropy)


def derive_seed(base_seed: int, *labels: str) -> int:
    """A deterministic uint32 seed keyed by ``(base_seed, labels)``.

    For components that take integer seeds (federation configs, attack
    constructors) rather than generators; the same invariance guarantees
    as :func:`seed_sequence_for`.
    """
    return int(seed_sequence_for(base_seed, *labels).generate_state(1)[0])


def rng_for(base_seed: int, *labels: str) -> np.random.Generator:
    """A generator keyed by ``(base_seed, labels)`` via
    :func:`seed_sequence_for`."""
    return np.random.default_rng(seed_sequence_for(base_seed, *labels))
