"""Deterministic random-number management.

Every stochastic component in the repository (dataset synthesis, model init,
client sampling, attack parameter crafting, DP noise) draws from an explicit
``numpy.random.Generator``.  ``spawn_rngs`` derives independent child
generators from a single experiment seed so that adding a consumer never
perturbs the streams of existing ones.
"""

from __future__ import annotations

import numpy as np

SeedSequence = np.random.SeedSequence


def new_rng(seed: int | None = None) -> np.random.Generator:
    """Create a generator from an integer seed (or OS entropy when None)."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``."""
    children = np.random.SeedSequence(seed).spawn(count)
    return [np.random.default_rng(child) for child in children]
