"""Numeric helpers: central-difference gradients for autograd verification."""

from __future__ import annotations

from typing import Callable

import numpy as np


def numerical_gradient(
    func: Callable[[np.ndarray], float],
    point: np.ndarray,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central-difference estimate of ``d func / d point``.

    Used by the test suite to validate every autograd op against finite
    differences; the attacks depend on gradient exactness, so this check is
    load-bearing rather than cosmetic.
    """
    grad = np.zeros_like(point, dtype=np.float64)
    flat_point = point.reshape(-1)
    flat_grad = grad.reshape(-1)
    for index in range(flat_point.size):
        original = flat_point[index]
        flat_point[index] = original + epsilon
        upper = func(point)
        flat_point[index] = original - epsilon
        lower = func(point)
        flat_point[index] = original
        flat_grad[index] = (upper - lower) / (2.0 * epsilon)
    return grad
