"""Plain-text reporting: aligned tables, figure series, paper comparison."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.2f}",
) -> str:
    """Render an aligned ASCII table (no external deps)."""
    rendered_rows = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


@dataclass
class PaperComparison:
    """One paper-reported quantity next to our measured value."""

    experiment: str
    quantity: str
    paper_value: str
    measured: float
    agrees: bool
    note: str = ""


def comparison_table(comparisons: Sequence[PaperComparison]) -> str:
    """Render the paper-vs-measured scorecard as an aligned table."""
    rows = [
        (
            c.experiment,
            c.quantity,
            c.paper_value,
            f"{c.measured:.2f}",
            "yes" if c.agrees else "NO",
            c.note,
        )
        for c in comparisons
    ]
    return format_table(
        ["experiment", "quantity", "paper", "measured", "shape holds", "note"], rows
    )


def render_ascii_image(image, width: int = 32) -> str:
    """Render a (C, H, W) image as grayscale ASCII art for terminal output.

    Used by the visual-reconstruction experiments (paper Figs. 7-12) so the
    overlap effect is inspectable without an image viewer.
    """
    import numpy as np

    ramp = " .:-=+*#%@"
    gray = np.asarray(image, dtype=np.float64).mean(axis=0)
    height = max(1, int(gray.shape[0] * width / gray.shape[1] / 2))
    row_idx = np.linspace(0, gray.shape[0] - 1, height).astype(int)
    col_idx = np.linspace(0, gray.shape[1] - 1, width).astype(int)
    small = gray[np.ix_(row_idx, col_idx)]
    small = np.clip(small, 0.0, 1.0)
    chars = (small * (len(ramp) - 1)).astype(int)
    return "\n".join("".join(ramp[c] for c in row) for row in chars)


def side_by_side(left: str, right: str, gap: str = "   |   ") -> str:
    """Join two ASCII blocks horizontally (original vs reconstruction)."""
    left_lines = left.splitlines()
    right_lines = right.splitlines()
    height = max(len(left_lines), len(right_lines))
    width = max((len(l) for l in left_lines), default=0)
    out = []
    for i in range(height):
        l = left_lines[i] if i < len(left_lines) else ""
        r = right_lines[i] if i < len(right_lines) else ""
        out.append(l.ljust(width) + gap + r)
    return "\n".join(out)
