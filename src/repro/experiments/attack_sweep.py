"""Figures 3 & 4: attack-strength sweep over batch size and attacked neurons.

The paper tunes each attack to its strongest configuration by sweeping the
batch size B in {8..256} and the number of attacked neurons n in
{100..1000}, reporting the average PSNR of reconstructions without any
defense.  The expected shape: PSNR falls as B grows (more gradient mixing)
and generally rises with n (more bins/traps), with the per-B optimum read
off the grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.synthetic import SyntheticImageDataset
from repro.experiments.reporting import format_table
from repro.experiments.runner import evaluate_attack_cell
from repro.experiments.sweep import (
    SweepStore,
    dataset_fingerprint,
    is_failure,
    make_executor,
)

PAPER_BATCH_SIZES = (8, 16, 32, 64, 96, 128, 160, 192, 224, 256)
PAPER_NEURON_COUNTS = (100, 200, 300, 400, 500, 600, 700, 800, 900, 1000)


@dataclass
class SweepResult:
    """Average-PSNR grid indexed by (neuron count, batch size)."""

    attack: str
    dataset: str
    batch_sizes: tuple[int, ...]
    neuron_counts: tuple[int, ...]
    grid: np.ndarray  # shape (len(neuron_counts), len(batch_sizes))
    optima: dict[int, tuple[int, float]] = field(default_factory=dict)
    # (neuron_count, batch_size) -> structured error for cells that failed;
    # their grid entries are NaN.  Failures are never cached, so the next
    # run retries them.
    errors: dict[tuple[int, int], dict] = field(default_factory=dict)

    def compute_optima(self) -> None:
        """Per batch size, the neuron count with the highest average PSNR.

        NaN cells (batch larger than the dataset, or a failed evaluation)
        never win: columns use ``nanargmax``, and a column with no finite
        entry gets no optimum at all.
        """
        for j, batch_size in enumerate(self.batch_sizes):
            column = self.grid[:, j]
            if np.all(np.isnan(column)):
                continue
            best_i = int(np.nanargmax(column))
            self.optima[batch_size] = (
                self.neuron_counts[best_i],
                float(self.grid[best_i, j]),
            )

    def to_table(self) -> str:
        headers = ["n \\ B"] + [str(b) for b in self.batch_sizes]
        rows = []
        for i, n in enumerate(self.neuron_counts):
            rows.append([str(n)] + [f"{v:.1f}" for v in self.grid[i]])
        return format_table(headers, rows)


def run_sweep(
    dataset: SyntheticImageDataset,
    attack_name: str,
    batch_sizes: tuple[int, ...] = PAPER_BATCH_SIZES,
    neuron_counts: tuple[int, ...] = PAPER_NEURON_COUNTS,
    num_trials: int = 2,
    seed: int = 0,
    store: "SweepStore | None" = None,
    workers: int = 1,
    executor=None,
) -> SweepResult:
    """Reproduce one panel of Fig. 3 (RTF) or Fig. 4 (CAH).

    Pass a :class:`~repro.experiments.SweepStore` to make the (n, B) grid
    resumable: each finished cell is persisted under a key derived from the
    full configuration, so re-running after an interruption only computes
    the missing cells.  ``workers > 1`` (or an explicit ``executor``) fans
    the pending cells out over a process pool with sharded, crash-safe
    persistence; each cell's trials are seeded by its configuration, so
    serial and parallel grids are identical.  A failed cell lands in
    :attr:`SweepResult.errors` with a NaN grid entry instead of killing
    the sweep.
    """
    store = store if store is not None else SweepStore()
    store.recover_shards()
    executor = executor if executor is not None else make_executor(workers)
    data_key = f"{dataset.name}:{dataset_fingerprint(dataset)}"
    grid = np.zeros((len(neuron_counts), len(batch_sizes)))
    tasks = []
    positions: dict[str, tuple[int, int]] = {}
    for i, num_neurons in enumerate(neuron_counts):
        for j, batch_size in enumerate(batch_sizes):
            if batch_size > len(dataset):
                grid[i, j] = np.nan
                continue
            key = (
                f"fig34|{attack_name}|{data_key}|n{num_neurons}"
                f"|B{batch_size}|t{num_trials}|s{seed}"
            )
            cached = store.get(key)
            if cached is not None:
                grid[i, j] = cached
                continue
            positions[key] = (i, j)
            tasks.append(
                (
                    key,
                    evaluate_attack_cell,
                    {
                        "mode": "average",
                        "attack": attack_name,
                        "batch_size": batch_size,
                        "num_neurons": num_neurons,
                        "num_trials": num_trials,
                        "seed": seed,
                    },
                )
            )
    errors: dict[tuple[int, int], dict] = {}
    executions = executor.run(tasks, store, shared={"dataset": dataset})
    for key, execution in executions.items():
        i, j = positions[key]
        if is_failure(execution.result):
            grid[i, j] = np.nan
            errors[(neuron_counts[i], batch_sizes[j])] = execution.result["error"]
        else:
            grid[i, j] = execution.result
    result = SweepResult(
        attack=attack_name,
        dataset=dataset.name,
        batch_sizes=tuple(batch_sizes),
        neuron_counts=tuple(neuron_counts),
        grid=grid,
        errors=errors,
    )
    result.compute_optima()
    return result


def monotone_in_batch_size(result: SweepResult) -> float:
    """Fraction of neuron rows whose PSNR trend decreases from B_min to B_max.

    The paper's stated shape: "reconstruction attacks perform worse with
    larger batch sizes".  1.0 means every row agrees end-to-end.
    """
    first = result.grid[:, 0]
    last = result.grid[:, -1]
    valid = ~(np.isnan(first) | np.isnan(last))
    if not valid.any():
        return 0.0
    return float(np.mean(first[valid] > last[valid]))
