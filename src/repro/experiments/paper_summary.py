"""One-call paper-vs-measured summary across the headline experiments.

``build_paper_summary`` runs a compact version of every headline
comparison and returns :class:`PaperComparison` rows, so a user (or CI
job) can regenerate the reproduction scorecard in one call:

>>> from repro.data import synthetic_cifar100
>>> from repro.experiments import build_paper_summary, comparison_table
>>> rows = build_paper_summary(synthetic_cifar100(samples_per_class=4))
>>> print(comparison_table(rows))

The full-scale regenerations live in ``benchmarks/`` (one per figure);
this summary trades their resolution for a fast end-to-end health check.
"""

from __future__ import annotations

from repro.data.synthetic import SyntheticImageDataset
from repro.defense.oasis import OasisDefense
from repro.experiments.ats_comparison import run_ats_comparison
from repro.experiments.reporting import PaperComparison
from repro.experiments.runner import run_attack_trial, run_linear_trial


def build_paper_summary(
    dataset: SyntheticImageDataset,
    batch_size: int = 8,
    num_neurons: int = 300,
    seed: int = 0,
) -> list[PaperComparison]:
    """Regenerate the headline claims on one dataset; return scorecard rows."""
    rows: list[PaperComparison] = []

    rtf_wo = run_attack_trial(dataset, "rtf", batch_size, num_neurons, seed=seed)
    rows.append(
        PaperComparison(
            experiment="Fig 5",
            quantity="RTF without OASIS (dB)",
            paper_value="130-145",
            measured=rtf_wo.average_psnr,
            agrees=rtf_wo.average_psnr > 100.0,
        )
    )
    rtf_mr = run_attack_trial(
        dataset, "rtf", batch_size, num_neurons, defense=OasisDefense("MR"), seed=seed
    )
    rows.append(
        PaperComparison(
            experiment="Fig 5",
            quantity="RTF vs OASIS-MR (dB)",
            paper_value="15-20",
            measured=rtf_mr.average_psnr,
            agrees=rtf_mr.average_psnr < 30.0,
        )
    )

    cah_wo = run_attack_trial(dataset, "cah", batch_size, num_neurons, seed=seed)
    cah_mrsh = run_attack_trial(
        dataset, "cah", batch_size, num_neurons,
        defense=OasisDefense("MR+SH"), seed=seed,
    )
    rows.append(
        PaperComparison(
            experiment="Fig 6",
            quantity="CAH drop under MR+SH (dB)",
            paper_value=">100 (125->25)",
            measured=cah_wo.average_psnr - cah_mrsh.average_psnr,
            agrees=cah_wo.average_psnr - cah_mrsh.average_psnr > 20.0,
        )
    )

    linear_wo = run_linear_trial(dataset, batch_size, seed=seed)
    linear_mr = run_linear_trial(
        dataset, batch_size, defense=OasisDefense("MR"), seed=seed
    )
    rows.append(
        PaperComparison(
            experiment="Fig 13",
            quantity="linear-model drop under MR (dB)",
            paper_value="positive, to <30",
            measured=linear_wo.average_psnr - linear_mr.average_psnr,
            agrees=(
                linear_wo.average_psnr > linear_mr.average_psnr
                and linear_mr.average_psnr < 30.0
            ),
        )
    )

    ats = run_ats_comparison(
        dataset, batch_size=batch_size, num_neurons=num_neurons, seed=seed
    )
    rows.append(
        PaperComparison(
            experiment="Fig 14",
            quantity="RTF vs transform-replace inputs (dB)",
            paper_value="content revealed (~perfect)",
            measured=ats.ats_vs_training_inputs,
            agrees=ats.ats_vs_training_inputs > 100.0,
        )
    )
    rows.append(
        PaperComparison(
            experiment="Fig 14",
            quantity="RTF vs OASIS originals (dB)",
            paper_value="unrecognizable",
            measured=ats.oasis_vs_originals,
            agrees=ats.oasis_vs_originals < 40.0,
        )
    )
    return rows


def summary_holds(rows: list[PaperComparison]) -> bool:
    """True when every scorecard row agrees with the paper's shape."""
    return all(row.agrees for row in rows)
