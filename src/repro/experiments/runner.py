"""Core experiment runner: one attack/defense evaluation trial.

Every figure in the paper's evaluation reduces to repetitions of the same
protocol: craft a malicious model, let an honest client compute gradients
on a (possibly OASIS-expanded) batch, invert the gradients, and score the
reconstructions by best-match PSNR.  This module implements that protocol
once so the per-figure harnesses stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.attacks.base import ReconstructionResult
from repro.attacks.imprint import ImprintedModel
from repro.attacks.linear import LinearClassifier, LinearModelInversion
from repro.attacks.registry import make_attack as registry_make_attack
from repro.data.loaders import class_balanced_batch
from repro.data.synthetic import SyntheticImageDataset
from repro.defense.base import ClientDefense, NoDefense
from repro.fl.gradients import compute_defended_update
from repro.metrics.psnr import match_reconstructions, per_image_best_psnr
from repro.nn.losses import CrossEntropyLoss, LogisticLoss


@dataclass
class AttackTrialResult:
    """Scores of one attack trial against one batch."""

    attack: str
    defense: str
    batch_size: int
    num_neurons: int
    psnrs: list[float] = field(default_factory=list)
    per_image_best: np.ndarray = field(default_factory=lambda: np.zeros(0))
    num_reconstructions: int = 0

    @property
    def average_psnr(self) -> float:
        if not self.psnrs:
            return 0.0
        return float(np.mean(self.psnrs))


def make_attack(
    name: str,
    num_neurons: int,
    public_images: np.ndarray,
    seed: int = 0,
    **knobs,
):
    """Build a calibrated attack from the zoo (any registered name).

    Thin delegate to :func:`repro.attacks.registry.make_attack`, kept here
    because every per-figure harness historically imported it from this
    module.  Unknown names raise
    :class:`~repro.attacks.registry.UnknownAttackError` (a ``ValueError``).
    """
    return registry_make_attack(
        name, num_neurons, public_images, seed=seed, **knobs
    )


def defense_from_name(name: str, seed: "int | None" = None) -> ClientDefense:
    """Resolve a defense-arm spec string through the defense registry.

    ``"WO"`` (no defense), OASIS suite names, gradient-space baselines
    (``"dpsgd"``, ``"prune"``, ...), and composed stacks (``"MR>dpsgd"``)
    all work — see :mod:`repro.defense.registry` for the grammar.  With
    ``seed``, stochastic defenses get a private fingerprint-derived
    generator so trials stay order-invariant.  Unknown names raise
    :class:`~repro.defense.registry.UnknownDefenseError` (a ``ValueError``)
    listing what is available.
    """
    from repro.defense.registry import make_defense

    return make_defense(name, seed=seed)


def evaluate_attack_cell(payload: dict):
    """Picklable process-pool entry: evaluate one attack-configuration cell.

    The sweep executors (:mod:`repro.experiments.sweep`) dispatch tasks as
    ``(store_key, fn, payload)`` triples to worker processes, so the work
    function must live at module level.  This one covers both per-figure
    harness shapes:

    - ``mode="average"`` (Fig. 3/4 grids): mean average-PSNR over
      ``num_trials`` independent trials — returns a float, the exact value
      :func:`average_over_trials` reports, so stores written by serial PR-2
      sweeps keep serving.
    - ``mode="distribution"`` (Fig. 5/6 lineups): the concatenated PSNR
      list across trials for one defense arm — returns ``list[float]``.

    The dataset may ride in the payload (``payload["dataset"]``) or, for
    pool runs, be shipped once per worker through the executor's shared
    object (``shared={"dataset": ...}``) instead of once per task.
    """
    mode = payload.get("mode", "average")
    dataset = payload.get("dataset")
    if dataset is None:
        from repro.experiments.sweep import worker_shared

        dataset = worker_shared()["dataset"]
    if mode == "average":
        overall, _ = average_over_trials(
            dataset,
            payload["attack"],
            payload["batch_size"],
            payload["num_neurons"],
            num_trials=payload["num_trials"],
            seed=payload["seed"],
        )
        return float(overall)
    if mode == "distribution":
        scores: list[float] = []
        for trial in range(payload["num_trials"]):
            trial_seed = payload["seed"] + 31 * trial
            result = run_attack_trial(
                dataset,
                payload["attack"],
                payload["batch_size"],
                payload["num_neurons"],
                # A fresh, trial-seeded defense per trial: stochastic arms
                # (DP noise, transform-replace) must not thread one stream
                # across trials, or the distribution would depend on how
                # many trials ran before this one.
                defense=defense_from_name(payload["defense"], seed=trial_seed),
                seed=trial_seed,
            )
            scores.extend(result.psnrs)
        return [float(score) for score in scores]
    raise ValueError(f"unknown evaluation mode {mode!r}")


def run_attack_trial(
    dataset: SyntheticImageDataset,
    attack_name: str,
    batch_size: int,
    num_neurons: int,
    defense: Optional[ClientDefense] = None,
    seed: int = 0,
    public_size: int = 200,
) -> AttackTrialResult:
    """One full dishonest-server round against one client batch.

    The attacker calibrates on the first ``public_size`` dataset images (the
    standard public-prior assumption of RTF/CAH); the client batch is drawn
    with the trial seed, so trials are reproducible and independent.
    """
    defense = defense if defense is not None else NoDefense()
    rng = np.random.default_rng((seed, batch_size, num_neurons))
    images, labels = dataset.sample_batch(min(batch_size, len(dataset)), rng)

    model = ImprintedModel(
        dataset.image_shape,
        num_neurons,
        dataset.num_classes,
        rng=np.random.default_rng(seed + 1),
    )
    attack = make_attack(
        attack_name, num_neurons, dataset.images[:public_size], seed=seed
    )
    attack.craft(model)

    gradients, _, _ = compute_defended_update(
        model, CrossEntropyLoss(), images, labels, defense, rng
    )
    result = attack.reconstruct(gradients)
    return _score(result, images, attack_name, defense.name, batch_size, num_neurons)


def run_linear_trial(
    dataset: SyntheticImageDataset,
    batch_size: int,
    defense: Optional[ClientDefense] = None,
    seed: int = 0,
) -> AttackTrialResult:
    """Sec. IV-D: gradient inversion on a single-layer logistic model.

    Batches are drawn with unique labels, per the experiment's assumption.
    """
    defense = defense if defense is not None else NoDefense()
    rng = np.random.default_rng((seed, batch_size))
    images, labels = class_balanced_batch(
        dataset, min(batch_size, dataset.num_classes), rng, unique_labels=True
    )
    model = LinearClassifier(
        dataset.image_shape, dataset.num_classes, rng=np.random.default_rng(seed + 1)
    )
    inversion = LinearModelInversion()
    inversion.craft(model)
    gradients, _, _ = compute_defended_update(
        model, LogisticLoss(), images, labels, defense, rng
    )
    result = inversion.reconstruct(gradients)
    return _score(result, images, "linear", defense.name, batch_size, 0)


def _score(
    result: ReconstructionResult,
    originals: np.ndarray,
    attack: str,
    defense: str,
    batch_size: int,
    num_neurons: int,
) -> AttackTrialResult:
    psnrs = [score for _, score in match_reconstructions(originals, result.images)]
    return AttackTrialResult(
        attack=attack,
        defense=defense,
        batch_size=batch_size,
        num_neurons=num_neurons,
        psnrs=psnrs,
        per_image_best=per_image_best_psnr(originals, result.images),
        num_reconstructions=len(result),
    )


def average_over_trials(
    dataset: SyntheticImageDataset,
    attack_name: str,
    batch_size: int,
    num_neurons: int,
    defense: Optional[ClientDefense] = None,
    num_trials: int = 3,
    seed: int = 0,
) -> tuple[float, list[AttackTrialResult]]:
    """Mean average-PSNR over independent trials (fresh batch each trial)."""
    trials = [
        run_attack_trial(
            dataset,
            attack_name,
            batch_size,
            num_neurons,
            defense=defense,
            seed=seed + 31 * t,
        )
        for t in range(num_trials)
    ]
    averages = [t.average_psnr for t in trials if t.num_reconstructions > 0]
    overall = float(np.mean(averages)) if averages else 0.0
    return overall, trials
