"""Figures 7-12: visual reconstruction galleries.

These experiments confirm the paper's qualitative claim: with OASIS in
place, the attack reconstructs a *linear combination* of an image and its
transformed counterparts — an overlapped, unrecognizable composite — while
without OASIS the reconstruction is the verbatim image.

The gallery pairs each original with the reconstruction that matches it
best; ``render_pairs`` emits terminal-friendly ASCII so the overlap is
inspectable without an image viewer, and arrays can be saved as .npy.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from repro.attacks.imprint import ImprintedModel
from repro.data.synthetic import SyntheticImageDataset
from repro.defense.base import NoDefense
from repro.defense.registry import make_defense
from repro.experiments.reporting import render_ascii_image, side_by_side
from repro.experiments.runner import make_attack
from repro.fl.gradients import compute_batch_gradients
from repro.metrics.psnr import psnr
from repro.nn.losses import CrossEntropyLoss
from repro.utils.checkpoint import atomic_write_bytes


@dataclass
class Gallery:
    """Matched (original, reconstruction, psnr) triples for one setting."""

    attack: str
    defense: str
    originals: np.ndarray
    reconstructions: np.ndarray
    psnrs: list[float]

    def save(self, directory: str | Path) -> None:
        """Persist both arrays crash-safely (atomic temp-file + replace).

        A plain ``np.save`` straight to the target path leaves a torn,
        unloadable ``.npy`` when the process dies mid-write; galleries are
        artifacts other tooling loads later, so they get the same atomic
        contract as every other persisted file in the repo.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        tag = f"{self.attack}_{self.defense}".replace("+", "_")
        for name, array in (
            ("originals", self.originals),
            ("reconstructions", self.reconstructions),
        ):
            buffer = io.BytesIO()
            np.save(buffer, array)  # repro-lint: disable=no-raw-write -- serializes into an in-memory buffer; the file write below is atomic
            atomic_write_bytes(directory / f"{tag}_{name}.npy", buffer.getvalue())


def reconstruction_gallery(
    dataset: SyntheticImageDataset,
    attack_name: str,
    suite_name: Optional[str],
    batch_size: int,
    num_neurons: int,
    seed: int = 0,
    max_pairs: int = 4,
) -> Gallery:
    """Run one attack round and pair originals with their best reconstructions.

    ``suite_name`` None reproduces the without-OASIS panel; a suite name
    ("MR", "mR", "SH", "HFlip", "VFlip", "MR+SH") reproduces the defended
    panel of the corresponding figure.
    """
    defense = NoDefense() if suite_name is None else make_defense(suite_name)
    rng = np.random.default_rng((seed, batch_size))
    images, labels = dataset.sample_batch(min(batch_size, len(dataset)), rng)
    model = ImprintedModel(
        dataset.image_shape,
        num_neurons,
        dataset.num_classes,
        rng=np.random.default_rng(seed + 1),
    )
    attack = make_attack(attack_name, num_neurons, dataset.images[:200], seed=seed)
    attack.craft(model)
    processed_images, processed_labels = defense.process_batch(images, labels, rng)
    gradients, _ = compute_batch_gradients(
        model, CrossEntropyLoss(), processed_images, processed_labels
    )
    result = attack.reconstruct(gradients)

    pairs_orig, pairs_recon, scores = [], [], []
    for original in images[:max_pairs]:
        if len(result.images) == 0:
            continue
        candidate_scores = [psnr(original, recon) for recon in result.images]
        best = int(np.argmax(candidate_scores))
        pairs_orig.append(original)
        pairs_recon.append(result.images[best])
        scores.append(candidate_scores[best])
    if pairs_orig:
        originals = np.stack(pairs_orig)
        reconstructions = np.stack(pairs_recon)
    else:
        originals = np.empty((0,) + dataset.image_shape)
        reconstructions = np.empty((0,) + dataset.image_shape)
    return Gallery(
        attack=attack_name,
        defense=defense.name,
        originals=originals,
        reconstructions=reconstructions,
        psnrs=scores,
    )


def render_pairs(gallery: Gallery, width: int = 28, max_pairs: int = 2) -> str:
    """ASCII rendering: original (left) vs reconstruction (right)."""
    blocks = []
    for i in range(min(max_pairs, len(gallery.originals))):
        left = render_ascii_image(gallery.originals[i], width=width)
        right = render_ascii_image(gallery.reconstructions[i], width=width)
        header = (
            f"[{gallery.attack} | defense={gallery.defense}] "
            f"original vs reconstruction  (PSNR {gallery.psnrs[i]:.1f} dB)"
        )
        blocks.append(header + "\n" + side_by_side(left, right))
    return "\n\n".join(blocks)
