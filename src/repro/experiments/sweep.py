"""Grid sweep engine: attack x defense x participation-scenario evaluation.

Large-scale active attacks (LOKI, ARES) reconstruct across hundreds of
clients per round, so evaluating OASIS credibly means running every
(attack, transformation suite, federation scenario) combination through the
full dishonest-server protocol — not one hand-rolled loop per figure.  This
module provides that engine:

- :class:`ParticipationScenario` describes one federation shape (fleet
  size, per-round sampling, dropout/stragglers, IID vs Dirichlet non-IID)
  and lowers to the PR-1 :class:`~repro.fl.FederationConfig`.
- :class:`SweepRunner` enumerates the cell grid, runs each cell through
  :class:`~repro.fl.DishonestServer` with ``target_client_id=None`` (every
  arriving update is inverted — the multi-victim regime), and scores all
  reconstructions with the vectorized pairwise-PSNR matcher.
- :class:`SweepStore` is a resumable result store built for million-cell
  grids: an append-only record log where each finished cell costs O(1)
  bytes to persist (the former monolithic-JSON store rewrote the whole
  file per cell — O(N^2) bytes over a run) and only a ``key -> offset``
  index stays in memory; values are read back lazily and
  :meth:`SweepStore.iter_cells` streams the grid without materializing
  it.  Completed runs compact the log into canonical sorted-key order,
  and stores written by the old JSON format migrate transparently on
  first write.  The per-figure harnesses (``attack_sweep``,
  ``defense_eval``) share the same store for their own grids.
- :class:`SerialSweepExecutor` / :class:`WorkStealingSweepExecutor` decide
  *how* the pending cells run: in-process, or pulled by worker processes
  from a shared task queue — a worker takes its next cell the moment it
  finishes the last, so wildly uneven cell costs (trap attacks vs linear
  cells) never leave workers idle.  Each worker persists finished cells
  to a per-worker **shard** store (``<store>.shards/shard-<pid>.json``)
  merged into the main store on completion.  A run killed mid-sweep
  leaves its shards behind; the next run (serial or parallel) recovers
  them via :meth:`SweepStore.recover_shards` before computing anything,
  quarantining any corrupt shard instead of abandoning the good ones.
  :func:`make_executor` adapts the worker count to the usable cores
  instead of oversubscribing, degrading to serial on 1-core hosts.

Determinism is the load-bearing property: every cell's randomness derives
from :func:`repro.utils.rng.derive_seed` keyed by the cell's configuration
fingerprint (:meth:`SweepRunner.store_key`) — never by execution order — so
serial runs, parallel runs with any worker count, and resumed runs all
produce the identical ``store_key -> result`` mapping, and their persisted
stores are byte-identical.

A failed cell never kills the sweep: the failure is captured as a
structured ``{"error": {type, message, traceback}}`` result, reported in
:attr:`SweepOutcome.failed`, and deliberately *not* persisted, so the next
run retries it.

The expected headline shape (paper Fig. 5): for each scenario, the
(attack, no-defense) cell's mean PSNR strictly exceeds the (attack, MR)
cell's — reproduced by :func:`headline_ordering_holds`.

Both grid axes resolve through pluggable registries.  The attack axis
(:mod:`repro.attacks.registry`): any registered name works, the cell's
global model follows the attack's declared family (imprint vs linear),
and aggregate-reconstructing attacks (LOKI) ride the dishonest server's
per-client crafting hooks transparently.  The defense axis
(:mod:`repro.defense.registry`): arms are spec strings — ``"WO"``, OASIS
suite names, gradient-space baselines (``"dpsgd"``, ``"prune"``, ...),
knobbed variants (``"dpsgd(noise_multiplier=0.5)"``), and composed
stacks (``"MR>dpsgd"``) that chain through a
:class:`~repro.defense.DefensePipeline`.  Stochastic defense stages (DP
noise, transform-replace) draw from generators derived from the cell's
configuration fingerprint, so defended cells keep the byte-identity
guarantee.

Run a sweep from the command line::

    PYTHONPATH=src python -m repro.experiments.sweep \
        --grid smoke --workers 4 --store sweep.json
    # the whole attack zoo:
    PYTHONPATH=src python -m repro.experiments.sweep \
        --grid smoke --attacks rtf,cah,linear,qbi,loki --workers 2
    # a defense stack lineup (quote the '>' from the shell):
    PYTHONPATH=src python -m repro.experiments.sweep \
        --grid smoke --attacks rtf,cah,qbi \
        --defenses 'WO,MR,MR+SH,dpsgd,prune,MR>dpsgd' --workers 2
    # interrupted? finish the remaining cells:
    PYTHONPATH=src python -m repro.experiments.sweep \
        --grid smoke --workers 4 --store sweep.json --resume
"""

from __future__ import annotations

import argparse
import hashlib
import json
import multiprocessing
import os
import queue as queue_module
import sys
import time
import traceback
import warnings
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Callable, NamedTuple, Optional, Sequence

import numpy as np

from repro.data.synthetic import (
    SyntheticImageDataset,
    make_synthetic_dataset,
    synthetic_cifar100,
)
from repro.attacks.registry import (
    UnknownAttackError,
    attack_spec,
    available_attacks,
    make_attack,
)
from repro.defense.registry import (
    available_defenses,
    make_defense,
    split_spec_list,
    validate_defense_spec,
)
from repro.experiments.reporting import format_table
from repro.fl.simulator import FederatedSimulation, FederationConfig
from repro.metrics.psnr import match_reconstructions
from repro.utils.checkpoint import atomic_write_lines
from repro.utils.rng import derive_seed


def dataset_fingerprint(dataset: SyntheticImageDataset) -> str:
    """Short content digest of a dataset, for cache keys.

    Covers the name, shapes, and the actual pixel/label bytes: two
    datasets that merely share a name (same generator, different seed)
    must never serve each other's cached results.
    """
    digest = hashlib.sha256()
    digest.update(dataset.name.encode())
    digest.update(repr(dataset.images.shape).encode())
    digest.update(np.ascontiguousarray(dataset.images).tobytes())
    digest.update(np.ascontiguousarray(dataset.labels).tobytes())
    return digest.hexdigest()[:12]


@dataclass(frozen=True)
class ParticipationScenario:
    """One federation shape a sweep cell runs under.

    The PR-1 rate-based knobs are joined by the event-engine axis:
    ``arrivals`` names an arrival process (``""`` keeps the legacy
    rate-driven compat process), ``round_duration_s`` switches the round
    to a time cutoff (with ``min_arrivals`` as the grace floor), and
    ``fleet_size`` registers the federation as a lazy fleet instead of
    eagerly partitioning ``num_clients`` shards.  All four default to the
    values :func:`scenario_to_dict` elides, so legacy scenarios keep
    their exact store fingerprints (and therefore their cell seeds and
    golden values).
    """

    name: str
    num_clients: int = 2
    clients_per_round: Optional[int] = None
    dropout_rate: float = 0.0
    straggler_rate: float = 0.0
    accept_stale: bool = False
    partition: str = "iid"
    dirichlet_alpha: float = 0.5
    aggregator: str = "fedavg"
    weight_by_examples: bool = False
    arrivals: str = ""
    round_duration_s: float = 0.0
    min_arrivals: int = 0
    fleet_size: int = 0

    def to_config(self, batch_size: int, seed: int) -> FederationConfig:
        """Lower this scenario to a :class:`~repro.fl.FederationConfig`."""
        return FederationConfig(
            num_clients=self.num_clients,
            clients_per_round=self.clients_per_round,
            batch_size=batch_size,
            seed=seed,
            partition=self.partition,
            dirichlet_alpha=self.dirichlet_alpha,
            dropout_rate=self.dropout_rate,
            straggler_rate=self.straggler_rate,
            accept_stale=self.accept_stale,
            aggregator=self.aggregator,
            weight_by_examples=self.weight_by_examples,
            arrivals=self.arrivals or None,
            round_duration_s=self.round_duration_s,
            min_arrivals=self.min_arrivals,
            fleet_size=self.fleet_size,
        )


# The sweep's default scenario lineup: full participation, per-round
# sampling, client dropout, and Dirichlet label skew — the participation
# regimes PR 1's federation engine simulates.
DEFAULT_SCENARIOS: tuple[ParticipationScenario, ...] = (
    ParticipationScenario("full", num_clients=2),
    ParticipationScenario("sampled", num_clients=4, clients_per_round=2),
    ParticipationScenario("dropout", num_clients=4, dropout_rate=0.25),
    ParticipationScenario(
        "noniid", num_clients=4, partition="dirichlet", dirichlet_alpha=0.3
    ),
)

# The secure-aggregation scenario axis: the aggregation rule (plain
# masked-sum vs the two real SecAgg protocol rounds) crossed with the
# commit-then-drop regime those protocols exist to survive.  Under the
# protocol arms the dishonest server never sees individual updates, so
# per-update inversion attacks collapse to zero reconstructions while
# aggregate-reconstructing attacks (LOKI) keep their hook — the sweep
# quantifies exactly that separation.  A dropout draw that leaves fewer
# survivors than the t = n//2 + 1 threshold aborts the round gracefully
# (recorded in ``RoundRecord.secagg``) rather than failing the cell.
SECAGG_SCENARIOS: tuple[ParticipationScenario, ...] = (
    ParticipationScenario("plain", num_clients=6, aggregator="masked_sum"),
    ParticipationScenario(
        "plain-drop", num_clients=6, dropout_rate=0.25, aggregator="masked_sum"
    ),
    ParticipationScenario("secagg", num_clients=6, aggregator="secagg"),
    ParticipationScenario(
        "secagg-drop", num_clients=6, dropout_rate=0.25, aggregator="secagg"
    ),
    ParticipationScenario(
        "oneshot", num_clients=6, aggregator="secagg_oneshot"
    ),
    ParticipationScenario(
        "oneshot-drop",
        num_clients=6,
        dropout_rate=0.25,
        aggregator="secagg_oneshot",
    ),
)

# The event-engine scenario axis: rounds close on the virtual clock, so
# stragglers are whoever's completion tick lands past the deadline — no
# rate knobs anywhere.  ``uniform-time`` is the minimal timed federation;
# the tiered arms run heterogeneous hardware traces (budget/IoT devices
# straggle structurally), with ``tiered-stale`` additionally folding late
# arrivals into the next round and ``fleet-lazy`` sampling its cohort
# from a lazily-materialized registry several times larger than any
# round's cohort.
FLEET_SCENARIOS: tuple[ParticipationScenario, ...] = (
    ParticipationScenario(
        "uniform-time",
        num_clients=8,
        clients_per_round=4,
        arrivals="uniform",
        round_duration_s=0.6,
        min_arrivals=1,
    ),
    ParticipationScenario(
        "tiered-time",
        num_clients=8,
        clients_per_round=4,
        arrivals="tiered",
        round_duration_s=0.5,
        min_arrivals=1,
    ),
    ParticipationScenario(
        "tiered-stale",
        num_clients=8,
        clients_per_round=4,
        accept_stale=True,
        arrivals="tiered",
        round_duration_s=0.5,
        min_arrivals=1,
    ),
    ParticipationScenario(
        "fleet-lazy",
        clients_per_round=6,
        arrivals="tiered",
        round_duration_s=1.0,
        min_arrivals=1,
        fleet_size=64,
    ),
)

# Named scenario axes the CLI can swap in wholesale (--scenario-axis).
SCENARIO_AXES: dict[str, tuple[ParticipationScenario, ...]] = {
    "default": DEFAULT_SCENARIOS,
    "secagg": SECAGG_SCENARIOS,
    "fleet": FLEET_SCENARIOS,
}

# The defense arms of the paper's figures: no defense plus every named
# transformation suite (Fig. 5 singles and the Fig. 6 MR+SH integration).
# Any registered defense spec (see repro.defense.registry) can extend the
# axis — gradient-space baselines ("dpsgd", "prune") and composed stacks
# ("MR>dpsgd") included.
DEFAULT_DEFENSES: tuple[str, ...] = (
    "WO", "MR", "mR", "SH", "HFlip", "VFlip", "MR+SH",
)

# The defense-zoo lineup of the smoke/CI grids: one OASIS suite, the
# integration suite, both gradient-space baselines, and the composed
# OASIS+DP stack the paper's Sec. V composition argument is about.
ZOO_DEFENSES: tuple[str, ...] = (
    "WO", "MR", "MR+SH", "dpsgd", "prune", "MR>dpsgd",
)


@dataclass(frozen=True)
class SweepCell:
    """One (attack, defense, scenario) coordinate of the grid."""

    attack: str
    defense: str
    scenario: str

    @property
    def key(self) -> str:
        """Stable store key for this cell."""
        return f"{self.attack}|{self.defense}|{self.scenario}"


class SweepStoreError(RuntimeError):
    """A sweep store file exists but cannot be trusted (corrupt/foreign)."""


# On-disk format of the scalable store: line 1 is this header, every
# further line is one {"k": key, "v": value} record, last record wins.
STORE_FORMAT = "oasis-sweep-log-v1"
_STORE_HEADER = json.dumps(
    {"format": STORE_FORMAT}, sort_keys=True, separators=(",", ":")
)


def _record_line(key: str, value) -> str:
    """Canonical serialized form of one cell record."""
    return json.dumps(
        {"k": key, "v": value}, sort_keys=True, separators=(",", ":")
    )


class ShardRecovery(NamedTuple):
    """What :meth:`SweepStore.recover_shards` found: absorbed cells and
    corrupt shard files quarantined as ``*.corrupt``."""

    recovered: int
    quarantined: int


class SweepStore:
    """Resumable append-only log store of finished cells.

    Built for million-cell grids: a :meth:`put` *appends* one record line
    to the backing log — O(1) bytes per cell, instead of the former
    monolithic-JSON store's full-file rewrite (O(N^2) bytes over a run) —
    and only the ``key -> byte offset`` index lives in memory; cell values
    stay on disk and are parsed on demand (:meth:`get`,
    :meth:`iter_cells`), so holding a 10^6-cell store open costs the index,
    not the grid.

    The file format is line-oriented: a header line naming
    :data:`STORE_FORMAT`, then one ``{"k": ..., "v": ...}`` JSON record
    per line, last record per key winning.  A process killed mid-append
    leaves at most one torn final line, which the next open silently drops
    (that cell simply recomputes); damage *before* intact records — which
    no crash of this writer can produce — raises :class:`SweepStoreError`
    rather than silently recomputing a large grid.  :meth:`compact`
    rewrites the log atomically in canonical sorted-key order; executors
    compact on completion, which is what keeps serial, work-stolen
    parallel, and resumed stores **byte-identical**.

    Stores written by the pre-log monolithic format (``{"cells": {...}}``
    JSON, including the committed golden stores) load transparently and
    are left byte-for-byte unchanged until the first write, which migrates
    the file to the log format once.  With ``path=None`` the store is
    memory-only — same interface, no persistence.
    """

    def __init__(self, path: "str | Path | None" = None) -> None:
        self.path = Path(path) if path is not None else None
        self.hits = 0
        self.misses = 0
        # key -> (offset, length) into the log file, or None when the
        # value lives in _mem (memory-only store, or a legacy-format
        # store loaded but not yet migrated).
        self._where: "dict[str, tuple[int, int] | None]" = {}
        self._mem: dict[str, object] = {}
        self._legacy = False
        self._read_handle = None
        self._append_handle = None
        self._data_end = 0  # end of the last intact record (torn tails cut)
        if self.path is not None and self.path.exists():
            self._load_existing()

    # -- loading -----------------------------------------------------------

    def _load_existing(self) -> None:
        path = self.path
        try:
            with open(path, "rb") as handle:
                first_line = handle.readline()
        except OSError as error:
            raise SweepStoreError(
                f"sweep store {path} exists but cannot be read: {error}"
            ) from error
        header = None
        try:
            header = json.loads(first_line)
        except ValueError:
            pass
        if isinstance(header, dict) and "format" in header:
            if header["format"] != STORE_FORMAT:
                raise SweepStoreError(
                    f"sweep store {path} was written by format "
                    f"{header['format']!r}, not {STORE_FORMAT!r}; refusing "
                    "to mix store formats — migrate or delete the file"
                )
            self._where, self._data_end = self._scan_log(path)
        else:
            # Pre-log monolithic JSON store: load in full (such stores
            # were memory-bound by construction) and migrate lazily on
            # the first write, leaving read-only opens byte-identical.
            self._mem = self._load_legacy(path)
            self._where = {key: None for key in self._mem}
            self._legacy = True

    @staticmethod
    def _scan_log(path: Path) -> "tuple[dict[str, tuple[int, int]], int]":
        """Index a log file: ``key -> (offset, length)`` plus the end of
        the last intact record.

        A final line that is incomplete (no newline) or unparsable is a
        torn append from a crash and is dropped; a damaged line with
        intact records *after* it means the file was edited or corrupted
        by something other than this writer, and raises.
        """
        where: "dict[str, tuple[int, int]]" = {}
        with open(path, "rb") as handle:
            header = handle.readline()
            offset = len(header)
            data_end = offset
            torn_at: Optional[int] = None
            while True:
                line = handle.readline()
                if not line:
                    break
                if torn_at is not None:
                    raise SweepStoreError(
                        f"sweep store {path} is corrupt: damaged record at "
                        f"byte {torn_at} with intact records after it — "
                        "this writer's crashes only ever tear the final "
                        "line; delete or restore the file"
                    )
                start = offset
                offset += len(line)
                if not line.endswith(b"\n"):
                    torn_at = start
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    torn_at = start
                    continue
                if not (
                    isinstance(record, dict)
                    and isinstance(record.get("k"), str)
                    and "v" in record
                ):
                    torn_at = start
                    continue
                where[record["k"]] = (start, len(line))
                data_end = offset
        return where, data_end

    @staticmethod
    def _load_legacy(path: Path) -> dict:
        """Parse a pre-log monolithic store, raising on damage."""
        try:
            text = path.read_text()
        except OSError as error:
            raise SweepStoreError(
                f"sweep store {path} exists but cannot be read: {error}"
            ) from error
        try:
            payload = json.loads(text)
        except ValueError as error:
            raise SweepStoreError(
                f"sweep store {path} is corrupt (not valid JSON: {error}); "
                "it was likely truncated by a non-atomic writer or a full "
                "disk — delete the file to start the sweep from scratch"
            ) from error
        if not isinstance(payload, dict) or not isinstance(
            payload.get("cells"), dict
        ):
            raise SweepStoreError(
                f"sweep store {path} parsed as JSON but lacks the expected "
                '{"cells": {...}} shape; refusing to overwrite a file this '
                "module did not write — delete or move it first"
            )
        return payload["cells"]

    # -- reads -------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._where

    def __len__(self) -> int:
        return len(self._where)

    def get(self, key: str):
        """Return the cached value for ``key`` (None on miss), counting."""
        if key not in self._where:
            self.misses += 1
            return None
        self.hits += 1
        return self._value(key)

    def _value(self, key: str):
        location = self._where[key]
        if location is None:
            return self._mem[key]
        offset, length = location
        if self._read_handle is None:
            self._read_handle = open(self.path, "rb")
        self._read_handle.seek(offset)
        return json.loads(self._read_handle.read(length))["v"]

    def keys(self) -> list[str]:
        """All cached cell keys (file order; sorted after a compaction)."""
        return list(self._where)

    def iter_cells(self):
        """Stream ``(key, value)`` pairs in sorted key order.

        Values are read from disk one record at a time, so iterating a
        million-cell store never materializes the grid; this is what
        streaming reporting builds on.
        """
        for key in sorted(self._where):
            yield key, self._value(key)

    # -- writes ------------------------------------------------------------

    def put(self, key: str, value) -> None:
        """Record ``key``, appending one log record (O(1) bytes)."""
        if self.path is None:
            self._mem[key] = value
            self._where[key] = None
            return
        self._append({key: value})

    def update(self, mapping: dict) -> None:
        """Record many cells with a single buffered append."""
        if not mapping:
            return
        if self.path is None:
            self._mem.update(mapping)
            self._where.update(dict.fromkeys(mapping))
            return
        self._append(mapping)

    def _append(self, mapping: dict) -> None:
        if self._legacy:
            # One-time migration: rewrite the legacy JSON as a log, then
            # append normally ever after.
            self._write_canonical()
        handle = self._appender()
        offset = self._data_end
        buffer = bytearray()
        for key, value in mapping.items():
            line = (_record_line(key, value) + "\n").encode("utf-8")
            self._where[key] = (offset, len(line))
            offset += len(line)
            buffer += line
        handle.seek(self._data_end)
        handle.write(buffer)
        handle.flush()
        self._data_end = offset

    def _appender(self):
        if self._append_handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if self.path.exists():
                # repro-lint: disable=no-raw-write -- the append-only log is the one deliberate non-atomic writer: a put() appends O(1) bytes, a crash tears at most the final line (dropped on the next open), and compact() IS the atomic rewrite (atomic_write_lines)
                self._append_handle = open(self.path, "r+b")
                # Cut any torn tail a crash left so the next record
                # starts on a clean line.
                if self.path.stat().st_size > self._data_end:
                    self._append_handle.truncate(self._data_end)
            else:
                # repro-lint: disable=no-raw-write -- creating the fresh log file for O(1) appends; same crash contract as above, compaction is the atomic path
                self._append_handle = open(self.path, "w+b")
                header = (_STORE_HEADER + "\n").encode("utf-8")
                self._append_handle.write(header)
                self._append_handle.flush()
                self._data_end = len(header)
        return self._append_handle

    def compact(self) -> None:
        """Atomically rewrite the log in canonical sorted-key order.

        Executors call this once per completed run: compaction is what
        turns "same mapping" into "same bytes", making serial, parallel,
        and resumed stores byte-identical regardless of the order cells
        finished (and it drops superseded duplicate records).  Also the
        migration point for legacy-format stores.
        """
        if self.path is None:
            return
        if not self._where and not self.path.exists():
            return  # nothing ever persisted; don't create an empty file
        self._write_canonical()

    def _write_canonical(self) -> None:
        keys = sorted(self._where)
        new_where: "dict[str, tuple[int, int] | None]" = {}

        def lines():
            offset = len(_STORE_HEADER) + 1
            yield _STORE_HEADER
            for key in keys:
                line = _record_line(key, self._value(key))
                length = len(line.encode("utf-8")) + 1
                new_where[key] = (offset, length)
                offset += length
                yield line

        atomic_write_lines(self.path, lines())
        self.close()
        self._where = new_where
        self._data_end = (
            len(_STORE_HEADER) + 1
            + sum(length for _, length in new_where.values())
        )
        self._mem = {}
        self._legacy = False

    def close(self) -> None:
        """Close file handles (reopened lazily on the next access)."""
        for handle in (self._read_handle, self._append_handle):
            if handle is not None:
                try:
                    handle.close()
                except OSError:
                    pass
        self._read_handle = None
        self._append_handle = None

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass

    # -- shard support (parallel execution / crash recovery) ---------------

    @staticmethod
    def shard_directory_for(path: "str | Path") -> Path:
        """The shard directory belonging to a store at ``path``."""
        path = Path(path)
        return path.with_name(path.name + ".shards")

    def shard_directory(self) -> Optional[Path]:
        """Where parallel workers persist this store's in-flight shards."""
        if self.path is None:
            return None
        return self.shard_directory_for(self.path)

    def recover_shards(self) -> ShardRecovery:
        """Absorb shards left behind by a killed parallel run.

        Every cell found in a readable shard is a finished result; each
        shard is merged into this store (existing keys win — they are the
        same results) and its file is removed **only after** the absorbing
        append has durably landed in the main store, so a crash or a
        failed persist mid-recovery never deletes results it has not
        saved.  A shard that cannot be parsed (beyond the torn final line
        every crash may leave, which is dropped silently) is quarantined —
        renamed to ``<shard>.corrupt`` — instead of abandoning the
        readable shards behind it.  Returns both counts; memory-only
        stores have no shards and recover nothing.
        """
        directory = self.shard_directory()
        if directory is None or not directory.is_dir():
            return ShardRecovery(0, 0)
        recovered = 0
        quarantined = 0
        for shard in sorted(directory.glob("shard-*.json")):
            try:
                shard_store = SweepStore(shard)
                fresh = {
                    key: value
                    for key, value in shard_store.iter_cells()
                    if key not in self._where
                }
                shard_store.close()
            except SweepStoreError as error:
                quarantine = shard.with_name(shard.name + ".corrupt")
                shard.rename(quarantine)
                quarantined += 1
                warnings.warn(
                    f"quarantined corrupt sweep shard {shard} -> "
                    f"{quarantine}: {error}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            self.update(fresh)  # raises before the unlink on a failed persist
            recovered += len(fresh)
            if self.path is not None:
                shard.unlink()
        try:
            directory.rmdir()
        except OSError:
            pass  # quarantined/unrelated files present; leave the directory
        return ShardRecovery(recovered, quarantined)


# --------------------------------------------------------------------------
# Execution engine: serial and process-pool executors over pending cells.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CellExecution:
    """What one executed task produced: its result and wall-clock cost."""

    result: object
    elapsed_s: float


@dataclass(frozen=True)
class CellEvent:
    """One progress notification: a task finished (or was served cached).

    ``completed``/``total`` count within the emitting stage — the cache
    scan for ``"cached"`` events, the executor's task list otherwise.
    """

    key: str
    status: str  # "cached" | "done" | "failed"
    elapsed_s: float
    completed: int
    total: int
    error: Optional[dict] = None


ProgressCallback = Callable[[CellEvent], None]


def is_failure(result) -> bool:
    """True when ``result`` is a structured task failure, not a value."""
    return isinstance(result, dict) and "error" in result


def _structured_error(error: BaseException) -> dict:
    """A JSON-able record of a task failure (kept out of the store)."""
    return {
        "error": {
            "type": type(error).__name__,
            "message": str(error),
            "traceback": traceback.format_exc(),
        }
    }


def _guarded(fn, payload) -> tuple[object, float]:
    """Run one task, converting any exception into a structured failure."""
    start = time.perf_counter()
    try:
        result = fn(payload)
    except Exception as error:  # noqa: BLE001 - one cell must not kill the sweep
        result = _structured_error(error)
    return result, time.perf_counter() - start


def _notify(
    progress: Optional[ProgressCallback],
    key: str,
    result,
    elapsed_s: float,
    completed: int,
    total: int,
) -> None:
    if progress is None:
        return
    failed = is_failure(result)
    progress(
        CellEvent(
            key=key,
            status="failed" if failed else "done",
            elapsed_s=elapsed_s,
            completed=completed,
            total=total,
            error=result["error"] if failed else None,
        )
    )


# Per-worker state, installed by the pool initializer (or directly by the
# serial executor).  Module-level because multiprocessing workers can only
# reach module-level state: the shard store this worker persists to, and
# the run-wide shared object (e.g. the dataset/runner spec) shipped once
# per worker instead of once per task.
_WORKER_SHARD: Optional[SweepStore] = None
_WORKER_SHARED: object = None


def worker_shared():
    """The run-wide shared object passed to ``executor.run(..., shared=)``.

    Task functions call this to reach heavyweight run-constant state (a
    dataset, a runner spec) without it riding inside every task payload.
    """
    return _WORKER_SHARED


def _initialize_worker(shard_dir: Optional[str], shared) -> None:
    global _WORKER_SHARD, _WORKER_SHARED
    if shard_dir is not None:
        _WORKER_SHARD = SweepStore(Path(shard_dir) / f"shard-{os.getpid()}.json")
    _WORKER_SHARED = shared


class SerialSweepExecutor:
    """Run tasks one after another in-process, persisting as each finishes.

    The reference executor: zero parallelism overhead, finest-grained
    resume (the store log is appended after every single cell).
    """

    workers = 1

    def run(
        self,
        tasks: Sequence[tuple],
        store: SweepStore,
        progress: Optional[ProgressCallback] = None,
        shared=None,
    ) -> dict[str, CellExecution]:
        global _WORKER_SHARED
        previous = _WORKER_SHARED
        _WORKER_SHARED = shared
        try:
            executions: dict[str, CellExecution] = {}
            for index, (key, fn, payload) in enumerate(tasks):
                result, elapsed = _guarded(fn, payload)
                if not is_failure(result):
                    store.put(key, result)
                executions[key] = CellExecution(result, elapsed)
                _notify(progress, key, result, elapsed, index + 1, len(tasks))
            store.compact()
            return executions
        finally:
            _WORKER_SHARED = previous
            # Don't retain the last sweep's dataset/runner in a long-lived
            # process; pool workers die with theirs, the serial path must
            # drop its own.
            _RUNNER_CACHE.clear()


def _execute_task(task: tuple) -> tuple[str, object, float]:
    """Worker entry: run one task, persist success to this worker's shard."""
    key, fn, payload = task
    result, elapsed = _guarded(fn, payload)
    if _WORKER_SHARD is not None and not is_failure(result):
        _WORKER_SHARD.put(key, result)
    return key, result, elapsed


def _worker_main(task_queue, result_queue, shard_dir, shared) -> None:
    """Work-stealing worker loop: pull tasks until the sentinel arrives.

    Each finished cell is appended to this worker's shard store *before*
    its result is reported back, so a parent killed mid-run loses nothing
    the workers completed.
    """
    _initialize_worker(shard_dir, shared)
    try:
        while True:
            task = task_queue.get()
            if task is None:
                break
            result_queue.put(_execute_task(task))
    finally:
        if _WORKER_SHARD is not None:
            _WORKER_SHARD.close()


class WorkStealingSweepExecutor:
    """Fan tasks out to worker processes that pull from a shared queue.

    The former executor handed a process pool one future per cell; this
    one makes the pull explicit and lock-free for the caller: every worker
    draws its next cell from one shared queue the moment it finishes the
    last, so uneven cell costs (a trap-attack cell can cost many times a
    linear one) never leave a worker idle while another drags a long
    chunk — the degenerate, always-correct form of work stealing where
    the global queue is every thief's victim.

    Persistence is sharded: each worker appends finished cells to its own
    log-backed shard store (``<store>.shards/shard-<pid>.json``), so no
    two processes write one file and a killed run's completed cells
    survive for :meth:`SweepStore.recover_shards`.  On completion the
    parent merges all results into the main store, absorbs shards, and
    compacts — producing bytes identical to a serial run, because every
    cell's randomness is keyed by its configuration fingerprint, never by
    which worker ran it or in what order.

    Task exceptions become structured failure results; a worker that dies
    *without* raising (OOM-kill, segfault) surfaces as
    :class:`concurrent.futures.process.BrokenProcessPool` once the
    remaining workers drain the queue, and the dead run's shards remain
    for the next run to recover.

    Parameters
    ----------
    workers:
        Worker-process count; capped at the number of pending tasks.
        Construct directly to force a count; :func:`make_executor` caps
        requests at the usable cores instead of oversubscribing.
    start_method:
        ``multiprocessing`` start method; default is ``fork`` on Linux
        (cheap, inherits loaded numpy) and the platform default elsewhere
        (forking after BLAS/framework init is unsafe on macOS).
    """

    def __init__(self, workers: int, start_method: Optional[str] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.start_method = start_method

    def _context(self):
        if self.start_method is not None:
            return multiprocessing.get_context(self.start_method)
        if sys.platform == "linux":
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def run(
        self,
        tasks: Sequence[tuple],
        store: SweepStore,
        progress: Optional[ProgressCallback] = None,
        shared=None,
    ) -> dict[str, CellExecution]:
        if not tasks:
            store.compact()  # resumed byte-identity even with nothing to do
            return {}
        shard_dir = store.shard_directory()
        if shard_dir is not None:
            shard_dir.mkdir(parents=True, exist_ok=True)
        context = self._context()
        task_queue = context.Queue()
        result_queue = context.Queue()
        for task in tasks:
            task_queue.put(task)
        workers = min(self.workers, len(tasks))
        for _ in range(workers):
            task_queue.put(None)  # one shutdown sentinel per worker
        processes = [
            context.Process(
                target=_worker_main,
                args=(
                    task_queue,
                    result_queue,
                    str(shard_dir) if shard_dir is not None else None,
                    shared,
                ),
                daemon=True,
            )
            for _ in range(workers)
        ]
        executions: dict[str, CellExecution] = {}

        def absorb(item) -> None:
            key, result, elapsed = item
            executions[key] = CellExecution(result, elapsed)
            _notify(progress, key, result, elapsed, len(executions), len(tasks))

        try:
            for process in processes:
                process.start()
            while len(executions) < len(tasks):
                try:
                    absorb(result_queue.get(timeout=0.1))
                except queue_module.Empty:
                    if any(process.is_alive() for process in processes):
                        continue
                    # Every worker exited; drain what they flushed before
                    # deciding whether someone died holding a task.
                    while len(executions) < len(tasks):
                        try:
                            absorb(result_queue.get(timeout=0.2))
                        except queue_module.Empty:
                            break
                    if len(executions) < len(tasks):
                        raise BrokenProcessPool(
                            f"{len(tasks) - len(executions)} sweep task(s) "
                            "never returned: a worker died without raising "
                            "(OOM-kill or segfault); cells it finished "
                            "survive in its shard for the next run to "
                            "recover"
                        )
        finally:
            # Unread tasks (broken-pool or interrupt path) must not block
            # the parent on the queue's feeder thread.
            task_queue.cancel_join_thread()
            for process in processes:
                process.join(timeout=5.0)
            for process in processes:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)
            task_queue.close()
            result_queue.close()
        store.update(
            {
                key: execution.result
                for key, execution in executions.items()
                if not is_failure(execution.result)
            }
        )
        # Absorb-and-remove every shard through the store's own recovery
        # path: our workers' shards hold keys just merged (skipped), while
        # shards a *previous* killed run left behind are merged too —
        # never deleted unmerged.
        store.recover_shards()
        store.compact()
        return executions


# Backwards-compatible name: the parallel executor *is* the work-stealing
# scheduler now.
ParallelSweepExecutor = WorkStealingSweepExecutor


def usable_cpu_count() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def make_executor(
    workers: "int | None" = 1, start_method: Optional[str] = None
):
    """Build the right executor for ``workers``, never oversubscribing.

    ``None`` (or ``"auto"``) asks for every usable core.  A request
    beyond the usable cores is reduced with a warning — forcing 4 workers
    onto a 1-core host once *recorded a 0.29x "speedup"* in
    BENCH_sweep_parallel — and a request that lands at one worker
    degrades to the :class:`SerialSweepExecutor`, which beats a
    single-worker process pool by construction.  Construct
    :class:`WorkStealingSweepExecutor` directly to force a worker count
    (tests do, to exercise multi-process paths on small hosts).
    """
    cap = usable_cpu_count()
    if workers is None or workers == "auto":
        workers = cap
    workers = int(workers)
    if workers > cap:
        warnings.warn(
            f"requested {workers} sweep workers but only {cap} usable "
            f"core(s); reducing to {cap} (oversubscribed process pools "
            "run *slower* than serial)",
            RuntimeWarning,
            stacklevel=2,
        )
        workers = cap
    if workers <= 1:
        return SerialSweepExecutor()
    return WorkStealingSweepExecutor(workers, start_method=start_method)


@dataclass
class SweepOutcome:
    """Everything one :meth:`SweepRunner.run` call produced.

    ``results`` maps cell keys to per-cell metric dicts; ``computed``,
    ``cached``, and ``failed`` split the grid into cells evaluated this
    run, served from the store, and recorded as structured errors.
    ``timings`` holds per-cell wall-clock seconds for cells executed this
    run (cached cells cost nothing and have no entry).
    """

    results: dict[str, dict] = field(default_factory=dict)
    computed: list[str] = field(default_factory=list)
    cached: list[str] = field(default_factory=list)
    failed: list[str] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)

    def mean_psnr(self, attack: str, defense: str, scenario: str) -> float:
        """The headline metric of one cell.

        Raises :class:`KeyError` for a cell the outcome does not contain
        and :class:`ValueError` for a cell that failed — both name the
        cell, so a typo'd lookup never reads like a real number.
        """
        key = SweepCell(attack, defense, scenario).key
        if key not in self.results:
            raise KeyError(
                f"no result for cell {key!r}; present: {sorted(self.results)}"
            )
        result = self.results[key]
        if is_failure(result):
            raise ValueError(
                f"cell {key!r} failed ({result['error']['type']}: "
                f"{result['error']['message']}); it has no mean_psnr"
            )
        return float(result["mean_psnr"])

    def to_table(self) -> str:
        """Render the grid: one row per (attack, scenario), suites as columns.

        Failed cells render as ``ERR`` so a partially-broken sweep is
        visible at a glance instead of hiding behind a dash.
        """
        defenses: list[str] = []
        for result in self.results.values():
            if result["defense"] not in defenses:
                defenses.append(result["defense"])
        pairs = []
        for result in self.results.values():
            pair = (result["attack"], result["scenario"])
            if pair not in pairs:
                pairs.append(pair)
        rows = []
        for attack, scenario in pairs:
            row = [f"{attack}/{scenario}"]
            for defense in defenses:
                cell = self.results.get(SweepCell(attack, defense, scenario).key)
                if cell is None:
                    row.append("-")
                elif is_failure(cell):
                    row.append("ERR")
                else:
                    row.append(f"{cell['mean_psnr']:.1f}")
            rows.append(row)
        return format_table(["attack/scenario"] + list(defenses), rows)


# Single-slot cache of the runner rebuilt from the shared spec, so one
# worker serving many cells of the same sweep pays the rebuild (and the
# dataset fingerprint hash) once.  Keyed by spec *identity* — the cached
# tuple keeps the spec alive, so an `is` hit can never alias a new spec.
_RUNNER_CACHE: list = []


def _sweep_cell_task(cell: SweepCell) -> dict:
    """Picklable pool entry: run one cell of the shared runner spec.

    The spec (including the dataset) arrives through :func:`worker_shared`
    — shipped once per worker by the executor, not once per task.
    """
    spec = worker_shared()["spec"]
    if _RUNNER_CACHE and _RUNNER_CACHE[0][0] is spec:
        runner = _RUNNER_CACHE[0][1]
    else:
        runner = SweepRunner(**spec)
        _RUNNER_CACHE[:] = [(spec, runner)]
    return runner.run_cell(cell)


class SweepRunner:
    """Enumerate and evaluate an attack x defense x scenario grid.

    Each cell builds a fresh federation for its scenario, lets the
    dishonest server invert *every* arriving update for ``rounds`` rounds,
    and scores all reconstructions against the emitting client's private
    batch with the vectorized matcher.  Cell results are cached in a
    :class:`SweepStore` keyed by the cell coordinates plus a fingerprint
    of the full configuration (see :meth:`store_key`), making long sweeps
    resumable without ever serving results from a different setup.

    :meth:`run` decomposes into three stages any caller can drive
    separately: :meth:`cells` (enumerate the grid), :meth:`execute` (run
    pending cells through an executor — serial or process-pool), and
    :meth:`collect` (assemble a :class:`SweepOutcome` in grid order).

    Parameters
    ----------
    dataset:
        The private dataset; partitioned per scenario.
    attacks / defenses / scenarios:
        The grid axes.  Attacks are registered attack names; defenses are
        registry spec strings — ``"WO"``, suite names, baselines, knobbed
        variants, or composed stacks like ``"MR>dpsgd"`` (see
        :mod:`repro.defense.registry`); scenarios are
        :class:`ParticipationScenario` entries with unique names.
    store:
        A :class:`SweepStore`, a path for one, or None for memory-only.
    """

    def __init__(
        self,
        dataset: SyntheticImageDataset,
        attacks: Sequence[str] = ("rtf", "cah"),
        defenses: Sequence[str] = DEFAULT_DEFENSES,
        scenarios: Sequence[ParticipationScenario] = DEFAULT_SCENARIOS,
        batch_size: int = 4,
        num_neurons: int = 64,
        rounds: int = 1,
        public_size: int = 128,
        seed: int = 0,
        store: "SweepStore | str | Path | None" = None,
    ) -> None:
        if not attacks or not defenses or not scenarios:
            raise ValueError("every grid axis needs at least one entry")
        names = [scenario.name for scenario in scenarios]
        for axis_label, axis in (
            ("attacks", list(attacks)),
            ("defenses", list(defenses)),
            ("scenario names", names),
        ):
            if len(axis) != len(set(axis)):
                raise ValueError(f"duplicate {axis_label} in {axis}")
        for name in attacks:
            attack_spec(name)  # fail fast on unknown attacks, not per cell
        for spec in defenses:
            validate_defense_spec(spec)  # likewise for the defense axis
        self.dataset = dataset
        self.attacks = tuple(attacks)
        self.defenses = tuple(defenses)
        self.scenarios = {scenario.name: scenario for scenario in scenarios}
        self.batch_size = batch_size
        self.num_neurons = num_neurons
        self.rounds = rounds
        self.public_size = public_size
        self.seed = seed
        self._dataset_fingerprint = dataset_fingerprint(dataset)
        if isinstance(store, SweepStore):
            self.store = store
        else:
            self.store = SweepStore(store)

    def spec(self) -> dict:
        """Constructor arguments (minus the store) for worker-side rebuilds.

        Everything here pickles: the dataset is plain arrays, scenarios are
        frozen dataclasses.  Workers get a memory-only store — persistence
        is the executor's job, through shards.
        """
        return {
            "dataset": self.dataset,
            "attacks": self.attacks,
            "defenses": self.defenses,
            "scenarios": tuple(self.scenarios.values()),
            "batch_size": self.batch_size,
            "num_neurons": self.num_neurons,
            "rounds": self.rounds,
            "public_size": self.public_size,
            "seed": self.seed,
        }

    def cells(self) -> list[SweepCell]:
        """The grid in deterministic attack-major order."""
        return [
            SweepCell(attack, defense, scenario)
            for attack in self.attacks
            for defense in self.defenses
            for scenario in self.scenarios
        ]

    def store_key(self, cell: SweepCell) -> str:
        """Store key for ``cell``, scoped to the full cell configuration.

        Beyond the grid coordinates, the key fingerprints everything that
        shapes the cell's result — the dataset's *content* (not just its
        name), batch size, neuron count, rounds, public-prior size, seed,
        and the scenario's *parameters* (a name alone would let a
        renamed-but-different scenario, or a regenerated dataset under the
        same name, silently serve stale numbers from a reused store file).
        The ``seeding`` marker versions the RNG-derivation scheme itself:
        cells computed under an older scheme (e.g. pre-fingerprint-keyed
        stores) miss and recompute rather than mixing two seed regimes in
        one grid.
        """
        scenario = self.scenarios[cell.scenario]
        fingerprint = hashlib.sha256(
            json.dumps(
                {
                    "dataset": self._dataset_fingerprint,
                    "batch_size": self.batch_size,
                    "num_neurons": self.num_neurons,
                    "rounds": self.rounds,
                    "public_size": self.public_size,
                    "seed": self.seed,
                    "seeding": "cell-fingerprint-v1",
                    "scenario": scenario_to_dict(scenario),
                },
                sort_keys=True,
            ).encode()
        ).hexdigest()[:12]
        return f"{cell.key}|{fingerprint}"

    def cell_seed(self, cell: SweepCell) -> int:
        """Deterministic seed for one cell, keyed by its fingerprint.

        Derived from the base seed and :meth:`store_key` — never from
        enumeration position or worker assignment — so a cell draws the
        same random streams no matter which executor runs it, in what
        order, or on how many workers.  This is what makes serial and
        parallel stores byte-identical and resume safe across executors.
        """
        return derive_seed(self.seed, self.store_key(cell))

    def _model_factory(self, seed: int, attack_name: str):
        """Global-model factory matching the attack's declared target.

        Imprint-family attacks get the malicious-layer
        :class:`~repro.attacks.imprint.ImprintedModel`; the linear
        inversion runs against the paper's single-layer classifier.
        """
        dataset = self.dataset
        num_neurons = self.num_neurons
        model_kind = attack_spec(attack_name).model

        if model_kind == "linear":
            from repro.attacks.linear import LinearClassifier

            def factory():
                return LinearClassifier(
                    dataset.image_shape,
                    dataset.num_classes,
                    rng=np.random.default_rng(seed + 1),
                )

            return factory
        from repro.attacks.imprint import ImprintedModel

        def factory():
            return ImprintedModel(
                dataset.image_shape,
                num_neurons,
                dataset.num_classes,
                rng=np.random.default_rng(seed + 1),
            )

        return factory

    def run_cell(self, cell: SweepCell) -> dict:
        """Evaluate one cell through the full dishonest-server protocol."""
        scenario = self.scenarios[cell.scenario]
        seed = self.cell_seed(cell)
        attack = make_attack(
            cell.attack,
            self.num_neurons,
            self.dataset.images[: self.public_size],
            seed=seed,
        )
        # The cell-fingerprint seed also keys the defense's private
        # streams (DP noise, transform choices), so stochastic arms stay
        # order/worker-invariant like everything else in the cell.
        defense = make_defense(cell.defense, seed=seed)
        simulation = FederatedSimulation(
            self.dataset,
            self._model_factory(seed, cell.attack),
            scenario.to_config(self.batch_size, seed),
            defense=defense,
            attack=attack,
            target_client_id=None,
        )
        server = simulation.server
        # Reconstruction scoring needs the victim's actual batch; fetch
        # through the fleet so only dispatched clients ever materialize
        # (the fleet contract pins client_id == registry id).
        fleet = server.fleet
        psnrs: list[float] = []
        num_reconstructions = 0
        for _ in range(self.rounds):
            record = server.run_round()
            for client_id, result in server.round_reconstructions(
                record.round_index
            ):
                num_reconstructions += len(result)
                if len(result) == 0:
                    continue
                originals = fleet.get(client_id).last_batch[0]
                psnrs.extend(
                    score
                    for _, score in match_reconstructions(
                        originals, result.images
                    )
                )
        return {
            "attack": cell.attack,
            "defense": cell.defense,
            "scenario": cell.scenario,
            "mean_psnr": float(np.mean(psnrs)) if psnrs else 0.0,
            "max_psnr": float(np.max(psnrs)) if psnrs else 0.0,
            "num_reconstructions": num_reconstructions,
            "num_scored": len(psnrs),
            "rounds": self.rounds,
        }

    def execute(
        self,
        cells: Sequence[SweepCell],
        executor=None,
        progress: Optional[ProgressCallback] = None,
    ) -> dict[str, CellExecution]:
        """Run ``cells`` through ``executor`` (serial when None).

        Successful results are persisted to the store by the executor;
        failures are returned but never persisted, so they retry on the
        next run.  Returns ``store_key -> CellExecution``.
        """
        executor = executor if executor is not None else SerialSweepExecutor()
        tasks = [
            (self.store_key(cell), _sweep_cell_task, cell) for cell in cells
        ]
        return executor.run(
            tasks, self.store, progress, shared={"spec": self.spec()}
        )

    def collect(
        self,
        cells: Sequence[SweepCell],
        executions: dict[str, CellExecution],
        cached: Optional[dict[str, dict]] = None,
    ) -> SweepOutcome:
        """Assemble the outcome in grid order from executed + cached cells."""
        cached = cached or {}
        outcome = SweepOutcome()
        for cell in cells:
            if cell.key in cached:
                outcome.results[cell.key] = cached[cell.key]
                outcome.cached.append(cell.key)
                continue
            execution = executions[self.store_key(cell)]
            result = execution.result
            if is_failure(result):
                result = {
                    "attack": cell.attack,
                    "defense": cell.defense,
                    "scenario": cell.scenario,
                    **result,
                }
                outcome.failed.append(cell.key)
            else:
                outcome.computed.append(cell.key)
            outcome.results[cell.key] = result
            outcome.timings[cell.key] = execution.elapsed_s
        return outcome

    def run(
        self,
        executor=None,
        progress: Optional[ProgressCallback] = None,
    ) -> SweepOutcome:
        """Evaluate the whole grid, serving finished cells from the store.

        Recovers any shards a killed parallel run left behind, scans the
        store for finished cells, fans the rest out through ``executor``
        (serial in-process when None), and collects everything in grid
        order.
        """
        self.store.recover_shards()
        grid = self.cells()
        cached_results: dict[str, dict] = {}
        pending: list[SweepCell] = []
        for cell in grid:
            cached = self.store.get(self.store_key(cell))
            if cached is not None:
                cached_results[cell.key] = cached
                if progress is not None:
                    progress(
                        CellEvent(
                            key=self.store_key(cell),
                            status="cached",
                            elapsed_s=0.0,
                            completed=len(cached_results),
                            total=len(grid),
                        )
                    )
            else:
                pending.append(cell)
        executions = self.execute(pending, executor, progress)
        return self.collect(grid, executions, cached_results)


def headline_ordering_holds(
    outcome: SweepOutcome,
    attack: str = "rtf",
    undefended: str = "WO",
    defended: str = "MR",
) -> bool:
    """Paper Fig. 5 shape: no-defense PSNR beats the defended cell everywhere.

    Checks every scenario present for ``attack``; vacuously False when the
    outcome contains no such pair.  Failed cells carry no PSNR and are
    skipped, like absent cells.
    """
    scenarios = {
        result["scenario"]
        for result in outcome.results.values()
        if not is_failure(result) and result["attack"] == attack
    }
    checked = False
    for scenario in sorted(scenarios):
        baseline = outcome.results.get(SweepCell(attack, undefended, scenario).key)
        defended_cell = outcome.results.get(
            SweepCell(attack, defended, scenario).key
        )
        if baseline is None or defended_cell is None:
            continue
        if is_failure(baseline) or is_failure(defended_cell):
            continue
        checked = True
        if baseline["mean_psnr"] <= defended_cell["mean_psnr"]:
            return False
    return checked


# The scenario fields that existed before the event engine.  These are
# always serialized; every later field is elided while it holds its
# default.  The cell seed derives from the store-key fingerprint, which
# hashes this payload — emitting a new field's default for an old
# scenario would silently re-seed (and thus invalidate) every golden
# value in every existing store.
_LEGACY_SCENARIO_FIELDS = frozenset({
    "name", "num_clients", "clients_per_round", "dropout_rate",
    "straggler_rate", "accept_stale", "partition", "dirichlet_alpha",
    "aggregator", "weight_by_examples",
})
_SCENARIO_DEFAULTS = {
    field.name: field.default for field in fields(ParticipationScenario)
}


def scenario_from_dict(payload: dict) -> ParticipationScenario:
    """Rebuild a :class:`ParticipationScenario` from its serialized payload.

    Fields absent from ``payload`` (elided defaults, or payloads written
    before the field existed) take their dataclass defaults.
    """
    return ParticipationScenario(**payload)


def scenario_to_dict(scenario: ParticipationScenario) -> dict:
    """JSON-serializable form of a scenario (inverse of
    :func:`scenario_from_dict`).

    Pre-engine fields are always present; event-engine fields appear only
    when they differ from their defaults, so legacy scenarios fingerprint
    (and therefore seed) exactly as they did before the engine existed.
    """
    return {
        key: value
        for key, value in asdict(scenario).items()
        if key in _LEGACY_SCENARIO_FIELDS or value != _SCENARIO_DEFAULTS[key]
    }


# --------------------------------------------------------------------------
# CLI: python -m repro.experiments.sweep --grid smoke --workers 4 --resume
# --------------------------------------------------------------------------


def _smoke_runner(
    seed: int,
    rounds: int,
    store,
    attacks: Optional[Sequence[str]] = None,
    defenses: Optional[Sequence[str]] = None,
    scenarios: Optional[Sequence[ParticipationScenario]] = None,
) -> SweepRunner:
    """2-cell sanity grid: rtf x (WO, MR) x full participation, seconds."""
    dataset = make_synthetic_dataset(
        4, 12, image_size=8, seed=3, name="smoke-grid"
    )
    return SweepRunner(
        dataset,
        attacks=attacks or ("rtf",),
        defenses=defenses or ("WO", "MR"),
        scenarios=scenarios or (ParticipationScenario("full", num_clients=2),),
        batch_size=3,
        num_neurons=48,
        public_size=48,
        rounds=rounds,
        seed=seed,
        store=store,
    )


def _default_runner(
    seed: int,
    rounds: int,
    store,
    attacks: Optional[Sequence[str]] = None,
    defenses: Optional[Sequence[str]] = None,
    scenarios: Optional[Sequence[ParticipationScenario]] = None,
) -> SweepRunner:
    """8-cell working grid: rtf x 4 suites x 2 participation shapes."""
    dataset = make_synthetic_dataset(
        6, 16, image_size=16, seed=5, name="default-grid"
    )
    return SweepRunner(
        dataset,
        attacks=attacks or ("rtf",),
        defenses=defenses or ("WO", "MR", "SH", "MR+SH"),
        scenarios=scenarios or DEFAULT_SCENARIOS[:2],
        batch_size=4,
        num_neurons=64,
        public_size=64,
        rounds=rounds,
        seed=seed,
        store=store,
    )


def _acceptance_runner(
    seed: int,
    rounds: int,
    store,
    attacks: Optional[Sequence[str]] = None,
    defenses: Optional[Sequence[str]] = None,
    scenarios: Optional[Sequence[ParticipationScenario]] = None,
) -> SweepRunner:
    """The 24-cell acceptance grid on the CIFAR100 stand-in (minutes)."""
    return SweepRunner(
        synthetic_cifar100(samples_per_class=2, seed=2002),
        attacks=attacks or ("rtf", "cah"),
        defenses=defenses or ("WO", "MR", "SH", "MR+SH"),
        scenarios=scenarios or DEFAULT_SCENARIOS[:3],
        batch_size=4,
        num_neurons=64,
        public_size=100,
        rounds=rounds,
        seed=seed,
        store=store,
    )


GRID_PRESETS: dict[str, Callable[..., SweepRunner]] = {
    "smoke": _smoke_runner,
    "default": _default_runner,
    "acceptance": _acceptance_runner,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry: run a preset grid with ``--workers``/``--resume``/``--grid``.

    Refuses to reuse an existing store without ``--resume`` (stale results
    must be opted into), prints per-cell progress and the final grid
    table, and exits non-zero when any cell failed.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.sweep",
        description=(
            "Run an attack x defense x scenario sweep grid, optionally "
            "fanned out over worker processes, with a resumable store."
        ),
    )
    parser.add_argument(
        "--grid",
        choices=sorted(GRID_PRESETS),
        default="smoke",
        help="which preset grid to run (default: smoke)",
    )
    parser.add_argument(
        "--workers",
        default="1",
        help=(
            "worker processes: an integer, or 'auto' for every usable "
            "core; requests beyond the usable cores are reduced with a "
            "warning, and 1 effective worker runs serially in-process "
            "(default: 1)"
        ),
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        help="result store path (default: sweep_<grid>.json)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "reuse an existing store file, computing only missing cells; "
            "without this flag an existing store is an error, so stale "
            "results are never mixed in silently"
        ),
    )
    parser.add_argument(
        "--attacks",
        default=None,
        help=(
            "comma-separated attack names overriding the preset's attack "
            f"axis; registered: {', '.join(available_attacks())}"
        ),
    )
    parser.add_argument(
        "--defenses",
        default=None,
        help=(
            "comma-separated defense specs overriding the preset's defense "
            "axis; arms are registry spec strings, including knobbed "
            "variants like dpsgd(noise_multiplier=0.5) and composed stacks "
            "like MR>dpsgd (quote '>' from the shell); registered: "
            f"{', '.join(available_defenses())}"
        ),
    )
    parser.add_argument(
        "--scenario-axis",
        choices=sorted(SCENARIO_AXES),
        default=None,
        help=(
            "replace the preset's participation-scenario axis with a named "
            "axis: 'secagg' crosses the aggregation rule (plain masked_sum "
            "vs the SecAgg protocol rounds) with the commit-then-drop "
            "dropout regime"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument(
        "--rounds", type=int, default=1, help="federation rounds per cell"
    )
    args = parser.parse_args(argv)

    if args.workers == "auto":
        requested_workers: "int | None" = None
    else:
        try:
            requested_workers = int(args.workers)
        except ValueError:
            parser.error("--workers must be an integer or 'auto'")

    attacks: Optional[tuple[str, ...]] = None
    if args.attacks is not None:
        attacks = tuple(
            name.strip() for name in args.attacks.split(",") if name.strip()
        )
        if not attacks:
            parser.error("--attacks must name at least one attack")
        if len(set(attacks)) != len(attacks):
            parser.error(f"--attacks lists a name twice: {', '.join(attacks)}")
        for name in attacks:
            try:
                attack_spec(name)
            except UnknownAttackError as error:
                parser.error(str(error))

    defenses: Optional[tuple[str, ...]] = None
    if args.defenses is not None:
        try:
            defenses = tuple(split_spec_list(args.defenses))
        except ValueError as error:
            parser.error(str(error))
        if not defenses:
            parser.error("--defenses must name at least one defense")
        if len(set(defenses)) != len(defenses):
            parser.error(
                f"--defenses lists a spec twice: {', '.join(defenses)}"
            )
        for spec in defenses:
            try:
                validate_defense_spec(spec)
            except ValueError as error:
                parser.error(str(error))

    store_path = args.store or Path(f"sweep_{args.grid}.json")
    shard_dir = SweepStore.shard_directory_for(store_path)
    if (store_path.exists() or shard_dir.is_dir()) and not args.resume:
        existing = store_path if store_path.exists() else shard_dir
        parser.error(
            f"{existing} already exists (a finished store or shards from a "
            "killed parallel run); pass --resume to finish that sweep with "
            "it, or point --store elsewhere"
        )
    runner = GRID_PRESETS[args.grid](
        seed=args.seed,
        rounds=args.rounds,
        store=store_path,
        attacks=attacks,
        defenses=defenses,
        scenarios=(
            SCENARIO_AXES[args.scenario_axis]
            if args.scenario_axis is not None
            else None
        ),
    )

    def report(event: CellEvent) -> None:
        if event.status == "cached":
            print(f"[store {event.completed}/{event.total}] {event.key} cached")
        elif event.status == "failed":
            print(
                f"[run {event.completed}/{event.total}] {event.key} FAILED "
                f"({event.error['type']}: {event.error['message']})"
            )
        else:
            print(
                f"[run {event.completed}/{event.total}] {event.key} "
                f"done in {event.elapsed_s:.2f}s"
            )

    outcome = runner.run(make_executor(requested_workers), progress=report)
    print()
    print(outcome.to_table())
    print(
        f"\n{len(outcome.computed)} computed, {len(outcome.cached)} cached, "
        f"{len(outcome.failed)} failed -> {store_path}"
    )
    if headline_ordering_holds(outcome):
        print("headline ordering holds: WO mean PSNR > MR in every scenario")
    for key in outcome.failed:
        error = outcome.results[key]["error"]
        print(f"FAILED {key}: {error['type']}: {error['message']}")
    return 1 if outcome.failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
