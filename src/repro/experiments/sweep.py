"""Grid sweep engine: attack x defense x participation-scenario evaluation.

Large-scale active attacks (LOKI, ARES) reconstruct across hundreds of
clients per round, so evaluating OASIS credibly means running every
(attack, transformation suite, federation scenario) combination through the
full dishonest-server protocol — not one hand-rolled loop per figure.  This
module provides that engine:

- :class:`ParticipationScenario` describes one federation shape (fleet
  size, per-round sampling, dropout/stragglers, IID vs Dirichlet non-IID)
  and lowers to the PR-1 :class:`~repro.fl.FederationConfig`.
- :class:`SweepRunner` enumerates the cell grid, runs each cell through
  :class:`~repro.fl.DishonestServer` with ``target_client_id=None`` (every
  arriving update is inverted — the multi-victim regime), and scores all
  reconstructions with the vectorized pairwise-PSNR matcher.
- :class:`SweepStore` is a resumable JSON result store: each finished cell
  is persisted immediately, so an interrupted sweep resumes without
  recomputing completed cells.  The per-figure harnesses
  (``attack_sweep``, ``defense_eval``) share the same store for their own
  grids.

The expected headline shape (paper Fig. 5): for each scenario, the
(attack, no-defense) cell's mean PSNR strictly exceeds the (attack, MR)
cell's — reproduced by :func:`headline_ordering_holds`.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.data.synthetic import SyntheticImageDataset
from repro.defense.oasis import OasisDefense
from repro.experiments.reporting import format_table
from repro.experiments.runner import make_attack
from repro.fl.simulator import FederatedSimulation, FederationConfig
from repro.metrics.psnr import match_reconstructions


def dataset_fingerprint(dataset: SyntheticImageDataset) -> str:
    """Short content digest of a dataset, for cache keys.

    Covers the name, shapes, and the actual pixel/label bytes: two
    datasets that merely share a name (same generator, different seed)
    must never serve each other's cached results.
    """
    digest = hashlib.sha256()
    digest.update(dataset.name.encode())
    digest.update(repr(dataset.images.shape).encode())
    digest.update(np.ascontiguousarray(dataset.images).tobytes())
    digest.update(np.ascontiguousarray(dataset.labels).tobytes())
    return digest.hexdigest()[:12]


@dataclass(frozen=True)
class ParticipationScenario:
    """One federation shape a sweep cell runs under (PR-1 scenario knobs)."""

    name: str
    num_clients: int = 2
    clients_per_round: Optional[int] = None
    dropout_rate: float = 0.0
    straggler_rate: float = 0.0
    accept_stale: bool = False
    partition: str = "iid"
    dirichlet_alpha: float = 0.5
    aggregator: str = "fedavg"
    weight_by_examples: bool = False

    def to_config(self, batch_size: int, seed: int) -> FederationConfig:
        """Lower this scenario to a :class:`~repro.fl.FederationConfig`."""
        return FederationConfig(
            num_clients=self.num_clients,
            clients_per_round=self.clients_per_round,
            batch_size=batch_size,
            seed=seed,
            partition=self.partition,
            dirichlet_alpha=self.dirichlet_alpha,
            dropout_rate=self.dropout_rate,
            straggler_rate=self.straggler_rate,
            accept_stale=self.accept_stale,
            aggregator=self.aggregator,
            weight_by_examples=self.weight_by_examples,
        )


# The sweep's default scenario lineup: full participation, per-round
# sampling, client dropout, and Dirichlet label skew — the participation
# regimes PR 1's federation engine simulates.
DEFAULT_SCENARIOS: tuple[ParticipationScenario, ...] = (
    ParticipationScenario("full", num_clients=2),
    ParticipationScenario("sampled", num_clients=4, clients_per_round=2),
    ParticipationScenario("dropout", num_clients=4, dropout_rate=0.25),
    ParticipationScenario(
        "noniid", num_clients=4, partition="dirichlet", dirichlet_alpha=0.3
    ),
)

# The defense arms of the paper's figures: no defense plus every named
# transformation suite (Fig. 5 singles and the Fig. 6 MR+SH integration).
DEFAULT_DEFENSES: tuple[str, ...] = (
    "WO", "MR", "mR", "SH", "HFlip", "VFlip", "MR+SH",
)


@dataclass(frozen=True)
class SweepCell:
    """One (attack, defense, scenario) coordinate of the grid."""

    attack: str
    defense: str
    scenario: str

    @property
    def key(self) -> str:
        """Stable store key for this cell."""
        return f"{self.attack}|{self.defense}|{self.scenario}"


class SweepStore:
    """Resumable JSON store of finished cells.

    Every :meth:`put` rewrites the backing file, so a killed sweep loses at
    most the cell in flight; re-running with the same store skips every
    key already present (tracked by the ``hits``/``misses`` counters the
    tests assert on).  With ``path=None`` the store is memory-only — same
    interface, no persistence.
    """

    def __init__(self, path: "str | Path | None" = None) -> None:
        self.path = Path(path) if path is not None else None
        self.hits = 0
        self.misses = 0
        self._cells: dict[str, dict] = {}
        if self.path is not None and self.path.exists():
            try:
                payload = json.loads(self.path.read_text())
            except (ValueError, OSError):
                payload = {}
            cells = payload.get("cells", {})
            if isinstance(cells, dict):
                self._cells = cells

    def __contains__(self, key: str) -> bool:
        return key in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def get(self, key: str):
        """Return the cached value for ``key`` (None on miss), counting."""
        if key in self._cells:
            self.hits += 1
            return self._cells[key]
        self.misses += 1
        return None

    def put(self, key: str, value) -> None:
        """Record ``key`` and persist immediately (resume safety)."""
        self._cells[key] = value
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            tmp.write_text(
                json.dumps({"cells": self._cells}, indent=2, sort_keys=True)
                + "\n"
            )
            tmp.replace(self.path)

    def keys(self) -> list[str]:
        """All cached cell keys, insertion-ordered."""
        return list(self._cells)


@dataclass
class SweepOutcome:
    """Everything one :meth:`SweepRunner.run` call produced.

    ``results`` maps cell keys to per-cell metric dicts; ``computed`` and
    ``cached`` split the grid into cells evaluated this run vs served from
    the store.
    """

    results: dict[str, dict] = field(default_factory=dict)
    computed: list[str] = field(default_factory=list)
    cached: list[str] = field(default_factory=list)

    def mean_psnr(self, attack: str, defense: str, scenario: str) -> float:
        """The headline metric of one cell."""
        return float(
            self.results[SweepCell(attack, defense, scenario).key]["mean_psnr"]
        )

    def to_table(self) -> str:
        """Render the grid: one row per (attack, scenario), suites as columns."""
        defenses: list[str] = []
        for result in self.results.values():
            if result["defense"] not in defenses:
                defenses.append(result["defense"])
        pairs = []
        for result in self.results.values():
            pair = (result["attack"], result["scenario"])
            if pair not in pairs:
                pairs.append(pair)
        rows = []
        for attack, scenario in pairs:
            row = [f"{attack}/{scenario}"]
            for defense in defenses:
                cell = self.results.get(SweepCell(attack, defense, scenario).key)
                row.append("-" if cell is None else f"{cell['mean_psnr']:.1f}")
            rows.append(row)
        return format_table(["attack/scenario"] + list(defenses), rows)


class SweepRunner:
    """Enumerate and evaluate an attack x defense x scenario grid.

    Each cell builds a fresh federation for its scenario, lets the
    dishonest server invert *every* arriving update for ``rounds`` rounds,
    and scores all reconstructions against the emitting client's private
    batch with the vectorized matcher.  Cell results are cached in a
    :class:`SweepStore` keyed by the cell coordinates plus a fingerprint
    of the full configuration (see :meth:`store_key`), making long sweeps
    resumable without ever serving results from a different setup.

    Parameters
    ----------
    dataset:
        The private dataset; partitioned per scenario.
    attacks / defenses / scenarios:
        The grid axes.  Defenses are ``"WO"`` (no defense) or transformation
        suite names; scenarios are :class:`ParticipationScenario` entries
        with unique names.
    store:
        A :class:`SweepStore`, a path for one, or None for memory-only.
    """

    def __init__(
        self,
        dataset: SyntheticImageDataset,
        attacks: Sequence[str] = ("rtf", "cah"),
        defenses: Sequence[str] = DEFAULT_DEFENSES,
        scenarios: Sequence[ParticipationScenario] = DEFAULT_SCENARIOS,
        batch_size: int = 4,
        num_neurons: int = 64,
        rounds: int = 1,
        public_size: int = 128,
        seed: int = 0,
        store: "SweepStore | str | Path | None" = None,
    ) -> None:
        if not attacks or not defenses or not scenarios:
            raise ValueError("every grid axis needs at least one entry")
        names = [scenario.name for scenario in scenarios]
        for axis_label, axis in (
            ("attacks", list(attacks)),
            ("defenses", list(defenses)),
            ("scenario names", names),
        ):
            if len(axis) != len(set(axis)):
                raise ValueError(f"duplicate {axis_label} in {axis}")
        self.dataset = dataset
        self.attacks = tuple(attacks)
        self.defenses = tuple(defenses)
        self.scenarios = {scenario.name: scenario for scenario in scenarios}
        self.batch_size = batch_size
        self.num_neurons = num_neurons
        self.rounds = rounds
        self.public_size = public_size
        self.seed = seed
        self._dataset_fingerprint = dataset_fingerprint(dataset)
        if isinstance(store, SweepStore):
            self.store = store
        else:
            self.store = SweepStore(store)

    def cells(self) -> list[SweepCell]:
        """The grid in deterministic attack-major order."""
        return [
            SweepCell(attack, defense, scenario)
            for attack in self.attacks
            for defense in self.defenses
            for scenario in self.scenarios
        ]

    def store_key(self, cell: SweepCell) -> str:
        """Store key for ``cell``, scoped to the full cell configuration.

        Beyond the grid coordinates, the key fingerprints everything that
        shapes the cell's result — the dataset's *content* (not just its
        name), batch size, neuron count, rounds, public-prior size, seed,
        and the scenario's *parameters* (a name alone would let a
        renamed-but-different scenario, or a regenerated dataset under the
        same name, silently serve stale numbers from a reused store file).
        """
        scenario = self.scenarios[cell.scenario]
        fingerprint = hashlib.sha256(
            json.dumps(
                {
                    "dataset": self._dataset_fingerprint,
                    "batch_size": self.batch_size,
                    "num_neurons": self.num_neurons,
                    "rounds": self.rounds,
                    "public_size": self.public_size,
                    "seed": self.seed,
                    "scenario": scenario_to_dict(scenario),
                },
                sort_keys=True,
            ).encode()
        ).hexdigest()[:12]
        return f"{cell.key}|{fingerprint}"

    def _model_factory(self):
        from repro.attacks.imprint import ImprintedModel

        dataset = self.dataset
        num_neurons = self.num_neurons
        seed = self.seed

        def factory():
            return ImprintedModel(
                dataset.image_shape,
                num_neurons,
                dataset.num_classes,
                rng=np.random.default_rng(seed + 1),
            )

        return factory

    def run_cell(self, cell: SweepCell) -> dict:
        """Evaluate one cell through the full dishonest-server protocol."""
        scenario = self.scenarios[cell.scenario]
        attack = make_attack(
            cell.attack,
            self.num_neurons,
            self.dataset.images[: self.public_size],
            seed=self.seed,
        )
        defense = None if cell.defense == "WO" else OasisDefense(cell.defense)
        start = time.perf_counter()
        simulation = FederatedSimulation(
            self.dataset,
            self._model_factory(),
            scenario.to_config(self.batch_size, self.seed),
            defense=defense,
            attack=attack,
            target_client_id=None,
        )
        server = simulation.server
        clients_by_id = {client.client_id: client for client in server.clients}
        psnrs: list[float] = []
        num_reconstructions = 0
        for _ in range(self.rounds):
            record = server.run_round()
            for client_id, result in server.round_reconstructions(
                record.round_index
            ):
                num_reconstructions += len(result)
                if len(result) == 0:
                    continue
                originals = clients_by_id[client_id].last_batch[0]
                psnrs.extend(
                    score
                    for _, score in match_reconstructions(
                        originals, result.images
                    )
                )
        return {
            "attack": cell.attack,
            "defense": cell.defense,
            "scenario": cell.scenario,
            "mean_psnr": float(np.mean(psnrs)) if psnrs else 0.0,
            "max_psnr": float(np.max(psnrs)) if psnrs else 0.0,
            "num_reconstructions": num_reconstructions,
            "num_scored": len(psnrs),
            "rounds": self.rounds,
            "elapsed_s": time.perf_counter() - start,
        }

    def run(self) -> SweepOutcome:
        """Evaluate the whole grid, serving finished cells from the store."""
        outcome = SweepOutcome()
        for cell in self.cells():
            store_key = self.store_key(cell)
            cached = self.store.get(store_key)
            if cached is not None:
                outcome.results[cell.key] = cached
                outcome.cached.append(cell.key)
                continue
            result = self.run_cell(cell)
            self.store.put(store_key, result)
            outcome.results[cell.key] = result
            outcome.computed.append(cell.key)
        return outcome


def headline_ordering_holds(
    outcome: SweepOutcome,
    attack: str = "rtf",
    undefended: str = "WO",
    defended: str = "MR",
) -> bool:
    """Paper Fig. 5 shape: no-defense PSNR beats the defended cell everywhere.

    Checks every scenario present for ``attack``; vacuously False when the
    outcome contains no such pair.
    """
    scenarios = {
        result["scenario"]
        for result in outcome.results.values()
        if result["attack"] == attack
    }
    checked = False
    for scenario in scenarios:
        baseline_key = SweepCell(attack, undefended, scenario).key
        defended_key = SweepCell(attack, defended, scenario).key
        if baseline_key not in outcome.results or defended_key not in outcome.results:
            continue
        checked = True
        if (
            outcome.results[baseline_key]["mean_psnr"]
            <= outcome.results[defended_key]["mean_psnr"]
        ):
            return False
    return checked


def scenario_from_dict(payload: dict) -> ParticipationScenario:
    """Rebuild a :class:`ParticipationScenario` from its ``asdict`` payload."""
    return ParticipationScenario(**payload)


def scenario_to_dict(scenario: ParticipationScenario) -> dict:
    """JSON-serializable form of a scenario (inverse of
    :func:`scenario_from_dict`)."""
    return asdict(scenario)
