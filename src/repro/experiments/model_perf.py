"""Table I: model accuracy when training with and without OASIS.

The paper trains ResNet-18 with Adam (lr 1e-3; weight decay 1e-5 on the
ImageNet subset, 1e-2 on CIFAR100) and reports final test accuracy per
transformation.  Expected shape: OASIS costs at most a point or two of
accuracy (and sometimes helps), because augmentation was designed to aid
generalization.

The harness keeps the *batch stream identical* across arms (same loader
seed), so the only difference between "WO" and a transformation arm is the
OASIS expansion — a controlled comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.data.loaders import DataLoader
from repro.data.synthetic import SyntheticImageDataset
from repro.defense.base import ClientDefense, NoDefense
from repro.defense.registry import make_defense
from repro.experiments.reporting import format_table
from repro.metrics.accuracy import accuracy
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.tensor import Tensor, no_grad

TABLE1_LINEUP = ("MR", "mR", "SH", "HFlip", "VFlip", "MR+SH", "WO")


@dataclass
class TrainingOutcome:
    defense: str
    test_accuracy: float
    train_losses: list[float]


def _evaluate(model: Module, dataset: SyntheticImageDataset, batch_size: int = 128) -> float:
    model.eval()
    logits = []
    with no_grad():
        for start in range(0, len(dataset), batch_size):
            chunk = dataset.images[start : start + batch_size].astype(np.float64)
            logits.append(model(Tensor(chunk)).numpy())
    model.train()
    return accuracy(np.concatenate(logits), dataset.labels)


def train_with_defense(
    train_set: SyntheticImageDataset,
    test_set: SyntheticImageDataset,
    model_factory: Callable[[], Module],
    defense: Optional[ClientDefense] = None,
    epochs: int = 8,
    batch_size: int = 32,
    learning_rate: float = 1e-3,
    weight_decay: float = 1e-5,
    loader_seed: int = 0,
) -> TrainingOutcome:
    """Train one arm of Table I and return its final test accuracy."""
    defense = defense if defense is not None else NoDefense()
    model = model_factory()
    optimizer = Adam(model.parameters(), lr=learning_rate, weight_decay=weight_decay)
    loss_fn = CrossEntropyLoss()
    loader = DataLoader(train_set, batch_size=batch_size, shuffle=True, seed=loader_seed)
    rng = np.random.default_rng(loader_seed)
    losses = []
    for _ in range(epochs):
        epoch_loss = 0.0
        for images, labels in loader:
            images, labels = defense.process_batch(images, labels, rng)
            optimizer.zero_grad()
            loss = loss_fn(model(Tensor(images)), labels)
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
        losses.append(epoch_loss / max(len(loader), 1))
    return TrainingOutcome(
        defense=defense.name,
        test_accuracy=_evaluate(model, test_set),
        train_losses=losses,
    )


def run_table1(
    train_set: SyntheticImageDataset,
    test_set: SyntheticImageDataset,
    model_factory: Callable[[], Module],
    lineup: tuple[str, ...] = TABLE1_LINEUP,
    epochs: int = 8,
    batch_size: int = 32,
    learning_rate: float = 1e-3,
    weight_decay: float = 1e-5,
    seed: int = 0,
) -> dict[str, TrainingOutcome]:
    """All arms of one Table I column (one dataset)."""
    outcomes = {}
    for name in lineup:
        defense = make_defense(name)
        outcomes[name] = train_with_defense(
            train_set,
            test_set,
            model_factory,
            defense=defense,
            epochs=epochs,
            batch_size=batch_size,
            learning_rate=learning_rate,
            weight_decay=weight_decay,
            loader_seed=seed,
        )
    return outcomes


def table1_report(outcomes: dict[str, TrainingOutcome]) -> str:
    """Render Table I: per-arm accuracy with deltas against the WO baseline."""
    baseline = outcomes.get("WO")
    rows = []
    for name, outcome in outcomes.items():
        delta = (
            outcome.test_accuracy - baseline.test_accuracy if baseline else float("nan")
        )
        rows.append(
            [
                name,
                f"{100 * outcome.test_accuracy:.1f}",
                f"{100 * delta:+.1f}" if baseline else "-",
                f"{outcome.train_losses[-1]:.3f}" if outcome.train_losses else "-",
            ]
        )
    return format_table(
        ["transformation", "test acc (%)", "delta vs WO", "final loss"], rows
    )
