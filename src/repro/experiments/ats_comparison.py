"""Figure 14: RTF defeats the ATSPrivacy-style transform-replace defense.

Gao et al. (CVPR 2021) defend optimization-based attacks by *replacing*
each training image with a transformed version.  The OASIS paper shows that
active attacks still win: a replaced image can be the sole activator of an
attacked neuron, so it is reconstructed verbatim — the attacker sees the
(transformed) training image and its content is revealed.

The quantitative signature reproduced here: under transform-replace, the
attack's reconstructions match the *client's actual training inputs* (the
transformed images) at perfect-reconstruction PSNR, whereas under OASIS
they match nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.imprint import ImprintedModel
from repro.data.synthetic import SyntheticImageDataset
from repro.defense.baselines import TransformReplaceDefense
from repro.defense.oasis import OasisDefense
from repro.experiments.runner import make_attack
from repro.fl.gradients import compute_batch_gradients
from repro.metrics.psnr import average_attack_psnr
from repro.nn.losses import CrossEntropyLoss


@dataclass
class ATSComparisonResult:
    """PSNR of RTF reconstructions vs the client's actual training inputs."""

    ats_vs_training_inputs: float
    ats_vs_originals: float
    oasis_vs_training_inputs: float
    oasis_vs_originals: float
    num_ats_reconstructions: int
    num_oasis_reconstructions: int


def run_ats_comparison(
    dataset: SyntheticImageDataset,
    batch_size: int = 8,
    num_neurons: int = 500,
    suite_name: str = "MR",
    seed: int = 0,
) -> ATSComparisonResult:
    """RTF against transform-replace (ATS) and against OASIS, same batch."""
    rng = np.random.default_rng((seed, batch_size))
    images, labels = dataset.sample_batch(min(batch_size, len(dataset)), rng)
    model = ImprintedModel(
        dataset.image_shape,
        num_neurons,
        dataset.num_classes,
        rng=np.random.default_rng(seed + 1),
    )
    attack = make_attack("rtf", num_neurons, dataset.images[:200], seed=seed)
    attack.craft(model)
    loss_fn = CrossEntropyLoss()

    # --- ATSPrivacy-style: replace every image with a transformed version.
    ats = TransformReplaceDefense(suite_name, seed=seed)
    ats_rng = np.random.default_rng(seed)
    ats_images, ats_labels = ats.process_batch(images, labels, ats_rng)
    gradients, _ = compute_batch_gradients(model, loss_fn, ats_images, ats_labels)
    ats_result = attack.reconstruct(gradients)

    # --- OASIS: union the transforms in (Eq. 7).
    oasis = OasisDefense(suite_name)
    oasis_images, oasis_labels = oasis.expand_batch(images, labels)
    gradients, _ = compute_batch_gradients(model, loss_fn, oasis_images, oasis_labels)
    oasis_result = attack.reconstruct(gradients)

    return ATSComparisonResult(
        ats_vs_training_inputs=average_attack_psnr(ats_images, ats_result.images),
        ats_vs_originals=average_attack_psnr(images, ats_result.images),
        oasis_vs_training_inputs=average_attack_psnr(oasis_images, oasis_result.images),
        oasis_vs_originals=average_attack_psnr(images, oasis_result.images),
        num_ats_reconstructions=len(ats_result),
        num_oasis_reconstructions=len(oasis_result),
    )
