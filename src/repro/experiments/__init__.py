"""Per-figure/table experiment harnesses for the paper's evaluation."""

from repro.experiments.ats_comparison import ATSComparisonResult, run_ats_comparison
from repro.experiments.attack_sweep import (
    PAPER_BATCH_SIZES,
    PAPER_NEURON_COUNTS,
    SweepResult,
    monotone_in_batch_size,
    run_sweep,
)
from repro.experiments.defense_eval import (
    FIG5_LINEUP,
    FIG6_LINEUP,
    FIG13_LINEUP,
    PAPER_SETTINGS,
    DefenseLineupResult,
    run_defense_lineup,
    run_linear_lineup,
)
from repro.experiments.model_perf import (
    TABLE1_LINEUP,
    TrainingOutcome,
    run_table1,
    table1_report,
    train_with_defense,
)
from repro.experiments.paper_summary import build_paper_summary, summary_holds
from repro.experiments.reporting import (
    PaperComparison,
    comparison_table,
    format_table,
    render_ascii_image,
    side_by_side,
)
from repro.experiments.runner import (
    AttackTrialResult,
    average_over_trials,
    make_attack,
    run_attack_trial,
    run_linear_trial,
)
from repro.experiments.sweep import (
    DEFAULT_DEFENSES,
    DEFAULT_SCENARIOS,
    ParticipationScenario,
    SweepCell,
    SweepOutcome,
    SweepRunner,
    SweepStore,
    dataset_fingerprint,
    headline_ordering_holds,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.experiments.visual import Gallery, reconstruction_gallery, render_pairs

__all__ = [
    "run_attack_trial",
    "run_linear_trial",
    "average_over_trials",
    "make_attack",
    "AttackTrialResult",
    "run_sweep",
    "monotone_in_batch_size",
    "SweepResult",
    "SweepRunner",
    "SweepStore",
    "SweepCell",
    "SweepOutcome",
    "ParticipationScenario",
    "DEFAULT_SCENARIOS",
    "DEFAULT_DEFENSES",
    "headline_ordering_holds",
    "dataset_fingerprint",
    "scenario_from_dict",
    "scenario_to_dict",
    "PAPER_BATCH_SIZES",
    "PAPER_NEURON_COUNTS",
    "run_defense_lineup",
    "run_linear_lineup",
    "DefenseLineupResult",
    "PAPER_SETTINGS",
    "FIG5_LINEUP",
    "FIG6_LINEUP",
    "FIG13_LINEUP",
    "run_table1",
    "train_with_defense",
    "table1_report",
    "TrainingOutcome",
    "TABLE1_LINEUP",
    "run_ats_comparison",
    "ATSComparisonResult",
    "reconstruction_gallery",
    "render_pairs",
    "Gallery",
    "format_table",
    "render_ascii_image",
    "side_by_side",
    "PaperComparison",
    "build_paper_summary",
    "summary_holds",
    "comparison_table",
]
