"""Figures 5, 6, 13: per-transformation defensive performance.

Each experiment fixes the attack at its strongest (B, n) configuration from
the Fig. 3/4 sweeps and compares the PSNR distribution of reconstructions
under each OASIS transformation suite against the no-defense baseline (WO).

Lineup arms are defense-registry spec strings
(:mod:`repro.defense.registry`), so beyond the paper's suite lineups any
registered baseline (``"dpsgd"``, ``"prune"``, ``"ats"``) or composed
stack (``"MR>dpsgd"``) slots straight into a lineup tuple; stochastic arms
are re-seeded per trial from the trial seed, keeping cached distributions
order-invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.synthetic import SyntheticImageDataset
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    defense_from_name,
    evaluate_attack_cell,
    run_linear_trial,
)
from repro.experiments.sweep import (
    SweepStore,
    dataset_fingerprint,
    is_failure,
    make_executor,
)

# The paper's strongest-attack settings (read off Figs. 3-4, Sec. IV-A).
PAPER_SETTINGS = {
    ("rtf", "imagenet"): {8: 900, 64: 800},
    ("rtf", "cifar100"): {8: 500, 64: 600},
    ("cah", "imagenet"): {8: 100, 64: 700},
    ("cah", "cifar100"): {8: 300, 64: 600},
}

FIG5_LINEUP = ("WO", "MR", "mR", "SH", "HFlip", "VFlip")
FIG6_LINEUP = ("WO", "SH", "MR", "MR+SH")
FIG13_LINEUP = ("WO", "MR", "mR", "SH", "HFlip", "VFlip")


@dataclass
class DefenseLineupResult:
    """PSNR distributions per defense arm for one (attack, B, n) setting."""

    attack: str
    dataset: str
    batch_size: int
    num_neurons: int
    distributions: dict[str, np.ndarray]
    # defense name -> structured error for arms that failed; their
    # distributions are empty.  Failures are never cached, so the next
    # run retries them.
    errors: dict[str, dict] = field(default_factory=dict)

    def averages(self) -> dict[str, float]:
        return {
            name: (float(np.mean(values)) if len(values) else 0.0)
            for name, values in self.distributions.items()
        }

    def to_table(self) -> str:
        rows = []
        for name, values in self.distributions.items():
            if len(values) == 0:
                rows.append([name, 0, "-", "-", "-", "-"])
                continue
            rows.append(
                [
                    name,
                    len(values),
                    f"{np.mean(values):.1f}",
                    f"{np.median(values):.1f}",
                    f"{np.min(values):.1f}",
                    f"{np.max(values):.1f}",
                ]
            )
        return format_table(
            ["defense", "#recon", "mean", "median", "min", "max"], rows
        )


def run_defense_lineup(
    dataset: SyntheticImageDataset,
    attack_name: str,
    batch_size: int,
    num_neurons: int,
    lineup: tuple[str, ...],
    num_trials: int = 2,
    seed: int = 0,
    store: "SweepStore | None" = None,
    workers: int = 1,
    executor=None,
) -> DefenseLineupResult:
    """One panel of Fig. 5 (RTF) / Fig. 6 (CAH): PSNRs per transformation.

    With a :class:`~repro.experiments.SweepStore`, each defense arm's PSNR
    distribution is cached so interrupted lineups resume where they left
    off.  ``workers > 1`` (or an explicit ``executor``) evaluates the
    pending arms concurrently over a process pool with sharded, crash-safe
    persistence and identical results to the serial path.  A failed arm
    lands in :attr:`DefenseLineupResult.errors` with an empty distribution
    instead of killing the lineup.
    """
    store = store if store is not None else SweepStore()
    store.recover_shards()
    executor = executor if executor is not None else make_executor(workers)
    data_key = f"{dataset.name}:{dataset_fingerprint(dataset)}"
    distributions: dict[str, np.ndarray] = {}
    tasks = []
    arms: dict[str, str] = {}
    for defense_name in lineup:
        key = (
            f"fig56|{attack_name}|{data_key}|B{batch_size}"
            f"|n{num_neurons}|{defense_name}|t{num_trials}|s{seed}"
        )
        cached = store.get(key)
        if cached is not None:
            distributions[defense_name] = np.array(cached)
            continue
        arms[key] = defense_name
        tasks.append(
            (
                key,
                evaluate_attack_cell,
                {
                    "mode": "distribution",
                    "attack": attack_name,
                    "batch_size": batch_size,
                    "num_neurons": num_neurons,
                    "defense": defense_name,
                    "num_trials": num_trials,
                    "seed": seed,
                },
            )
        )
    errors: dict[str, dict] = {}
    executions = executor.run(tasks, store, shared={"dataset": dataset})
    for key, defense_name in arms.items():
        execution = executions[key]
        if is_failure(execution.result):
            distributions[defense_name] = np.array([])
            errors[defense_name] = execution.result["error"]
        else:
            distributions[defense_name] = np.array(execution.result)
    # Preserve the lineup's arm order regardless of cache/compute split.
    distributions = {
        name: distributions[name] for name in lineup if name in distributions
    }
    return DefenseLineupResult(
        attack=attack_name,
        dataset=dataset.name,
        batch_size=batch_size,
        num_neurons=num_neurons,
        distributions=distributions,
        errors=errors,
    )


def run_linear_lineup(
    dataset: SyntheticImageDataset,
    batch_size: int,
    lineup: tuple[str, ...] = FIG13_LINEUP,
    num_trials: int = 2,
    seed: int = 0,
) -> DefenseLineupResult:
    """One panel of Fig. 13: the linear-model attack per transformation."""
    distributions: dict[str, np.ndarray] = {}
    for defense_name in lineup:
        scores: list[float] = []
        for trial in range(num_trials):
            trial_seed = seed + 31 * trial
            result = run_linear_trial(
                dataset,
                batch_size,
                defense=defense_from_name(defense_name, seed=trial_seed),
                seed=trial_seed,
            )
            scores.extend(result.psnrs)
        distributions[defense_name] = np.array(scores)
    return DefenseLineupResult(
        attack="linear",
        dataset=dataset.name,
        batch_size=batch_size,
        num_neurons=0,
        distributions=distributions,
    )
