"""OASIS reproduction: offsetting active reconstruction attacks in FL.

Top-level package for the full reproduction of "OASIS: Offsetting Active
Reconstruction Attacks in Federated Learning" (ICDCS 2024).  Sub-packages:

- :mod:`repro.tensor` — numpy autograd engine (exact gradient algebra).
- :mod:`repro.nn` — layers, ResNet-18, losses, optimizers.
- :mod:`repro.data` — procedural ImageNet/CIFAR100 stand-ins, loaders.
- :mod:`repro.augment` — the paper's Eq. 2-5 image transformations.
- :mod:`repro.fl` — federated-learning simulator with dishonest servers.
- :mod:`repro.attacks` — RTF, CAH, and linear-model gradient inversion.
- :mod:`repro.defense` — the OASIS defense, analysis tools, baselines.
- :mod:`repro.metrics` — PSNR / SSIM / accuracy.
- :mod:`repro.experiments` — per-figure/table reproduction harnesses.
"""

__version__ = "1.0.0"
