"""Optimizers: SGD (with momentum) and Adam (with decoupled-style weight decay).

Table I of the paper trains ResNet-18 with Adam (lr 1e-3, weight decay 1e-5
for ImageNet, 1e-2 for CIFAR100); the FL server update of Eq. 1 is plain SGD
on averaged gradients.

Both optimizers are dual-mode (see :mod:`repro.tensor.backend`): the fused
mode performs every step with ``out=`` ufuncs into per-parameter scratch
buffers allocated once and reused for the life of the optimizer, replacing
the reference mode's per-step temporaries (``grad + wd*param``, ``m_hat``,
``v_hat``, the update product).  ``out=`` ufuncs round identically to their
allocating forms and the op *order* is replayed exactly, so a training
trajectory is bit-identical across modes (gated by the equivalence suite).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

import repro.tensor.backend as backend
from repro.nn.module import Parameter


class Optimizer:
    """Base class: holds the parameter list and the zero_grad/step protocol."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and L2 weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]
        self._scratch: list[np.ndarray | None] = [None] * len(self.parameters)

    def step(self) -> None:
        if not backend.FUSED:
            self._step_reference()
            return
        xp = backend.xp
        for i, (param, velocity) in enumerate(zip(self.parameters, self._velocity)):
            if param.grad is None:
                continue
            buf = self._scratch[i]
            if buf is None:
                buf = self._scratch[i] = np.empty_like(param.data)
            grad = param.grad
            if self.weight_decay:
                # Reference order: grad + weight_decay * param.data.
                xp.multiply(param.data, self.weight_decay, out=buf)
                xp.add(grad, buf, out=buf)
                grad = buf
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            xp.multiply(grad, self.lr, out=buf)
            xp.subtract(param.data, buf, out=param.data)

    def _step_reference(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with L2 weight decay folded into the gradient."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._scratch: list[tuple[np.ndarray, np.ndarray] | None] = (
            [None] * len(self.parameters)
        )

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        if not backend.FUSED:
            self._step_reference(bias1, bias2)
            return
        xp = backend.xp
        for i, (param, m, v) in enumerate(zip(self.parameters, self._m, self._v)):
            if param.grad is None:
                continue
            pair = self._scratch[i]
            if pair is None:
                pair = self._scratch[i] = (
                    np.empty_like(param.data), np.empty_like(param.data)
                )
            a, b = pair
            grad = param.grad
            if self.weight_decay:
                xp.multiply(param.data, self.weight_decay, out=a)
                xp.add(grad, a, out=a)
                grad = a
            # m = beta1*m + (1-beta1)*grad, replayed in reference op order.
            m *= self.beta1
            xp.multiply(grad, 1.0 - self.beta1, out=b)
            xp.add(m, b, out=m)
            # v = beta2*v + (1-beta2)*grad*grad.
            v *= self.beta2
            xp.multiply(grad, 1.0 - self.beta2, out=b)
            xp.multiply(b, grad, out=b)
            xp.add(v, b, out=v)
            # param -= lr*m_hat / (sqrt(v_hat) + eps), same op order as the
            # reference allocating chain.
            xp.divide(m, bias1, out=a)
            xp.multiply(a, self.lr, out=a)
            xp.divide(v, bias2, out=b)
            xp.sqrt(b, out=b)
            xp.add(b, self.eps, out=b)
            xp.divide(a, b, out=a)
            xp.subtract(param.data, a, out=param.data)

    def _step_reference(self, bias1: float, bias2: float) -> None:
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
