"""Standard neural-network layers built on the autograd engine.

The layer set covers everything needed by the OASIS evaluation: fully
connected layers (the attack surface of the malicious imprint layer),
convolutions/batch-norm/pooling for ResNet-18, and container modules.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

import repro.tensor.backend as backend
import repro.tensor.fused as fused
from repro.nn.init import bias_uniform, kaiming_uniform
from repro.nn.module import Module, Parameter, _bump_structure_generation
from repro.tensor import (
    Tensor,
    avg_pool2d,
    batch_norm,
    conv2d,
    global_avg_pool2d,
    max_pool2d,
)


def _default_rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    # repro-lint: disable=no-global-rng -- caller-convenience fallback for interactive use; every library path passes a fingerprint-seeded generator
    return rng if rng is not None else np.random.default_rng()


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``.

    The OASIS threat model centres on a *malicious* instance of this layer:
    the dishonest server overwrites ``weight``/``bias`` so that per-neuron
    gradients memorize individual inputs (paper Sec. III-A).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = _default_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(kaiming_uniform((out_features, in_features), rng))
        if bias:
            self.bias = Parameter(bias_uniform((out_features,), in_features, rng))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        if backend.FUSED and x.ndim == 2:
            return fused.linear(x, self.weight, self.bias)
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2d(Module):
    """2D convolution in NCHW layout with square kernels."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = _default_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(kaiming_uniform(shape, rng))
        if bias:
            fan_in = in_channels * kernel_size * kernel_size
            self.bias = Parameter(bias_uniform((out_channels,), fan_in, rng))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class BatchNorm2d(Module):
    """Batch normalization over (N, H, W) per channel, with running stats."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        return batch_norm(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Flatten(Module):
    def __init__(self, start_dim: int = 1) -> None:
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(self.start_dim)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    """Adaptive average pooling to 1x1, squeezed to (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return global_avg_pool2d(x)


class Sequential(Module):
    """Chain of modules applied in order; supports indexing and insertion."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: list[str] = []
        for i, module in enumerate(modules):
            self.add_module(str(i), module)

    def add_module(self, name: str, module: Module) -> None:
        setattr(self, f"layer_{name}", module)
        # Re-key registration under the plain name for stable state dicts.
        self._modules.pop(f"layer_{name}", None)
        self._modules[name] = module
        self._order.append(name)

    def insert(self, index: int, module: Module) -> None:
        """Insert ``module`` at position ``index`` (used for model surgery)."""
        name = f"inserted_{len(self._modules)}"
        self._modules[name] = module
        _bump_structure_generation()
        object.__setattr__(self, f"layer_{name}", module)
        self._order.insert(index, name)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self):
        return (self._modules[name] for name in self._order)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x


class MLP(Module):
    """Multi-layer perceptron with ReLU activations.

    Used as a lightweight stand-in model in unit tests and as the body of
    imprint-attacked models where a full ResNet is unnecessary.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = _default_rng(rng)
        layers: list[Module] = []
        for i, (n_in, n_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            layers.append(Linear(n_in, n_out, rng=rng))
            if i < len(sizes) - 2:
                layers.append(ReLU())
        self.body = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.flatten(1)
        return self.body(x)
