"""Neural-network library: modules, layers, models, losses, optimizers."""

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    MLP,
    ReLU,
    Sequential,
)
from repro.nn.losses import CrossEntropyLoss, LogisticLoss, MSELoss, one_hot
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.resnet import BasicBlock, ResNet, resnet18, small_cnn

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "Identity",
    "Flatten",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Sequential",
    "MLP",
    "CrossEntropyLoss",
    "MSELoss",
    "LogisticLoss",
    "one_hot",
    "Optimizer",
    "SGD",
    "Adam",
    "BasicBlock",
    "ResNet",
    "resnet18",
    "small_cnn",
]
