"""Module/Parameter abstractions mirroring ``torch.nn``.

Modules own named :class:`Parameter` leaves and named buffers (non-trainable
state such as batch-norm running statistics).  The federated-learning
simulator serializes models through :meth:`Module.state_dict` /
:meth:`Module.load_state_dict`, so both must round-trip exactly.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as a trainable leaf of a module."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network components.

    Subclasses assign :class:`Parameter`, :class:`Module` and numpy-array
    buffers as attributes; registration is automatic via ``__setattr__``.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable persistent state (e.g. running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name in self._buffers:
            # Read through the attribute so in-place replacement is visible.
            yield prefix + name, getattr(self, name)
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    # ------------------------------------------------------------------
    # Modes and gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Serialization (used by the FL server/client message exchange)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        for name, buffer in self.named_buffers():
            state[name] = buffer.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = []
        for name, value in state.items():
            if name in params:
                params[name].data = np.asarray(value, dtype=params[name].data.dtype).copy()
            else:
                if not self._load_buffer(name, value):
                    missing.append(name)
        if missing:
            raise KeyError(f"state entries not found in module: {missing}")

    def _load_buffer(self, dotted: str, value: np.ndarray) -> bool:
        parts = dotted.split(".")
        module: Module = self
        for part in parts[:-1]:
            if part not in module._modules:
                return False
            module = module._modules[part]
        leaf = parts[-1]
        if leaf not in module._buffers:
            return False
        buffer = getattr(module, leaf)
        np.copyto(buffer, value)
        return True

    def grad_dict(self) -> dict[str, np.ndarray]:
        """Return a name -> gradient mapping (zeros when grad is absent)."""
        grads = {}
        for name, param in self.named_parameters():
            if param.grad is None:
                grads[name] = np.zeros_like(param.data)
            else:
                grads[name] = param.grad.copy()
        return grads

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def num_parameters(self) -> int:
        return sum(param.size for param in self.parameters())
