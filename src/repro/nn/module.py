"""Module/Parameter abstractions mirroring ``torch.nn``.

Modules own named :class:`Parameter` leaves and named buffers (non-trainable
state such as batch-norm running statistics).  The federated-learning
simulator serializes models through :meth:`Module.state_dict` /
:meth:`Module.load_state_dict`, so both must round-trip exactly.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as a trainable leaf of a module."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


# Structure generation counter: bumped on every Parameter/Module
# registration anywhere in the process.  Each module's flattened
# named-parameter list is cached against this stamp, so the traversal
# (rebuilt string prefixes, nested generators) runs once per *structure*,
# not once per zero_grad/grad_dict call in the training hot loop —
# while any structural edit, even to a nested child, invalidates every
# ancestor's cache at the next lookup.
_STRUCTURE_GENERATION = 0


def _bump_structure_generation() -> None:
    """Invalidate every module's flattened-parameter cache.

    Call after mutating ``_parameters``/``_modules`` directly instead of
    through ``__setattr__`` (e.g. ``Sequential.insert``'s re-keying).
    """
    global _STRUCTURE_GENERATION
    _STRUCTURE_GENERATION += 1


class Module:
    """Base class for all neural-network components.

    Subclasses assign :class:`Parameter`, :class:`Module` and numpy-array
    buffers as attributes; registration is automatic via ``__setattr__``.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "training", True)
        object.__setattr__(self, "_flat_parameters", None)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        global _STRUCTURE_GENERATION
        if isinstance(value, Parameter):
            _STRUCTURE_GENERATION += 1
            self._parameters[name] = value
        elif isinstance(value, Module):
            _STRUCTURE_GENERATION += 1
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable persistent state (e.g. running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        if not prefix:
            yield from self._flat_named_parameters()
            return
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def _flat_named_parameters(self) -> list[tuple[str, Parameter]]:
        cached = self._flat_parameters
        if cached is not None and cached[0] == _STRUCTURE_GENERATION:
            return cached[1]
        flat: list[tuple[str, Parameter]] = []
        for name, param in self._parameters.items():
            flat.append((name, param))
        for name, module in self._modules.items():
            flat.extend(
                (name + "." + child_name, param)
                for child_name, param in module._flat_named_parameters()
            )
        object.__setattr__(
            self, "_flat_parameters", (_STRUCTURE_GENERATION, flat)
        )
        return flat

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self._flat_named_parameters():
            yield param

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name in self._buffers:
            # Read through the attribute so in-place replacement is visible.
            yield prefix + name, getattr(self, name)
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    # ------------------------------------------------------------------
    # Modes and gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Serialization (used by the FL server/client message exchange)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        for name, buffer in self.named_buffers():
            state[name] = buffer.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = []
        for name, value in state.items():
            if name in params:
                params[name].data = np.asarray(value, dtype=params[name].data.dtype).copy()
            else:
                if not self._load_buffer(name, value):
                    missing.append(name)
        if missing:
            raise KeyError(f"state entries not found in module: {missing}")

    def _load_buffer(self, dotted: str, value: np.ndarray) -> bool:
        parts = dotted.split(".")
        module: Module = self
        for part in parts[:-1]:
            if part not in module._modules:
                return False
            module = module._modules[part]
        leaf = parts[-1]
        if leaf not in module._buffers:
            return False
        buffer = getattr(module, leaf)
        np.copyto(buffer, value)
        return True

    def grad_dict(self, transfer: bool = False) -> dict[str, np.ndarray]:
        """Return a name -> gradient mapping (zeros when grad is absent).

        ``transfer=True`` moves gradient ownership to the caller instead of
        copying: a parameter whose gradient is an exclusively-owned buffer
        (see ``Tensor._accumulate``) hands over the array itself and drops
        its own reference, which both skips the copy and keeps the buffer
        out of the pool at the next ``zero_grad()``.  Values are identical
        either way; use it when the model's gradients are consumed exactly
        once per backward (the FL client-update chokepoint).
        """
        grads = {}
        for name, param in self.named_parameters():
            if param.grad is None:
                grads[name] = np.zeros_like(param.data)
            elif transfer and param._grad_owned:
                grads[name] = param.grad
                param.grad = None
                param._grad_owned = False
            else:
                grads[name] = param.grad.copy()
        return grads

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def num_parameters(self) -> int:
        return sum(param.size for param in self.parameters())
