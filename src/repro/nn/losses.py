"""Loss functions.

``CrossEntropyLoss`` is the loss used throughout the paper's experiments;
``LogisticLoss`` is the single-layer regression loss of the Sec. IV-D
linear-model gradient-inversion attack.
"""

from __future__ import annotations

import numpy as np

import repro.tensor.backend as backend
import repro.tensor.fused as fused
from repro.nn.module import Module
from repro.tensor import Tensor


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer labels as one-hot rows."""
    labels = np.asarray(labels, dtype=np.int64)
    encoded = np.zeros((labels.shape[0], num_classes))
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


class CrossEntropyLoss(Module):
    """Softmax cross entropy over logits with integer targets.

    ``reduction`` may be "mean" (default, matching the FL gradient averaging
    of paper Eq. 1) or "sum".
    """

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        if reduction not in ("mean", "sum"):
            raise ValueError(f"unsupported reduction: {reduction}")
        self.reduction = reduction

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        if backend.FUSED:
            return fused.cross_entropy(logits, targets, reduction=self.reduction)
        num_classes = logits.shape[-1]
        encoded = one_hot(np.asarray(targets), num_classes)
        log_probs = logits.log_softmax(axis=-1)
        per_sample = -(log_probs * Tensor(encoded)).sum(axis=-1)
        if self.reduction == "mean":
            return per_sample.mean()
        return per_sample.sum()


class MSELoss(Module):
    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        self.reduction = reduction

    def forward(self, prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
        if not isinstance(target, Tensor):
            target = Tensor(target)
        diff = prediction - target
        squared = diff * diff
        if self.reduction == "mean":
            return squared.mean()
        return squared.sum()


class LogisticLoss(Module):
    """Multi-class logistic-regression loss for the Sec. IV-D linear attack.

    Identical math to :class:`CrossEntropyLoss`; kept as a separate named
    class to mirror the paper's "trained with a logistic regression loss"
    description of the restrictive single-layer setting.
    """

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        self._inner = CrossEntropyLoss(reduction=reduction)

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return self._inner(logits, targets)
