"""ResNet architecture (He et al., 2016) used by the paper's Table I.

The paper trains ResNet-18 on an ImageNet 10-class subset and on CIFAR100.
We reproduce the exact topology (BasicBlock stacks [2, 2, 2, 2]) with a
configurable width multiplier so the CPU-only benchmark harness can train a
thin variant while the full-width model remains available and unit-tested.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Identity,
    Linear,
    Module,
    ReLU,
    Sequential,
)
from repro.tensor import Tensor


class BasicBlock(Module):
    """Two 3x3 convolutions with a residual (identity or 1x1-projection) path."""

    expansion = 1

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        return (out + self.shortcut(x)).relu()


class ResNet(Module):
    """CIFAR-style ResNet: 3x3 stem (no 7x7/maxpool) then four block stages."""

    def __init__(
        self,
        block_counts: Sequence[int],
        num_classes: int,
        in_channels: int = 3,
        base_width: int = 64,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        # repro-lint: disable=no-global-rng -- caller-convenience fallback for interactive use; every library path passes a fingerprint-seeded generator
        rng = rng if rng is not None else np.random.default_rng()
        widths = [base_width, base_width * 2, base_width * 4, base_width * 8]
        self.stem_conv = Conv2d(in_channels, widths[0], 3, stride=1, padding=1, bias=False, rng=rng)
        self.stem_bn = BatchNorm2d(widths[0])
        self.stem_relu = ReLU()

        stages: list[Module] = []
        channels = widths[0]
        for stage_index, (width, count) in enumerate(zip(widths, block_counts)):
            stride = 1 if stage_index == 0 else 2
            blocks: list[Module] = []
            for block_index in range(count):
                blocks.append(
                    BasicBlock(
                        channels,
                        width,
                        stride=stride if block_index == 0 else 1,
                        rng=rng,
                    )
                )
                channels = width
            stages.append(Sequential(*blocks))
        self.stages = Sequential(*stages)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(channels, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem_relu(self.stem_bn(self.stem_conv(x)))
        out = self.stages(out)
        out = self.pool(out)
        return self.fc(out)


def resnet18(
    num_classes: int,
    in_channels: int = 3,
    base_width: int = 64,
    rng: Optional[np.random.Generator] = None,
) -> ResNet:
    """The paper's evaluation model: ResNet-18 = BasicBlock x [2, 2, 2, 2].

    ``base_width`` scales every stage uniformly; 64 reproduces the standard
    11M-parameter model, smaller values give CPU-trainable variants with the
    same topology.
    """
    return ResNet([2, 2, 2, 2], num_classes, in_channels=in_channels, base_width=base_width, rng=rng)


def small_cnn(
    num_classes: int,
    in_channels: int = 3,
    width: int = 16,
    rng: Optional[np.random.Generator] = None,
) -> Module:
    """A compact conv net for fast integration tests and FL round smoke runs."""
    # repro-lint: disable=no-global-rng -- caller-convenience fallback for interactive use; every library path passes a fingerprint-seeded generator
    rng = rng if rng is not None else np.random.default_rng()
    from repro.nn.layers import Flatten, MaxPool2d

    return Sequential(
        Conv2d(in_channels, width, 3, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Conv2d(width, width * 2, 3, padding=1, rng=rng),
        ReLU(),
        GlobalAvgPool2d(),
        Linear(width * 2, num_classes, rng=rng),
    )
