"""Weight initialization schemes (Kaiming / Xavier / uniform fan-in).

All initializers take an explicit ``numpy.random.Generator`` so model
construction is deterministic under a fixed seed — a requirement for
reproducible federated-learning experiments.
"""

from __future__ import annotations

import numpy as np


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 2:  # Linear: (out, in)
        fan_out, fan_in = shape
    elif len(shape) == 4:  # Conv: (out, in, k, k)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        fan_in = fan_out = int(np.prod(shape))
    return fan_in, fan_out


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He-normal init for ReLU networks: std = sqrt(2 / fan_in)."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.standard_normal(shape) * std


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He-uniform init, the PyTorch default for Linear/Conv layers."""
    fan_in, _ = _fan_in_out(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform init for tanh/sigmoid networks."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def bias_uniform(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """PyTorch-style bias init: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    bound = 1.0 / np.sqrt(fan_in) if fan_in > 0 else 0.0
    return rng.uniform(-bound, bound, size=shape)
