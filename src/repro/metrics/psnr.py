"""Peak Signal-to-Noise Ratio, the paper's reconstruction-quality metric.

Higher PSNR = better reconstruction = more privacy leakage; OASIS aims to
*minimize* it (paper Sec. IV-A, Fig. 2).

A perfect reconstruction has zero MSE and unbounded PSNR.  The paper's
"perfect reconstruction" values sit in the 120-150 dB range because their
float32 pipeline leaves ~1e-7 relative error.  Our float64 pipeline is more
exact, so we floor the MSE at ``MSE_FLOOR`` (1e-14, i.e. float32-scale
squared error) to report the same ceiling the paper's instrumentation
would; see EXPERIMENTS.md.

Matching is vectorized: every reconstruction-vs-original score comes out of
one broadcasted pairwise-MSE matrix (:func:`pairwise_mse`), so scoring an
attack round costs one array reduction instead of an O(R x B) Python loop.
Two assignment conventions are supported: ``"best"`` scores each
reconstruction against whichever original it matches best (the default
throughout the paper), and ``"unique"`` computes an optimal one-to-one
assignment (the Hungarian convention used by the `breaching` framework's
evaluation, where duplicate reconstructions must not all claim the same
original).
"""

from __future__ import annotations

import numpy as np

MSE_FLOOR = 1e-14
PSNR_CEILING = 10.0 * np.log10(1.0 / MSE_FLOOR)  # 140 dB for data_range=1

# Entries of the GEMM-computed pairwise-MSE matrix below this value are
# recomputed with the exact direct difference: the quadratic expansion
# ``|a|^2 + |b|^2 - 2ab`` is fast (one BLAS matmul) but cancels
# catastrophically near zero, exactly where the MSE floor semantics matter.
_EXACT_RECOMPUTE_THRESHOLD = 1e-4


def mse(original: np.ndarray, reconstruction: np.ndarray) -> float:
    """Mean squared error between two images (any matching shape)."""
    original = np.asarray(original, dtype=np.float64)
    reconstruction = np.asarray(reconstruction, dtype=np.float64)
    if original.shape != reconstruction.shape:
        raise ValueError(
            f"shape mismatch: {original.shape} vs {reconstruction.shape}"
        )
    return float(np.mean((original - reconstruction) ** 2))


def psnr(
    original: np.ndarray,
    reconstruction: np.ndarray,
    data_range: float = 1.0,
    mse_floor: float = MSE_FLOOR,
) -> float:
    """PSNR in dB: ``10 log10(data_range^2 / MSE)``, MSE floored."""
    error = max(mse(original, reconstruction), mse_floor)
    return float(10.0 * np.log10(data_range ** 2 / error))


def _flatten_sets(
    originals: np.ndarray, reconstructions: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Validate and flatten both image sets to float64 ``(N, D)`` matrices."""
    originals = np.asarray(originals, dtype=np.float64)
    reconstructions = np.asarray(reconstructions, dtype=np.float64)
    # Explicit per-image dims (not reshape(N, -1)): numpy cannot infer -1
    # for a zero-length set, and empty sets are legal inputs here.
    flat_originals = originals.reshape(
        len(originals), int(np.prod(originals.shape[1:], dtype=np.int64))
    )
    flat_reconstructions = reconstructions.reshape(
        len(reconstructions),
        int(np.prod(reconstructions.shape[1:], dtype=np.int64)),
    )
    if (
        len(flat_originals)
        and len(flat_reconstructions)
        and flat_originals.shape[1] != flat_reconstructions.shape[1]
    ):
        raise ValueError(
            "originals and reconstructions have incompatible image sizes: "
            f"{originals.shape[1:]} vs {reconstructions.shape[1:]}"
        )
    return flat_originals, flat_reconstructions


def pairwise_mse(
    originals: np.ndarray, reconstructions: np.ndarray
) -> np.ndarray:
    """The ``(R, B)`` matrix of MSEs between reconstructions and originals.

    Entry ``[r, b]`` equals ``mse(originals[b], reconstructions[r])``.  The
    bulk of the matrix comes from the quadratic expansion
    ``(|a|^2 + |b|^2 - 2ab) / D`` — one BLAS matmul instead of an
    ``O(R x B x D)`` broadcasted difference — and every entry that lands
    below ``_EXACT_RECOMPUTE_THRESHOLD`` is then recomputed with the exact
    direct difference.  Near-zero errors are precisely where the expansion
    cancels catastrophically and where the ``MSE_FLOOR`` semantics matter
    (a perfect reconstruction must floor at the ceiling, not at GEMM
    round-off), so the refined entries match the scalar path bit-for-bit
    and the fast entries agree to ~1e-14 relative.
    """
    flat_originals, flat_reconstructions = _flatten_sets(
        originals, reconstructions
    )
    num_reconstructions = len(flat_reconstructions)
    num_originals = len(flat_originals)
    if num_reconstructions == 0 or num_originals == 0:
        return np.empty((num_reconstructions, num_originals))
    dim = flat_originals.shape[1]
    original_norms = np.einsum("ij,ij->i", flat_originals, flat_originals)
    reconstruction_norms = np.einsum(
        "ij,ij->i", flat_reconstructions, flat_reconstructions
    )
    out = (
        reconstruction_norms[:, None]
        + original_norms[None, :]
        - 2.0 * (flat_reconstructions @ flat_originals.T)
    ) / dim
    np.maximum(out, 0.0, out=out)
    for row, col in np.argwhere(out < _EXACT_RECOMPUTE_THRESHOLD):
        diff = flat_reconstructions[row] - flat_originals[col]
        out[row, col] = np.mean(diff * diff)
    return out


def pairwise_psnr(
    originals: np.ndarray,
    reconstructions: np.ndarray,
    data_range: float = 1.0,
    mse_floor: float = MSE_FLOOR,
) -> np.ndarray:
    """The ``(R, B)`` matrix of floored PSNRs (see :func:`pairwise_mse`)."""
    errors = np.maximum(pairwise_mse(originals, reconstructions), mse_floor)
    return 10.0 * np.log10(data_range ** 2 / errors)


def best_match_psnr(
    originals: np.ndarray,
    reconstruction: np.ndarray,
    data_range: float = 1.0,
) -> tuple[float, int]:
    """PSNR of ``reconstruction`` against its best-matching original.

    Active attacks emit reconstructions without knowing which batch element
    each corresponds to; following the `breaching` evaluation convention we
    score each reconstruction against the original it matches best.
    Returns (psnr, index of matched original).
    """
    if len(originals) == 0:
        raise ValueError(
            "cannot match a reconstruction against an empty set of originals"
        )
    scores = pairwise_psnr(
        originals, np.asarray(reconstruction)[None], data_range=data_range
    )[0]
    best = int(np.argmax(scores))
    return float(scores[best]), best


def _unique_assignment(scores: np.ndarray) -> np.ndarray:
    """Maximize total PSNR under a one-to-one reconstruction→original map.

    Returns an array of original indices per reconstruction row; rows left
    over when reconstructions outnumber originals get ``-1``.  Uses SciPy's
    Hungarian solver (the `breaching` convention) with a deterministic
    greedy fallback when SciPy is unavailable.
    """
    num_reconstructions, num_originals = scores.shape
    assigned = np.full(num_reconstructions, -1, dtype=np.int64)
    try:
        from scipy.optimize import linear_sum_assignment
    except ImportError:  # pragma: no cover - scipy is a declared dependency
        remaining = list(range(num_originals))
        order = np.argsort(-scores.max(axis=1, initial=-np.inf))
        for row in order:
            if not remaining:
                break
            best = max(remaining, key=lambda col: scores[row, col])
            assigned[row] = best
            remaining.remove(best)
        return assigned
    rows, cols = linear_sum_assignment(-scores)
    assigned[rows] = cols
    return assigned


def match_reconstructions(
    originals: np.ndarray,
    reconstructions: np.ndarray,
    data_range: float = 1.0,
    assignment: str = "best",
) -> list[tuple[int, float]]:
    """Score every reconstruction against the originals, vectorized.

    Returns a list of (matched original index, psnr) per reconstruction.

    ``assignment="best"`` (default) lets every reconstruction claim its
    highest-PSNR original, duplicates allowed — the paper's convention.
    ``assignment="unique"`` computes the Hungarian one-to-one assignment
    maximizing total PSNR (the `breaching` convention); reconstructions in
    excess of the batch size come back as ``(-1, nan)``.
    """
    if assignment not in ("best", "unique"):
        raise ValueError(
            f"unknown assignment {assignment!r}; choose 'best' or 'unique'"
        )
    if len(reconstructions) == 0:
        return []
    if len(originals) == 0:
        raise ValueError(
            "cannot match reconstructions against an empty set of originals"
        )
    scores = pairwise_psnr(originals, reconstructions, data_range=data_range)
    if assignment == "best":
        indices = np.argmax(scores, axis=1)
        return [
            (int(index), float(scores[row, index]))
            for row, index in enumerate(indices)
        ]
    indices = _unique_assignment(scores)
    return [
        (int(index), float(scores[row, index]) if index >= 0 else float("nan"))
        for row, index in enumerate(indices)
    ]


def average_attack_psnr(
    originals: np.ndarray,
    reconstructions: np.ndarray,
    data_range: float = 1.0,
) -> float:
    """The figures' headline number: mean best-match PSNR over reconstructions.

    Returns 0.0 when the attack produced no valid reconstructions (total
    failure — lower than any real PSNR, matching the paper's convention that
    lower is a weaker attack).
    """
    if len(reconstructions) == 0:
        return 0.0
    if len(originals) == 0:
        raise ValueError(
            "cannot score reconstructions against an empty set of originals"
        )
    scores = pairwise_psnr(originals, reconstructions, data_range=data_range)
    return float(np.mean(scores.max(axis=1)))


def per_image_best_psnr(
    originals: np.ndarray,
    reconstructions: np.ndarray,
    data_range: float = 1.0,
) -> np.ndarray:
    """For each *original*, the PSNR of the closest reconstruction.

    Measures worst-case per-sample leakage: an attacker only needs one good
    reconstruction of an image for that image's privacy to be lost.
    """
    if len(reconstructions) == 0:
        return np.zeros(len(originals))
    scores = pairwise_psnr(originals, reconstructions, data_range=data_range)
    return scores.max(axis=0)
