"""Peak Signal-to-Noise Ratio, the paper's reconstruction-quality metric.

Higher PSNR = better reconstruction = more privacy leakage; OASIS aims to
*minimize* it (paper Sec. IV-A, Fig. 2).

A perfect reconstruction has zero MSE and unbounded PSNR.  The paper's
"perfect reconstruction" values sit in the 120-150 dB range because their
float32 pipeline leaves ~1e-7 relative error.  Our float64 pipeline is more
exact, so we floor the MSE at ``MSE_FLOOR`` (1e-14, i.e. float32-scale
squared error) to report the same ceiling the paper's instrumentation
would; see EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

MSE_FLOOR = 1e-14
PSNR_CEILING = 10.0 * np.log10(1.0 / MSE_FLOOR)  # 140 dB for data_range=1


def mse(original: np.ndarray, reconstruction: np.ndarray) -> float:
    """Mean squared error between two images (any matching shape)."""
    original = np.asarray(original, dtype=np.float64)
    reconstruction = np.asarray(reconstruction, dtype=np.float64)
    if original.shape != reconstruction.shape:
        raise ValueError(
            f"shape mismatch: {original.shape} vs {reconstruction.shape}"
        )
    return float(np.mean((original - reconstruction) ** 2))


def psnr(
    original: np.ndarray,
    reconstruction: np.ndarray,
    data_range: float = 1.0,
    mse_floor: float = MSE_FLOOR,
) -> float:
    """PSNR in dB: ``10 log10(data_range^2 / MSE)``, MSE floored."""
    error = max(mse(original, reconstruction), mse_floor)
    return float(10.0 * np.log10(data_range ** 2 / error))


def best_match_psnr(
    originals: np.ndarray,
    reconstruction: np.ndarray,
    data_range: float = 1.0,
) -> tuple[float, int]:
    """PSNR of ``reconstruction`` against its best-matching original.

    Active attacks emit reconstructions without knowing which batch element
    each corresponds to; following the `breaching` evaluation convention we
    score each reconstruction against the original it matches best.
    Returns (psnr, index of matched original).
    """
    scores = [
        psnr(original, reconstruction, data_range=data_range)
        for original in originals
    ]
    best = int(np.argmax(scores))
    return scores[best], best


def match_reconstructions(
    originals: np.ndarray,
    reconstructions: np.ndarray,
    data_range: float = 1.0,
) -> list[tuple[int, float]]:
    """Score every reconstruction against its best-matching original.

    Returns a list of (matched original index, psnr) per reconstruction.
    """
    matches = []
    for recon in reconstructions:
        score, index = best_match_psnr(originals, recon, data_range=data_range)
        matches.append((index, score))
    return matches


def average_attack_psnr(
    originals: np.ndarray,
    reconstructions: np.ndarray,
    data_range: float = 1.0,
) -> float:
    """The figures' headline number: mean best-match PSNR over reconstructions.

    Returns 0.0 when the attack produced no valid reconstructions (total
    failure — lower than any real PSNR, matching the paper's convention that
    lower is a weaker attack).
    """
    if len(reconstructions) == 0:
        return 0.0
    scores = [
        best_match_psnr(originals, recon, data_range=data_range)[0]
        for recon in reconstructions
    ]
    return float(np.mean(scores))


def per_image_best_psnr(
    originals: np.ndarray,
    reconstructions: np.ndarray,
    data_range: float = 1.0,
) -> np.ndarray:
    """For each *original*, the PSNR of the closest reconstruction.

    Measures worst-case per-sample leakage: an attacker only needs one good
    reconstruction of an image for that image's privacy to be lost.
    """
    if len(reconstructions) == 0:
        return np.zeros(len(originals))
    out = np.empty(len(originals))
    for i, original in enumerate(originals):
        out[i] = max(
            psnr(original, recon, data_range=data_range)
            for recon in reconstructions
        )
    return out
