"""Classification accuracy metrics for the model-performance experiments."""

from __future__ import annotations

import numpy as np


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy from raw logits (N, K) vs integer labels (N,)."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError("logits must be (N, K)")
    predictions = logits.argmax(axis=1)
    return float((predictions == labels).mean())


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Top-k accuracy: fraction of samples whose label is in the k best logits."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    k = min(k, logits.shape[1])
    top = np.argpartition(-logits, k - 1, axis=1)[:, :k]
    hits = (top == labels[:, None]).any(axis=1)
    return float(hits.mean())
