"""Additional image-quality metrics: SSIM and simple perceptual stats."""

from __future__ import annotations

import numpy as np
from scipy import ndimage


def ssim(
    original: np.ndarray,
    reconstruction: np.ndarray,
    data_range: float = 1.0,
    window: int = 7,
) -> float:
    """Mean structural similarity over a uniform sliding window.

    Follows Wang et al. (2004) with uniform (rather than Gaussian) windows;
    channels are averaged.  Values in [-1, 1]; 1 means identical structure.
    """
    original = np.asarray(original, dtype=np.float64)
    reconstruction = np.asarray(reconstruction, dtype=np.float64)
    if original.shape != reconstruction.shape:
        raise ValueError("shape mismatch")
    if original.ndim == 2:
        original = original[None]
        reconstruction = reconstruction[None]

    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2
    scores = []
    size = (window, window)
    for a, b in zip(original, reconstruction):
        mu_a = ndimage.uniform_filter(a, size)
        mu_b = ndimage.uniform_filter(b, size)
        var_a = ndimage.uniform_filter(a * a, size) - mu_a ** 2
        var_b = ndimage.uniform_filter(b * b, size) - mu_b ** 2
        cov = ndimage.uniform_filter(a * b, size) - mu_a * mu_b
        numerator = (2 * mu_a * mu_b + c1) * (2 * cov + c2)
        denominator = (mu_a ** 2 + mu_b ** 2 + c1) * (var_a + var_b + c2)
        scores.append(np.mean(numerator / denominator))
    return float(np.mean(scores))


def image_entropy(image: np.ndarray, bins: int = 64) -> float:
    """Shannon entropy of the pixel histogram; crude texture measure."""
    histogram, _ = np.histogram(image, bins=bins, range=(0.0, 1.0), density=False)
    total = histogram.sum()
    if total == 0:
        return 0.0
    probabilities = histogram[histogram > 0] / total
    return float(-(probabilities * np.log2(probabilities)).sum())
