"""Evaluation metrics: PSNR (attack success), SSIM, accuracy."""

from repro.metrics.accuracy import accuracy, top_k_accuracy
from repro.metrics.image_quality import image_entropy, ssim
from repro.metrics.psnr import (
    MSE_FLOOR,
    PSNR_CEILING,
    average_attack_psnr,
    best_match_psnr,
    match_reconstructions,
    mse,
    pairwise_mse,
    pairwise_psnr,
    per_image_best_psnr,
    psnr,
)

__all__ = [
    "psnr",
    "mse",
    "pairwise_mse",
    "pairwise_psnr",
    "best_match_psnr",
    "match_reconstructions",
    "average_attack_psnr",
    "per_image_best_psnr",
    "MSE_FLOOR",
    "PSNR_CEILING",
    "ssim",
    "image_entropy",
    "accuracy",
    "top_k_accuracy",
]
