"""AST-based determinism & invariant linter for the OASIS reproduction.

The repo's trustworthiness rests on one property: serial, parallel, and
resumed sweeps are byte-identical.  PR 2-6 built that property by
hand-auditing every RNG draw, file write, and iteration order — and
repeatedly fixing violations after the fact (the dead
``TransformReplaceDefense`` seed, caller-RNG fallbacks, parent-only
attack registrations).  This package turns those tribal rules into
machine-checked ones:

- :mod:`repro.lint.engine` — the rule engine: :class:`Rule` /
  :class:`Violation`, per-file AST walks, line pragmas
  (``# repro-lint: disable=<rule> -- <why>``), and a rule registry
  mirroring the attack/defense registries.
- :mod:`repro.lint.rules` — the initial rule pack encoding the real
  invariants: ``no-global-rng``, ``no-raw-write``, ``no-wallclock``,
  ``sorted-iteration``, ``picklable-entry``, ``registry-knob-sync``.

Run it::

    PYTHONPATH=src python -m repro.lint src/          # full lib profile
    PYTHONPATH=src python -m repro.lint benchmarks/ --profile bench
    PYTHONPATH=src python -m repro.lint src/ --rules no-global-rng
    PYTHONPATH=src python -m repro.lint src/ --format json

Exit status is 1 when violations are found, 0 on a clean tree — CI runs
it next to the tier-1 suite, and ``tests/test_lint.py`` pins the
committed tree clean.
"""

from repro.lint.engine import (
    DuplicateRuleError,
    FileContext,
    LintRegistryError,
    PROFILES,
    Rule,
    UnknownRuleError,
    Violation,
    available_rules,
    collect_files,
    lint_paths,
    lint_source,
    parse_pragmas,
    register_rule,
    rule_by_name,
    rules_for,
    unregister_rule,
)
import repro.lint.rules  # noqa: F401  (registers the built-in rule pack)

__all__ = [
    "DuplicateRuleError",
    "FileContext",
    "LintRegistryError",
    "PROFILES",
    "Rule",
    "UnknownRuleError",
    "Violation",
    "available_rules",
    "collect_files",
    "lint_paths",
    "lint_source",
    "parse_pragmas",
    "register_rule",
    "rule_by_name",
    "rules_for",
    "unregister_rule",
    "main",
]

from repro.lint.cli import main  # noqa: E402  (CLI needs the rules loaded)
