"""CLI of the determinism linter: ``python -m repro.lint [paths] ...``.

Exit status: 0 on a clean tree, 1 when violations are found, 2 on usage
errors (argparse's convention).  ``--format json`` emits a single JSON
object (violations plus counts) for CI annotation tooling; the default
text format prints one ``path:line:col: rule: message`` line per finding,
matching compiler conventions so editors can jump to it.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.lint.engine import (
    LintRegistryError,
    PROFILES,
    available_rules,
    lint_paths,
    rule_by_name,
)


def _list_rules() -> str:
    lines = []
    for name in available_rules():
        rule = rule_by_name(name)
        profiles = ",".join(rule.profiles)
        lines.append(f"{name} [{profiles}] - {rule.description}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the linter CLI; returns the process exit status (0/1/2)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based determinism & invariant linter: checks that every "
            "RNG draw is seeded, writes are atomic, iteration orders are "
            "deterministic, executor entries pickle, and registry knob "
            "declarations match their constructors."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help=(
            "comma-separated rule names to run instead of the profile's "
            f"full set; registered: {', '.join(available_rules())}"
        ),
    )
    parser.add_argument(
        "--profile",
        choices=PROFILES,
        default="lib",
        help=(
            "rule profile: 'lib' enforces the full invariant set "
            "(src/repro), 'bench' relaxes the write/wallclock rules for "
            "benchmark harnesses, which still must seed every RNG draw "
            "(default: lib)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    rule_names = None
    if args.rules is not None:
        rule_names = [
            name.strip() for name in args.rules.split(",") if name.strip()
        ]
        if not rule_names:
            parser.error("--rules must name at least one rule")

    try:
        violations, checked = lint_paths(
            args.paths, profile=args.profile, rule_names=rule_names
        )
    except LintRegistryError as error:
        parser.error(str(error))
    except FileNotFoundError as error:
        parser.error(str(error))

    if args.output_format == "json":
        print(json.dumps(
            {
                "profile": args.profile,
                "checked_files": checked,
                "violations": [v.to_dict() for v in violations],
            },
            indent=2,
            sort_keys=True,
        ))
    else:
        for violation in violations:
            print(violation.format())
        summary = (
            f"{len(violations)} violation(s) in {checked} file(s) checked "
            f"(profile: {args.profile})"
        )
        if violations:
            print(summary, file=sys.stderr)
        else:
            print(f"clean: {summary}")
    return 1 if violations else 0
