"""Rule engine of the determinism & invariant linter.

The sweep engine's load-bearing guarantee — serial, parallel, and resumed
sweeps are *byte-identical* — rests on a handful of code-level invariants
(every RNG draw is fingerprint-seeded, every file write is atomic, nothing
iterates an unordered collection into a store or a seed derivation).  PR
2-6 enforced those invariants by hand-auditing each new module; this
engine turns them into machine-checked rules.

Architecture mirrors the attack/defense registries: each rule registers a
:class:`Rule` (name, checker, fix hint, which profiles it runs in) via
:func:`register_rule`, and every consumer — the ``python -m repro.lint``
CLI, the tier-1 meta-tests, CI — resolves rules through the registry.
Rules are either *file*-scoped (an AST walk over one parsed source file,
the default) or *tree*-scoped (run once per lint invocation — the
import-based ``registry-knob-sync`` check).

Suppression is per line and must be justified::

    handle = open(path, "r+b")  # repro-lint: disable=no-raw-write -- append-only log; compaction is the atomic rewrite

A pragma on a comment-only line applies to the next line (for statements
whose line would grow too long).  A pragma with no ``-- reason`` text, or
naming a rule that does not exist, is itself reported as a violation of
the reserved ``pragma`` rule — an undocumented or typo'd suppression is
exactly the kind of silent drift the linter exists to prevent.  The
``pragma`` rule cannot be disabled.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence

#: Rule profiles: ``lib`` is the full invariant set enforced over
#: ``src/repro``; ``bench`` is the relaxed profile for ``benchmarks/``,
#: which legitimately reads wall clocks and writes report files but must
#: still seed every RNG draw and keep entry points picklable.
PROFILES = ("lib", "bench")

#: Reserved rule name for problems with the pragmas themselves.
PRAGMA_RULE = "pragma"


class LintRegistryError(ValueError):
    """Base for rule-registry misuse errors."""


class UnknownRuleError(LintRegistryError):
    """The requested rule name is not registered."""


class DuplicateRuleError(LintRegistryError):
    """A rule name is already registered (pass ``replace=True`` to allow)."""


@dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, what is wrong, and how to fix it."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def format(self) -> str:
        """The CLI's one-line text rendering: ``path:line:col: rule: ...``."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"
        if self.hint:
            text += f" (fix: {self.hint})"
        return text

    def to_dict(self) -> dict:
        """JSON-serializable form for ``--format json`` and CI annotations."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass(frozen=True)
class Rule:
    """One registered invariant check.

    ``check`` is called with a :class:`FileContext` for file-scoped rules,
    or with the full list of contexts for ``scope="tree"`` rules (which
    run once per invocation, not once per file).  ``profiles`` names the
    lint profiles the rule participates in; ``hint`` is the one-line fix
    guidance appended to every violation the rule emits.
    """

    name: str
    check: Callable[..., Iterable[Violation]]
    description: str = ""
    hint: str = ""
    profiles: tuple[str, ...] = PROFILES
    scope: str = "file"  # "file" | "tree"


_REGISTRY: dict[str, Rule] = {}


def register_rule(rule: Rule, replace: bool = False) -> Rule:
    """Add ``rule`` to the registry; duplicates are an error unless replacing."""
    if not rule.name or not re.fullmatch(r"[a-z0-9][a-z0-9-]*", rule.name):
        raise LintRegistryError(
            f"rule name {rule.name!r} must be non-empty lower-case "
            "kebab-case (it appears in pragmas and CLI flags)"
        )
    if rule.name == PRAGMA_RULE:
        raise LintRegistryError(
            f"rule name {PRAGMA_RULE!r} is reserved for the engine's own "
            "pragma diagnostics"
        )
    if rule.scope not in ("file", "tree"):
        raise LintRegistryError(
            f"rule {rule.name!r} has unknown scope {rule.scope!r}; "
            "expected 'file' or 'tree'"
        )
    unknown_profiles = set(rule.profiles) - set(PROFILES)
    if unknown_profiles:
        raise LintRegistryError(
            f"rule {rule.name!r} names unknown profile(s) "
            f"{sorted(unknown_profiles)}; known: {', '.join(PROFILES)}"
        )
    if rule.name in _REGISTRY and not replace:
        raise DuplicateRuleError(
            f"rule {rule.name!r} is already registered; pass replace=True "
            "to overwrite it deliberately"
        )
    _REGISTRY[rule.name] = rule
    return rule


def unregister_rule(name: str) -> None:
    """Remove a rule (plugin teardown / test hygiene)."""
    if name not in _REGISTRY:
        raise UnknownRuleError(f"cannot unregister unknown rule {name!r}")
    del _REGISTRY[name]


def rule_by_name(name: str) -> Rule:
    """Look up a registered rule, with a helpful unknown-name error."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownRuleError(
            f"unknown rule {name!r}; registered rules: "
            f"{', '.join(available_rules())}"
        ) from None


def available_rules() -> tuple[str, ...]:
    """All registered rule names, in registration order."""
    return tuple(_REGISTRY)


def rules_for(
    profile: str = "lib", names: Optional[Sequence[str]] = None
) -> tuple[Rule, ...]:
    """The rules one invocation runs: the profile's set, or ``names``.

    Explicitly-requested names bypass the profile filter — asking for a
    rule by name means "run exactly this", even on a path whose profile
    would normally relax it.
    """
    if profile not in PROFILES:
        raise LintRegistryError(
            f"unknown lint profile {profile!r}; known: {', '.join(PROFILES)}"
        )
    if names is not None:
        return tuple(rule_by_name(name) for name in names)
    return tuple(
        rule for rule in _REGISTRY.values() if profile in rule.profiles
    )


# --------------------------------------------------------------------------
# Pragmas: "# repro-lint: disable=<rule>[,<rule>...] -- <why>"
# --------------------------------------------------------------------------

# The rules group is lazy: greedy matching would swallow an all-word
# " -- reason" tail into the rule list and report the pragma undocumented.
_PRAGMA_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\- ]*?)"
    r"(?:\s*--\s*(?P<reason>.*))?$"
)


@dataclass
class PragmaTable:
    """Parsed suppression pragmas of one file.

    ``disabled`` maps line numbers to the rule names suppressed there;
    ``problems`` collects malformed pragmas (no reason, unknown rule) as
    violations of the reserved ``pragma`` rule.
    """

    disabled: dict[int, set[str]] = field(default_factory=dict)
    problems: list[Violation] = field(default_factory=list)

    def suppressed(self, line: int, rule: str) -> bool:
        return rule in self.disabled.get(line, ())


def parse_pragmas(
    path: str, lines: Sequence[str], known_rules: Iterable[str]
) -> PragmaTable:
    """Scan source lines for suppression pragmas.

    An inline pragma applies to its own line; a pragma on a comment-only
    line applies to the next line (and its own, harmlessly).  Every
    pragma must name registered rules and carry a ``-- reason``; failures
    surface as ``pragma``-rule violations, which are never suppressible.
    """
    known = set(known_rules)
    table = PragmaTable()
    for number, text in enumerate(lines, start=1):
        match = _PRAGMA_PATTERN.search(text)
        if match is None:
            continue
        column = match.start() + 1
        names = [
            name.strip()
            for name in match.group("rules").split(",")
            if name.strip()
        ]
        reason = (match.group("reason") or "").strip()
        if not names:
            table.problems.append(Violation(
                rule=PRAGMA_RULE, path=path, line=number, col=column,
                message="pragma disables no rules",
                hint="write '# repro-lint: disable=<rule> -- <why>'",
            ))
            continue
        for name in names:
            if name == PRAGMA_RULE:
                table.problems.append(Violation(
                    rule=PRAGMA_RULE, path=path, line=number, col=column,
                    message="the 'pragma' rule cannot be disabled",
                    hint="fix the malformed pragma it points at instead",
                ))
            elif name not in known:
                table.problems.append(Violation(
                    rule=PRAGMA_RULE, path=path, line=number, col=column,
                    message=(
                        f"pragma names unknown rule {name!r}; registered: "
                        f"{', '.join(sorted(known))}"
                    ),
                    hint="fix the typo or drop the stale suppression",
                ))
        if not reason:
            table.problems.append(Violation(
                rule=PRAGMA_RULE, path=path, line=number, col=column,
                message=(
                    "suppression has no documented reason — an intentional "
                    "violation must say *why* it is intentional"
                ),
                hint="append ' -- <one-line justification>' to the pragma",
            ))
            continue  # undocumented pragmas do not suppress anything
        targets = [number]
        if text[: match.start()].strip() in ("", "#"):
            targets.append(number + 1)  # comment-only line: covers the next
        valid = {name for name in names if name in known}
        for target in targets:
            table.disabled.setdefault(target, set()).update(valid)
    return table


# --------------------------------------------------------------------------
# File contexts and the lint drivers.
# --------------------------------------------------------------------------


class FileContext:
    """One parsed source file handed to file-scoped rules.

    Carries the AST, raw lines, and the import table (alias -> module for
    plain imports, name -> "module.name" for from-imports) rules use to
    resolve dotted calls without re-walking the tree each.
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.imports: dict[str, str] = {}
        self.from_imports: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def violation(
        self, rule: Rule, node: ast.AST, message: str
    ) -> Violation:
        """A :class:`Violation` at ``node``, carrying the rule's fix hint."""
        return Violation(
            rule=rule.name,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=rule.hint,
        )


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
    known_rules: Optional[Iterable[str]] = None,
) -> list[Violation]:
    """Lint one source string with file-scoped ``rules`` (default: all).

    The entry point tests and editor integrations use; :func:`lint_paths`
    drives it per file.  Violations come back sorted by position.
    """
    if rules is None:
        rules = [rule for rule in rules_for("lib") if rule.scope == "file"]
    if known_rules is None:
        known_rules = available_rules()
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [Violation(
            rule="syntax", path=path,
            line=error.lineno or 1, col=(error.offset or 0) + 1 or 1,
            message=f"file does not parse: {error.msg}",
            hint="the linter (and the interpreter) need valid syntax",
        )]
    context = FileContext(path, source, tree)
    pragmas = parse_pragmas(path, context.lines, known_rules)
    violations = list(pragmas.problems)
    for rule in rules:
        if rule.scope != "file":
            continue
        for violation in rule.check(context):
            if not pragmas.suppressed(violation.line, violation.rule):
                violations.append(violation)
    violations.sort(key=lambda v: (v.line, v.col, v.rule))
    return violations


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand ``paths`` to a sorted list of ``.py`` files.

    Sorted traversal keeps lint output (and therefore CI diffs) stable
    across filesystems — the same discipline the sweep store applies to
    its own iteration order.
    """
    files: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        elif entry.suffix == ".py":
            files.append(entry)
        else:
            raise FileNotFoundError(
                f"lint target {entry} is neither a directory nor a .py file"
            )
    seen: set[Path] = set()
    unique: list[Path] = []
    for file in files:
        if file not in seen:
            seen.add(file)
            unique.append(file)
    return unique


def lint_paths(
    paths: Sequence[str | Path],
    profile: str = "lib",
    rule_names: Optional[Sequence[str]] = None,
) -> tuple[list[Violation], int]:
    """Lint files/directories; returns (violations, files_checked).

    File-scoped rules walk every collected file; tree-scoped rules run
    once with all contexts.  Violations are sorted by (path, line, col)
    so output is deterministic regardless of traversal details.
    """
    selected = rules_for(profile, rule_names)
    files = collect_files(paths)
    known = available_rules()
    violations: list[Violation] = []
    contexts: list[FileContext] = []
    for file in files:
        source = file.read_text(encoding="utf-8")
        file_violations = lint_source(
            source, path=str(file), rules=selected, known_rules=known
        )
        violations.extend(file_violations)
        if not any(v.rule == "syntax" for v in file_violations):
            contexts.append(
                FileContext(str(file), source, ast.parse(source))
            )
    for rule in selected:
        if rule.scope == "tree":
            violations.extend(rule.check(contexts))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations, len(files)
