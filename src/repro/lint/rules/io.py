"""``no-raw-write``: library file writes must be atomic.

The resumable sweep stores, golden files, and checkpoint artifacts all
rely on the crash contract of :mod:`repro.utils.checkpoint`: a reader
observes either the old complete file or the new complete file, never a
truncated half-write.  A bare ``open(path, "w")`` (or ``Path.write_text``,
or ``np.save`` straight to a path) reintroduces the torn-file window that
PR 3 removed — a process killed mid-write leaves a file that parses as
empty or corrupt and silently poisons the next resumed run.

Flagged:

- ``open(...)`` / ``os.fdopen(...)`` with a mode containing ``w``, ``a``,
  ``x``, or ``+``;
- ``<path>.write_text(...)`` / ``<path>.write_bytes(...)``;
- ``np.save`` / ``np.savez`` / ``np.savez_compressed`` / ``np.savetxt``.

Reads are never flagged.  The atomic writers themselves
(:mod:`repro.utils.checkpoint`) and deliberate append-log writers
(:class:`~repro.experiments.sweep.SweepStore`) carry documented pragmas —
the point is that every non-atomic write is visible and justified.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import (
    FileContext,
    Rule,
    Violation,
    dotted_name,
    register_rule,
)

_WRITE_MODE_CHARS = frozenset("wax+")
_NUMPY_WRITERS = frozenset({"save", "savez", "savez_compressed", "savetxt"})


def _mode_argument(node: ast.Call) -> "ast.expr | None":
    for keyword in node.keywords:
        if keyword.arg == "mode":
            return keyword.value
    if len(node.args) >= 2:
        return node.args[1]
    return None


def _is_write_mode(mode: "ast.expr | None") -> bool:
    if mode is None:
        return False  # bare open(path) reads
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return bool(_WRITE_MODE_CHARS & set(mode.value))
    return False  # dynamic modes are not statically decidable


def _check(context: FileContext) -> Iterator[Violation]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name in ("open", "os.fdopen") and _is_write_mode(
            _mode_argument(node)
        ):
            yield context.violation(RULE, node, (
                f"{name}() with a write mode is not crash-safe — a kill "
                "mid-write leaves a torn file"
            ))
            continue
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "write_text", "write_bytes"
        ):
            yield context.violation(RULE, node, (
                f".{node.func.attr}() writes in place without the "
                "temp-file + fsync + os.replace contract"
            ))
            continue
        if name is not None:
            parts = name.split(".")
            if (
                len(parts) == 2
                and parts[1] in _NUMPY_WRITERS
                and context.imports.get(parts[0]) == "numpy"
            ):
                yield context.violation(RULE, node, (
                    f"np.{parts[1]}() writes the target file in place; "
                    "serialize to an in-memory buffer and write atomically"
                ))


RULE = register_rule(Rule(
    name="no-raw-write",
    check=_check,
    description=(
        "library code writes files only through the atomic "
        "repro.utils.checkpoint helpers"
    ),
    hint=(
        "use repro.utils.checkpoint.atomic_write_text/atomic_write_lines/"
        "atomic_write_bytes (or save_state for arrays)"
    ),
    profiles=("lib",),
))
