"""The initial rule pack: the repo's real determinism invariants.

Importing this package registers every built-in rule with the engine's
registry (mirroring how :mod:`repro.attacks.registry` and
:mod:`repro.defense.registry` register their zoos at import time — and
for the same reason: every consumer, including subprocesses, sees the
same rule set by importing one module).

The rules, and the invariant each one guards:

- ``no-global-rng`` (:mod:`.rng`): every random draw is seeded and
  explicit — hidden global RNG state breaks serial/parallel/resumed
  byte-identity.
- ``no-raw-write`` (:mod:`.io`): library writes are atomic — a torn
  half-write would poison resumable stores and golden files.
- ``no-wallclock`` (:mod:`.wallclock`): cell execution and fingerprints
  never read the wall clock — a timestamp in a result or a key makes two
  identical runs differ.
- ``no-sim-wallclock`` (:mod:`.sim_wallclock`): the federation stack
  (``repro/fl``) derives all timing from the virtual clock — ``time`` /
  ``datetime`` are banned there outright, ``perf_counter`` included,
  where the general rule would allow interval timing.
- ``sorted-iteration`` (:mod:`.ordering`): unordered collections (sets,
  ``dict.keys()`` views, directory listings) are sorted before anything
  order-sensitive consumes them.
- ``picklable-entry`` (:mod:`.pickling`): callables crossing process
  boundaries are module-level, so parallel executors work under every
  start method.
- ``registry-knob-sync`` (:mod:`.registry_sync`): declared attack/defense
  knobs round-trip against their constructors, so a knob rename fails at
  lint time instead of mid-sweep.
- ``no-allocating-accumulate`` (:mod:`.accumulate`): gradient
  accumulation under ``src/repro/tensor`` stays in place (pooled
  buffers, ``out=``) — ``x.grad = x.grad + g`` churn is a silent perf
  regression the benchmarks would only catch at their gate.

Add-a-rule recipe: see EXPERIMENTS.md (mirrors add-an-attack /
add-a-defense).
"""

from repro.lint.rules import (  # noqa: F401  (imported for registration)
    accumulate,
    io,
    ordering,
    pickling,
    registry_sync,
    rng,
    sim_wallclock,
    wallclock,
)
