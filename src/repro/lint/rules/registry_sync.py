"""``registry-knob-sync``: declared knobs must round-trip the constructor.

The attack and defense registries declare each entry's knobs
(:class:`~repro.attacks.registry.AttackKnob`,
:class:`~repro.defense.registry.DefenseKnob`) so that sweeps validate
configuration up front.  But the declaration and the implementation can
drift: rename a constructor parameter without updating the spec (or vice
versa) and ``make_attack(name, **declared_defaults)`` raises ``TypeError``
— at sweep time, one cell deep into a grid, on whichever worker drew the
cell.  This rule performs the round-trip at lint time: every registered
spec is *built* with all of its declared knobs at their defaults, so a
mismatch fails the lint run (and the tier-1 mirror in
``tests/test_lint_registry_sync.py``) instead of a sweep.

This is the rule pack's one import-based (``scope="tree"``) rule: it runs
the real registries rather than reading the AST, because the factory
indirection (``factory(num_neurons, public_images, seed, **knobs)``
forwarding into a class ``__init__``) is exactly what a static signature
diff would miss.  Violations point at the ``name="..."`` line of the
registration in the registry source.
"""

from __future__ import annotations

import inspect
from typing import Iterator, Optional

from repro.lint.engine import Rule, Violation, register_rule


def _registration_site(module, name: str) -> tuple[str, int]:
    """(path, line) of the ``name="<name>"`` registration in ``module``."""
    try:
        path = inspect.getsourcefile(module) or "<unknown>"
        source, start = inspect.getsourcelines(module)
    except (OSError, TypeError):  # pragma: no cover - frozen/builtin module
        return getattr(module, "__file__", "<unknown>") or "<unknown>", 1
    needle = f'name="{name}"'
    for offset, line in enumerate(source):
        if needle in line:
            return path, start + offset
    return path, 1


def _violation(module, name: str, kind: str, error: Exception,
               hint: str) -> Violation:
    path, line = _registration_site(module, name)
    return Violation(
        rule="registry-knob-sync", path=path, line=line, col=1,
        message=(
            f"{kind} {name!r}: building with all declared knob defaults "
            f"failed ({type(error).__name__}: {error}) — the declared "
            "knobs no longer match the constructor"
        ),
        hint=hint,
    )


def _check_attacks() -> Iterator[Violation]:
    from repro.attacks import registry as attacks

    for name in attacks.available_attacks():
        spec = attacks.attack_spec(name)
        knobs = {knob.name: knob.default for knob in spec.knobs}
        try:
            # public_images=None skips calibration: construction is the
            # only thing under test, and it must accept every declared
            # knob by its declared name.
            attacks.make_attack(
                name, num_neurons=6, public_images=None, seed=0, **knobs
            )
        except Exception as error:  # noqa: BLE001 - any failure is drift
            yield _violation(
                attacks, name, "attack", error,
                "align AttackKnob names/defaults with the attack class "
                "__init__ (or update the factory)",
            )


def _check_defenses() -> Iterator[Violation]:
    from repro.defense import registry as defenses

    for name in defenses.available_defenses():
        spec = defenses.defense_spec(name)
        knobs = {knob.name: knob.default for knob in spec.knobs}
        try:
            defenses.make_defense(name, **knobs)
        except Exception as error:  # noqa: BLE001 - any failure is drift
            yield _violation(
                defenses, name, "defense", error,
                "align DefenseKnob names/defaults with the defense factory "
                "signature",
            )


def _check(contexts) -> Iterator[Violation]:
    try:
        yield from _check_attacks()
        yield from _check_defenses()
    except ImportError as error:
        # The registries need numpy; a lint environment without it can
        # still run every AST rule, but must not pretend this one passed.
        yield Violation(
            rule="registry-knob-sync", path="<registry>", line=1, col=1,
            message=f"cannot import the registries to verify: {error}",
            hint="run the linter in an environment with the repo's deps",
        )


RULE = register_rule(Rule(
    name="registry-knob-sync",
    check=_check,
    description=(
        "every registered attack/defense builds with its declared knob "
        "defaults — knob renames fail at lint time, not sweep time"
    ),
    hint="keep registry knob declarations in sync with constructors",
    profiles=("lib", "bench"),
    scope="tree",
))
