"""``no-wallclock``: cell execution and fingerprints never read the clock.

A sweep cell's result — and the fingerprint that keys its store entry and
seeds its RNG streams — must be a pure function of configuration.  One
``time.time()`` folded into a result dict or a derived seed makes two
byte-identical runs diverge, which the golden suite would catch hours
later with no pointer to the cause.

Flagged: ``time.time`` / ``time.time_ns``, ``datetime.now`` / ``utcnow``
/ ``today``, ``date.today`` (dotted or from-imported).

Deliberately *not* flagged: ``time.perf_counter`` / ``monotonic`` — the
executors use interval timing for progress reporting and benchmarks, and
elapsed seconds are reported, never stored in cell results or hashed into
keys.  (If a timing ever needs to ride in a persisted artifact, stamp it
outside the deterministic path.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import (
    FileContext,
    Rule,
    Violation,
    dotted_name,
    register_rule,
)

_TIME_FUNCTIONS = frozenset({"time", "time_ns"})
_DATETIME_METHODS = frozenset({"now", "utcnow", "today"})


def _check(context: FileContext) -> Iterator[Violation]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        parts = name.split(".")
        root, leaf = parts[0], parts[-1]

        # time.time() / time.time_ns() via "import time".
        if (
            len(parts) == 2
            and context.imports.get(root) == "time"
            and leaf in _TIME_FUNCTIONS
        ):
            yield context.violation(RULE, node, (
                f"time.{leaf}() reads the wall clock — results must be "
                "pure functions of configuration"
            ))
            continue

        # datetime.now()/utcnow()/today(), date.today() — whether the
        # name came from "import datetime" (datetime.datetime.now) or
        # "from datetime import datetime" (datetime.now).
        if leaf in _DATETIME_METHODS and len(parts) >= 2:
            base = ".".join(parts[:-1])
            origin = context.from_imports.get(base, context.imports.get(base))
            if origin in ("datetime.datetime", "datetime.date") or (
                context.imports.get(root) == "datetime" and len(parts) == 3
            ):
                yield context.violation(RULE, node, (
                    f"{name}() reads the wall clock — a timestamp in a "
                    "result or fingerprint breaks byte-identity"
                ))
                continue

        # from time import time / time_ns.
        origin = context.from_imports.get(name)
        if origin is not None:
            module, _, imported = origin.rpartition(".")
            if module == "time" and imported in _TIME_FUNCTIONS:
                yield context.violation(RULE, node, (
                    f"{name}() (time.{imported}) reads the wall clock"
                ))


RULE = register_rule(Rule(
    name="no-wallclock",
    check=_check,
    description=(
        "no wall-clock reads (time.time, datetime.now) in deterministic "
        "library paths; perf_counter interval timing is fine"
    ),
    hint=(
        "derive values from configuration; for intervals use "
        "time.perf_counter, and stamp artifacts outside the cell path"
    ),
    profiles=("lib",),
))
