"""``sorted-iteration``: order unordered collections before consuming them.

Store keys, fingerprints, and seed derivations must not depend on hash
randomization or filesystem order.  Iterating a ``set`` (iteration order
varies per process under ``PYTHONHASHSEED``), a ``dict.keys()`` view
(order encodes invisible insertion history), or a directory listing
(``os.listdir``/``glob`` order is filesystem-dependent) into anything
order-sensitive silently breaks byte-identity between two runs of the
same configuration — the exact class of bug the PR-3 golden suite exists
to catch, found here at write time instead.

Flagged consumption sites: ``for`` loops, comprehension iterables, and
materializers (``list``/``tuple``/``enumerate``/``iter``/``.join``) whose
operand is a set literal/comprehension, a ``set()``/``frozenset()`` call,
a ``.keys()`` call, a directory listing (``os.listdir``, ``glob.glob``,
``.iterdir()``, ``.glob()``, ``.rglob()``), or a local name bound to one
of those.  Wrapping the operand in ``sorted(...)`` resolves it.

Order-insensitive reductions (``len``, ``sum``, ``min``, ``max``,
``any``, ``all``) and membership tests are deliberately not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import (
    FileContext,
    Rule,
    Violation,
    dotted_name,
    register_rule,
)

_UNORDERED_ATTR_CALLS = frozenset({
    "keys", "iterdir", "glob", "rglob",
})
_UNORDERED_DOTTED_CALLS = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})
_MATERIALIZERS = frozenset({"list", "tuple", "enumerate", "iter"})


def _producer_kind(node: ast.AST, bound: dict[str, str]) -> Optional[str]:
    """What unordered thing ``node`` evaluates to, or None."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Name):
        return bound.get(node.id)
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("set", "frozenset"):
            return f"a {name}()"
        if name in _UNORDERED_DOTTED_CALLS:
            return f"{name}() (filesystem order)"
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _UNORDERED_ATTR_CALLS
        ):
            if node.func.attr == "keys":
                return ".keys() (insertion-order view)"
            return f".{node.func.attr}() (filesystem order)"
    return None


class _ScopeWalker:
    """Walk one scope's statements in order, tracking set-valued names."""

    def __init__(self, context: FileContext, rule: Rule) -> None:
        self.context = context
        self.rule = rule
        self.violations: list[Violation] = []

    def walk(self, body: list[ast.stmt], bound: dict[str, str]) -> None:
        for statement in body:
            self._statement(statement, bound)

    def _statement(self, node: ast.stmt, bound: dict[str, str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.walk(node.body, {})  # fresh scope, fresh bindings
            return
        if isinstance(node, ast.ClassDef):
            self.walk(node.body, {})
            return
        # Track simple name bindings before examining uses, except for
        # loops, whose iterable is consumed *before* the target binds.
        if isinstance(node, ast.For):
            self._consume(node.iter, bound, "for-loop")
            self._expressions(node.iter, bound)
            for child in node.body + node.orelse:
                self._statement(child, bound)
            return
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and (
            isinstance(node.targets[0], ast.Name)
        ):
            self._expressions(node.value, bound)
            kind = _producer_kind(node.value, bound)
            if kind is not None:
                bound[node.targets[0].id] = kind
            else:
                bound.pop(node.targets[0].id, None)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._statement(child, bound)
            elif isinstance(child, ast.expr):
                self._expressions(child, bound)

    def _expressions(self, node: ast.expr, bound: dict[str, str]) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, (ast.ListComp, ast.SetComp, ast.DictComp,
                                ast.GeneratorExp)):
                for generator in sub.generators:
                    self._consume(generator.iter, bound, "comprehension")
            elif isinstance(sub, ast.Call):
                name = dotted_name(sub.func)
                if name in _MATERIALIZERS and sub.args:
                    self._consume(sub.args[0], bound, f"{name}()")
                elif (
                    isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "join"
                    and sub.args
                ):
                    self._consume(sub.args[0], bound, ".join()")

    def _consume(
        self, node: ast.expr, bound: dict[str, str], where: str
    ) -> None:
        kind = _producer_kind(node, bound)
        if kind is not None:
            self.violations.append(self.context.violation(
                self.rule, node,
                f"{where} iterates {kind} without sorted() — iteration "
                "order is not deterministic across runs",
            ))


def _check(context: FileContext) -> Iterator[Violation]:
    walker = _ScopeWalker(context, RULE)
    walker.walk(context.tree.body, {})
    yield from walker.violations


RULE = register_rule(Rule(
    name="sorted-iteration",
    check=_check,
    description=(
        "sets, dict.keys() views, and directory listings are sorted "
        "before iteration feeds anything order-sensitive"
    ),
    hint="wrap the iterable in sorted(...)",
    profiles=("lib", "bench"),
))
