"""``no-allocating-accumulate``: gradient accumulation must not allocate.

The tensor core's backward pass runs once per graph node per training
step; inside ``src/repro/tensor`` the pattern

::

    x.grad = x.grad + contribution

allocates a fresh array on *every* contribution — the exact allocation
churn the PR-10 acceleration removed by pooling gradient buffers and
accumulating with ``np.add(current, grad, out=current)`` (see
``Tensor._accumulate`` and DESIGN.md "The tensor core").  Reintroducing
an allocating accumulate in the hot path is a silent performance
regression the benchmarks would only catch at their gate, hours from the
edit; this rule catches it at lint time, in the diff.

The rule is deliberately narrow and path-scoped like
``no-sim-wallclock``: it only fires under ``src/repro/tensor``, and only
on an assignment to a ``.grad`` attribute whose right-hand side is an
``Add`` with that same attribute as an operand (either side — ``g +
x.grad`` allocates just the same).  The one legitimate occurrence, the
reference-kernel branch of ``Tensor._accumulate`` that preserves the
pre-acceleration graph as the bench baseline and equivalence oracle,
carries a pragma explaining itself.

Augmented assignment (``x.grad += g``) is *not* flagged: on an ndarray
it lowers to in-place ``np.add`` and is precisely the fix.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import (
    FileContext,
    Rule,
    Violation,
    register_rule,
)


def _in_tensor_tree(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return "repro/tensor/" in normalized or normalized.endswith("repro/tensor")


def _check(context: FileContext) -> Iterator[Violation]:
    if not _in_tensor_tree(context.path):
        return
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.BinOp):
            continue
        if not isinstance(node.value.op, ast.Add):
            continue
        for target in node.targets:
            if not (isinstance(target, ast.Attribute) and target.attr == "grad"):
                continue
            target_src = ast.unparse(target)
            operands = (node.value.left, node.value.right)
            if any(ast.unparse(operand) == target_src for operand in operands):
                yield context.violation(RULE, node, (
                    f"{target_src} = {target_src} + ... allocates a fresh "
                    "gradient array per contribution in the backward hot "
                    "path"
                ))
                break


RULE = register_rule(Rule(
    name="no-allocating-accumulate",
    check=_check,
    description=(
        "src/repro/tensor never accumulates gradients by reassignment "
        "(x.grad = x.grad + g) — backward-pass allocation churn is what "
        "the pooled-buffer accumulate exists to avoid"
    ),
    hint=(
        "accumulate in place: np.add(x.grad, g, out=x.grad) into an "
        "owned/pooled buffer (see Tensor._accumulate), or x.grad += g"
    ),
    profiles=("lib",),
))
