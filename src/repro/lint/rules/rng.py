"""``no-global-rng``: every random draw must be seeded and explicit.

The byte-identity guarantee (serial == parallel == resumed sweeps) holds
because every stochastic component draws from a generator derived via
:mod:`repro.utils.rng` from a configuration fingerprint.  Three patterns
silently break that:

- ``np.random.<fn>(...)`` module-level calls (``np.random.normal``,
  ``np.random.seed``, ...) share one hidden global ``RandomState`` whose
  stream depends on every other consumer and on execution order.
- stdlib ``random.<fn>(...)`` calls share the module-global Mersenne
  twister the same way.
- ``default_rng()`` / ``SeedSequence()`` / ``Random()`` *without* a seed
  pull OS entropy — two runs of the same cell produce different results.

Seeded construction (``np.random.default_rng(seed)``) is allowed: the
stream is then a pure function of its arguments, and
:func:`repro.utils.rng.rng_for` / :func:`~repro.utils.rng.derive_seed`
are the preferred way to obtain those arguments.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import (
    FileContext,
    Rule,
    Violation,
    dotted_name,
    register_rule,
)

# np.random attributes that are explicit constructors (fine to call with
# arguments), not draws from the hidden module-global RandomState.
_NP_RANDOM_CONSTRUCTORS = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "RandomState", "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

# Constructors that are nondeterministic when called with no arguments
# (they fall back to OS entropy).
_UNSEEDED_SUSPECTS = frozenset({
    "default_rng", "SeedSequence", "RandomState", "Random",
})


def _numpy_random_leaf(context: FileContext, name: str) -> "str | None":
    """The ``<fn>`` of an ``np.random.<fn>`` dotted chain, else None."""
    parts = name.split(".")
    if len(parts) < 3 or parts[-2] != "random":
        return None
    root = ".".join(parts[:-2])
    if context.imports.get(root) == "numpy" or root == "numpy":
        return parts[-1]
    return None


def _stdlib_random_leaf(context: FileContext, name: str) -> "str | None":
    """The ``<fn>`` of a stdlib ``random.<fn>`` chain, else None."""
    parts = name.split(".")
    if len(parts) != 2:
        return None
    if context.imports.get(parts[0]) == "random":
        return parts[1]
    return None


def _check(context: FileContext) -> Iterator[Violation]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        unseeded = not node.args and not node.keywords

        leaf = _numpy_random_leaf(context, name)
        if leaf is not None:
            if leaf not in _NP_RANDOM_CONSTRUCTORS:
                yield context.violation(RULE, node, (
                    f"np.random.{leaf}() draws from numpy's hidden global "
                    "RandomState — its stream depends on every other "
                    "consumer and on execution order"
                ))
                continue
            if leaf in _UNSEEDED_SUSPECTS and unseeded:
                yield context.violation(RULE, node, (
                    f"np.random.{leaf}() without a seed draws OS entropy — "
                    "two runs of the same configuration will differ"
                ))
            continue

        leaf = _stdlib_random_leaf(context, name)
        if leaf is not None:
            if leaf in ("Random", "SystemRandom"):
                if leaf == "SystemRandom" or unseeded:
                    yield context.violation(RULE, node, (
                        f"random.{leaf}() without a seed is OS-entropy "
                        "nondeterminism"
                    ))
            else:
                yield context.violation(RULE, node, (
                    f"random.{leaf}() uses the stdlib's module-global "
                    "Mersenne twister — hidden shared state"
                ))
            continue

        # Bare names imported from numpy.random / random
        # (``from numpy.random import default_rng``).
        origin = context.from_imports.get(name)
        if origin is None:
            continue
        module, _, imported = origin.rpartition(".")
        if module == "numpy.random":
            if imported not in _NP_RANDOM_CONSTRUCTORS:
                yield context.violation(RULE, node, (
                    f"{name}() (numpy.random.{imported}) draws from the "
                    "hidden global RandomState"
                ))
            elif imported in _UNSEEDED_SUSPECTS and unseeded:
                yield context.violation(RULE, node, (
                    f"{name}() without a seed draws OS entropy — "
                    "two runs of the same configuration will differ"
                ))
        elif module == "random":
            if imported in ("Random", "SystemRandom"):
                if imported == "SystemRandom" or unseeded:
                    yield context.violation(RULE, node, (
                        f"{name}() without a seed is OS-entropy "
                        "nondeterminism"
                    ))
            else:
                yield context.violation(RULE, node, (
                    f"{name}() (random.{imported}) uses the stdlib's "
                    "module-global Mersenne twister"
                ))


RULE = register_rule(Rule(
    name="no-global-rng",
    check=_check,
    description=(
        "no module-global RNG calls and no unseeded generator "
        "construction; seeds flow through repro.utils.rng"
    ),
    hint=(
        "thread an explicit generator from repro.utils.rng.rng_for/"
        "derive_seed (or seed the constructor)"
    ),
    profiles=("lib", "bench"),
))
