"""``no-sim-wallclock``: the federation stack runs on the virtual clock only.

:mod:`repro.fl` is a discrete-event simulation — every duration, deadline,
and arrival tick derives from :class:`repro.fl.engine.VirtualClock`.  A
single host-clock read in that tree desynchronizes simulated time from
event order, and unlike the fingerprint hazards ``no-wallclock`` guards
against, even *interval* timing is wrong here: a ``perf_counter`` delta
measures the host, not the federation, so stragglers would depend on the
machine's load instead of the scenario's traces.

Accordingly this rule is stricter than ``no-wallclock`` where it applies
(any file under ``repro/fl``) and silent everywhere else: importing
``time`` or ``datetime`` at all is flagged, as is any call resolved to
them — ``perf_counter`` and ``monotonic`` included.  Benchmarks and the
sweep executors live outside ``repro/fl`` and keep their interval timing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import (
    FileContext,
    Rule,
    Violation,
    dotted_name,
    register_rule,
)

_BANNED_MODULES = ("time", "datetime")


def _in_fl_tree(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return "repro/fl/" in normalized or normalized.endswith("repro/fl")


def _check(context: FileContext) -> Iterator[Violation]:
    if not _in_fl_tree(context.path):
        return
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _BANNED_MODULES:
                    yield context.violation(RULE, node, (
                        f"import {alias.name}: repro.fl derives all timing "
                        "from the virtual clock; the host clock (even "
                        "perf_counter) is banned here"
                    ))
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if node.level == 0 and root in _BANNED_MODULES:
                yield context.violation(RULE, node, (
                    f"from {node.module} import ...: repro.fl derives all "
                    "timing from the virtual clock; the host clock is "
                    "banned here"
                ))
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None:
                continue
            root = name.split(".")[0]
            origin = context.imports.get(root) or context.from_imports.get(
                name, context.from_imports.get(root)
            )
            if origin and origin.split(".")[0] in _BANNED_MODULES:
                yield context.violation(RULE, node, (
                    f"{name}() resolves to a host-clock module; use "
                    "repro.fl.engine.VirtualClock ticks instead"
                ))


RULE = register_rule(Rule(
    name="no-sim-wallclock",
    check=_check,
    description=(
        "repro/fl files derive all timing from the virtual clock — "
        "time/datetime imports and calls (perf_counter included) are "
        "banned in the federation stack"
    ),
    hint=(
        "express durations in VirtualClock ticks (repro.fl.engine.ticks); "
        "host-side interval timing belongs in benchmarks, outside repro/fl"
    ),
    profiles=("lib",),
))
