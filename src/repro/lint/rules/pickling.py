"""``picklable-entry``: executor entry points must be module-level.

The sweep executors ship ``(key, fn, payload)`` tasks to worker
processes, and under the ``spawn`` start method (the default off Linux)
every callable crossing that boundary is pickled by qualified name.  A
``lambda`` or a function defined inside another function pickles on no
platform — and the failure is deferred and environment-dependent: the
serial path works, Linux ``fork`` works, and the macOS/Windows CI matrix
dies with an opaque ``PicklingError``.  PR 3 hit exactly this (the
``runner.evaluate_attack_cell`` module-level entry exists because of it);
PR 5 hit the registration variant (a parent-only registered defense
invisible to spawned workers).

Flagged: a ``lambda``, or a name whose only definition in the file is
nested inside another function, passed as

- the ``target=`` keyword of a ``Process(...)``-style call, or
- the first argument of ``.submit(...)`` / ``.map(...)`` /
  ``.apply_async(...)`` / ``.run_in_executor(...)`` style dispatch calls.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Rule, Violation, register_rule

_DISPATCH_ATTRS = frozenset({
    "submit", "map", "map_async", "apply_async", "starmap",
    "starmap_async", "run_in_executor", "imap", "imap_unordered",
})


def _module_level_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(node.name)
    return names


def _nested_def_names(tree: ast.Module) -> set[str]:
    nested: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(node):
                if inner is node:
                    continue
                if isinstance(inner, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    nested.add(inner.name)
    return nested


def _check(context: FileContext) -> Iterator[Violation]:
    module_level = _module_level_names(context.tree)
    nested = _nested_def_names(context.tree) - module_level
    # Names imported at module level resolve by qualified name too.
    importable = (
        module_level | set(context.imports) | set(context.from_imports)
    )

    def candidate(value: ast.expr, where: str):
        if isinstance(value, ast.Lambda):
            return context.violation(RULE, value, (
                f"lambda passed as {where} cannot cross a process "
                "boundary (lambdas do not pickle)"
            ))
        if (
            isinstance(value, ast.Name)
            and value.id in nested
            and value.id not in importable
        ):
            return context.violation(RULE, value, (
                f"{value.id!r} passed as {where} is defined inside another "
                "function — closures do not pickle under the spawn start "
                "method"
            ))
        return None

    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        for keyword in node.keywords:
            if keyword.arg == "target":
                violation = candidate(keyword.value, "a Process target")
                if violation is not None:
                    yield violation
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _DISPATCH_ATTRS
            and node.args
        ):
            violation = candidate(
                node.args[0], f"an executor .{node.func.attr}() callable"
            )
            if violation is not None:
                yield violation


RULE = register_rule(Rule(
    name="picklable-entry",
    check=_check,
    description=(
        "callables handed to executors/mp.Process are module-level, "
        "never lambdas or closures (spawn start method pickles by name)"
    ),
    hint=(
        "move the entry point to module level, like "
        "repro.experiments.runner.evaluate_attack_cell"
    ),
    profiles=("lib", "bench"),
))
