"""Federated learning simulator: clients, servers, rounds, aggregation."""

from repro.fl.aggregators import (
    Aggregator,
    CoordinateMedianAggregator,
    FedAvgAggregator,
    MaskedSumAggregator,
    RoundBuffer,
    TrimmedMeanAggregator,
    flat_spec,
    flatten_updates,
    make_aggregator,
    unflatten_vector,
)
from repro.fl.client import Client
from repro.fl.gradients import (
    average_gradients,
    clip_gradient_dict,
    compute_batch_gradients,
    compute_defended_update,
    per_sample_gradients,
)
from repro.fl.messages import GradientUpdate, ModelBroadcast, RoundRecord
from repro.fl.server import DishonestServer, Server
from repro.fl.simulator import (
    FederatedSimulation,
    FederationConfig,
    dirichlet_partition_indices,
    partition_dataset,
    partition_dataset_dirichlet,
)

__all__ = [
    "Aggregator",
    "FedAvgAggregator",
    "CoordinateMedianAggregator",
    "TrimmedMeanAggregator",
    "MaskedSumAggregator",
    "make_aggregator",
    "RoundBuffer",
    "flat_spec",
    "flatten_updates",
    "unflatten_vector",
    "Client",
    "Server",
    "DishonestServer",
    "GradientUpdate",
    "ModelBroadcast",
    "RoundRecord",
    "compute_batch_gradients",
    "compute_defended_update",
    "clip_gradient_dict",
    "per_sample_gradients",
    "average_gradients",
    "FederatedSimulation",
    "FederationConfig",
    "partition_dataset",
    "partition_dataset_dirichlet",
    "dirichlet_partition_indices",
]
