"""Federated learning simulator: clients, servers, rounds, aggregation."""

from repro.fl.aggregators import (
    Aggregator,
    CoordinateMedianAggregator,
    FedAvgAggregator,
    FixedPointCodec,
    MaskedSumAggregator,
    RoundBuffer,
    TrimmedMeanAggregator,
    aggregator_names,
    flat_spec,
    flatten_updates,
    make_aggregator,
    unflatten_vector,
)
from repro.fl.client import Client
from repro.fl.gradients import (
    average_gradients,
    clip_gradient_dict,
    compute_batch_gradients,
    compute_defended_update,
    per_sample_gradients,
)
from repro.fl.messages import GradientUpdate, ModelBroadcast, RoundRecord
from repro.fl.secagg import (
    BelowThresholdError,
    OneShotRecoveryAggregator,
    OneShotRecoveryProtocol,
    SecAggAggregator,
    SecAggError,
    SecAggProtocol,
)
from repro.fl.server import DishonestServer, Server
from repro.fl.simulator import (
    FederatedSimulation,
    FederationConfig,
    dirichlet_partition_indices,
    partition_dataset,
    partition_dataset_dirichlet,
)

__all__ = [
    "Aggregator",
    "FedAvgAggregator",
    "CoordinateMedianAggregator",
    "TrimmedMeanAggregator",
    "MaskedSumAggregator",
    "FixedPointCodec",
    "SecAggAggregator",
    "OneShotRecoveryAggregator",
    "SecAggProtocol",
    "OneShotRecoveryProtocol",
    "SecAggError",
    "BelowThresholdError",
    "make_aggregator",
    "aggregator_names",
    "RoundBuffer",
    "flat_spec",
    "flatten_updates",
    "unflatten_vector",
    "Client",
    "Server",
    "DishonestServer",
    "GradientUpdate",
    "ModelBroadcast",
    "RoundRecord",
    "compute_batch_gradients",
    "compute_defended_update",
    "clip_gradient_dict",
    "per_sample_gradients",
    "average_gradients",
    "FederatedSimulation",
    "FederationConfig",
    "partition_dataset",
    "partition_dataset_dirichlet",
    "dirichlet_partition_indices",
]
