"""Federated learning simulator: clients, servers, rounds, aggregation."""

from repro.fl.client import Client
from repro.fl.gradients import (
    average_gradients,
    clip_gradient_dict,
    compute_batch_gradients,
    compute_defended_update,
    per_sample_gradients,
)
from repro.fl.messages import GradientUpdate, ModelBroadcast, RoundRecord
from repro.fl.server import DishonestServer, Server
from repro.fl.simulator import (
    FederatedSimulation,
    FederationConfig,
    partition_dataset,
)

__all__ = [
    "Client",
    "Server",
    "DishonestServer",
    "GradientUpdate",
    "ModelBroadcast",
    "RoundRecord",
    "compute_batch_gradients",
    "compute_defended_update",
    "clip_gradient_dict",
    "per_sample_gradients",
    "average_gradients",
    "FederatedSimulation",
    "FederationConfig",
    "partition_dataset",
]
