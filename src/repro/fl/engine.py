"""Event-driven round engine: virtual clock, event heap, round cutoffs.

The synchronous seed drove every selected client inline from
``Server.run_round`` — fine at 10 clients, hopeless at fleet scale, and
structurally unable to express the timing phenomena cross-device attacks
assume (stragglers, heterogeneous hardware, diurnal availability).  This
module replaces that loop with a small discrete-event simulation:

- :class:`VirtualClock` — deterministic integer-tick simulated time
  (microsecond resolution).  Nothing in :mod:`repro.fl` ever reads the
  wall clock (enforced by the ``no-sim-wallclock`` lint rule); all timing
  derives from this clock, so two runs of the same federation are
  tick-for-tick identical on any host.
- :class:`Event` / :class:`EventQueue` — a binary heap whose ordering is
  a pure function of each event's ``(time, kind, client_id)`` key, never
  of insertion order.  Registering clients (or pushing events) in a
  different order cannot reorder the simulation — the property the
  hypothesis suite pins.
- :class:`CountCutoff` / :class:`TimeCutoff` — round-close policies.  A
  count cutoff closes the round once the expected number of updates has
  landed (the degenerate case that reproduces the legacy synchronous loop
  byte-for-byte); a time cutoff closes at ``opened_at + duration`` and
  whatever lands later *is* a straggler — lateness is an emergent timing
  outcome, not a coin flip.
- :class:`RoundEngine` — runs one round's events: dispatches the selected
  clients through an :class:`~repro.fl.arrivals.ArrivalProcess`, pops
  completion events in virtual-time order, ingests each arriving update
  into the :class:`~repro.fl.aggregators.RoundBuffer` as it lands, and
  classifies dropouts (never complete) and stragglers (complete after the
  cutoff) from the event timeline.

The server (:mod:`repro.fl.server`) owns the protocol semantics —
aggregation, secure-aggregation commitment windows, dishonest-server
hooks — and delegates *when things happen* to this engine.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.fl.aggregators import RoundBuffer, flat_spec
from repro.fl.messages import GradientUpdate

#: Virtual-clock resolution: one tick is one simulated microsecond.
TICKS_PER_SECOND = 1_000_000


def ticks(seconds: float) -> int:
    """Convert simulated seconds to integer clock ticks (deterministic)."""
    return int(round(float(seconds) * TICKS_PER_SECOND))


def seconds(tick_count: int) -> float:
    """Convert integer clock ticks back to simulated seconds."""
    return tick_count / TICKS_PER_SECOND


class VirtualClock:
    """Deterministic simulated time, counted in integer ticks.

    Integer ticks (not floats) so event ordering never depends on
    floating-point rounding, and so two federations advancing through the
    same events read identical times on every platform.
    """

    def __init__(self, start: int = 0) -> None:
        self._now = int(start)

    @property
    def now(self) -> int:
        """The current simulated time in ticks."""
        return self._now

    @property
    def now_s(self) -> float:
        """The current simulated time in seconds."""
        return seconds(self._now)

    def advance_to(self, tick: int) -> int:
        """Move time forward to ``tick``; moving backwards is a bug."""
        tick = int(tick)
        if tick < self._now:
            raise ValueError(
                f"virtual clock cannot run backwards ({tick} < {self._now})"
            )
        self._now = tick
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now})"


# The event taxonomy.  ``completion`` sorts before ``close`` at the same
# tick, so an update landing exactly at the deadline is on time.
EVENT_KINDS = ("completion", "close")
_KIND_PRIORITY = {kind: priority for priority, kind in enumerate(EVENT_KINDS)}


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence on the virtual timeline.

    ``kind`` is one of :data:`EVENT_KINDS`; ``client_id`` is ``-1`` for
    events that belong to the round rather than to a client (the close
    event).  The sort key is the event's identity — never a heap
    insertion counter — which is what makes the pop order invariant to
    the order clients were registered or events were pushed.
    """

    time: int
    kind: str
    client_id: int = -1

    def __post_init__(self) -> None:
        if self.kind not in _KIND_PRIORITY:
            raise ValueError(
                f"unknown event kind {self.kind!r}; known: {EVENT_KINDS}"
            )

    @property
    def sort_key(self) -> tuple[int, int, int]:
        return (self.time, _KIND_PRIORITY[self.kind], self.client_id)


class EventQueue:
    """A deterministic min-heap of :class:`Event`\\ s.

    Pop order is the sorted order of the events' ``sort_key``\\ s — a pure
    function of the event *set*, independent of push order.  Two events
    with the same key would be the same occurrence; pushing a duplicate
    key is rejected to keep the order total.
    """

    def __init__(self, events: Sequence[Event] = ()) -> None:
        self._heap: list[tuple[tuple[int, int, int], Event]] = []
        self._keys: set[tuple[int, int, int]] = set()
        for event in events:
            self.push(event)

    def push(self, event: Event) -> None:
        key = event.sort_key
        if key in self._keys:
            raise ValueError(f"duplicate event key {key}")
        self._keys.add(key)
        heapq.heappush(self._heap, (key, event))

    def pop(self) -> Event:
        key, event = heapq.heappop(self._heap)
        self._keys.remove(key)
        return event

    def peek(self) -> Event:
        return self._heap[0][1]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


# --------------------------------------------------------------------------
# Round cutoffs.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CountCutoff:
    """Close the round after a fixed number of updates has arrived.

    ``target=None`` means "every on-time dispatch the arrival plan
    expects" — with the compat arrival process this is exactly the legacy
    synchronous behaviour (wait for all non-straggling survivors), which
    is why the count-cutoff engine reproduces the seed's round records
    byte-for-byte.  A positive ``target`` is the
    over-selection strategy real systems use: select 120, close on the
    first 100.
    """

    target: Optional[int] = None

    def __post_init__(self) -> None:
        if self.target is not None and self.target < 1:
            raise ValueError("count cutoff target must be >= 1")

    def arrival_target(self, plan: "RoundPlan") -> Optional[int]:
        if self.target is not None:
            return self.target
        if plan.expected_fresh is not None:
            return plan.expected_fresh
        return len(plan.dispatched)

    def deadline(self, opened_at: int, plan: "RoundPlan") -> Optional[int]:
        return None


@dataclass(frozen=True)
class TimeCutoff:
    """Close the round ``duration`` ticks after it opens.

    Every completion landing at ``opened_at + duration`` or earlier is an
    on-time arrival; anything later is a straggler *by timing*, not by
    coin flip.  ``min_arrivals`` optionally keeps the round open past the
    deadline until that many updates have landed (a grace floor so a
    too-tight deadline degrades instead of producing empty rounds).
    """

    duration: int
    min_arrivals: int = 0

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise ValueError("time cutoff duration must be >= 1 tick")
        if self.min_arrivals < 0:
            raise ValueError("min_arrivals must be non-negative")

    def arrival_target(self, plan: "RoundPlan") -> Optional[int]:
        return None

    def deadline(self, opened_at: int, plan: "RoundPlan") -> Optional[int]:
        return opened_at + self.duration


RoundCutoff = "CountCutoff | TimeCutoff"


def make_cutoff(
    round_duration_s: Optional[float] = None,
    count_target: Optional[int] = None,
    min_arrivals: int = 0,
) -> "CountCutoff | TimeCutoff":
    """Resolve the configured cutoff policy.

    A positive ``round_duration_s`` selects a :class:`TimeCutoff`;
    otherwise a :class:`CountCutoff` (with ``count_target``, or the
    legacy wait-for-everyone degenerate case when that is ``None``).
    """
    if round_duration_s is not None and round_duration_s > 0:
        return TimeCutoff(ticks(round_duration_s), min_arrivals=min_arrivals)
    return CountCutoff(target=count_target)


# --------------------------------------------------------------------------
# Arrival plans (produced by repro.fl.arrivals, consumed by the engine).
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ScheduledCompletion:
    """One dispatched client and the tick its update will land."""

    client_id: int
    time: int


@dataclass
class RoundPlan:
    """An arrival process's timeline for one round.

    ``dispatched`` lists the clients that will eventually complete, with
    their completion ticks; ``unavailable`` the selected clients that
    never start (offline at dispatch, failed mid-round) — the engine
    records them as dropped.  ``expected_fresh`` is set by the compat
    process to tell the default count cutoff how many arrivals the legacy
    semantics would have waited for (its stragglers are scheduled but not
    expected); trace-driven processes leave it ``None``.
    """

    dispatched: list[ScheduledCompletion] = field(default_factory=list)
    unavailable: list[int] = field(default_factory=list)
    expected_fresh: Optional[int] = None


@dataclass
class RoundLedger:
    """Everything the engine observed while running one round's events.

    ``fresh`` holds the on-time updates in arrival order — the order
    their rows were packed into ``buffer`` — and ``late`` the updates
    that completed after the cutoff (computed so they can fold into the
    next round as stale arrivals; empty under commitment protocols, whose
    late uploads are undecryptable and discarded uncomputed).  ``buffer``
    is ``None`` when nothing arrived on time.
    """

    opened_at: int
    closed_at: int
    fresh: list[GradientUpdate]
    late: list[GradientUpdate]
    dropped_ids: list[int]
    straggler_ids: list[int]
    buffer: Optional[RoundBuffer]
    arrival_ticks: list[tuple[int, int]]
    late_ticks: list[tuple[int, int]]
    timing: Optional[dict] = None


class RoundEngine:
    """Drives one round's virtual-time event loop for the server.

    The server hands over the selected client ids, a ``compute`` callable
    (materialize the client, deliver the broadcast, collect its update —
    all protocol semantics stay server-side), and the round's bookkeeping
    knobs; the engine owns *time*: it builds the arrival plan, pops
    events in deterministic virtual-time order, ingests on-time updates
    into the round buffer as they land, and classifies dropout and
    straggling from the timeline.
    """

    def __init__(self, clock: VirtualClock, arrivals, cutoff) -> None:
        self.clock = clock
        self.arrivals = arrivals
        self.cutoff = cutoff

    @property
    def records_timing(self) -> bool:
        """Whether round records should carry the timing annotation.

        The compat configuration (rank-synthesized arrival times closing
        on the legacy count) records ``None`` so its round records are
        byte-identical to the pre-engine synchronous loop; any real
        arrival process or non-default cutoff records the timeline.
        """
        synthetic = getattr(self.arrivals, "synthesizes_time", False)
        legacy_cutoff = (
            isinstance(self.cutoff, CountCutoff) and self.cutoff.target is None
        )
        return not (synthetic and legacy_cutoff)

    def run_round(
        self,
        selected_ids: Sequence[int],
        round_index: int,
        server_rng,
        compute: Callable[[int], GradientUpdate],
        compute_late: bool = True,
        extra_capacity: int = 0,
        release_gradients: bool = False,
    ) -> RoundLedger:
        """Run one round's events and return the observed ledger.

        ``compute(client_id)`` is invoked exactly when the client's
        completion event pops — on-time arrivals before the cutoff, late
        ones after (skipped entirely when ``compute_late`` is false, the
        commitment-protocol case).  ``extra_capacity`` reserves buffer
        rows for updates the server will append after the event loop
        (stale arrivals from a previous round).

        ``release_gradients=True`` drops each on-time update's gradient
        dict right after its row is packed into the buffer — the server
        sets it when nothing downstream reads per-update gradients (no
        ``inspect_updates`` override), so a 10k-arrival round holds one
        contiguous matrix instead of 10k per-client dicts.  Late updates
        always keep their gradients: they fold into the next round's
        buffer as stale arrivals.
        """
        opened_at = self.clock.now
        plan = self.arrivals.plan_round(
            list(selected_ids), round_index, opened_at, server_rng
        )
        queue = EventQueue()
        for completion in plan.dispatched:
            queue.push(
                Event(completion.time, "completion", completion.client_id)
            )
        target = self.cutoff.arrival_target(plan)
        deadline = self.cutoff.deadline(opened_at, plan)
        min_arrivals = getattr(self.cutoff, "min_arrivals", 0)
        if deadline is not None:
            queue.push(Event(deadline, "close"))

        fresh: list[GradientUpdate] = []
        late: list[GradientUpdate] = []
        arrival_ticks: list[tuple[int, int]] = []
        late_ticks: list[tuple[int, int]] = []
        straggler_ids: list[int] = []
        buffer: Optional[RoundBuffer] = None
        closed = False
        closed_at: Optional[int] = None
        deadline_passed = False
        last_on_time = opened_at

        # A zero-target count cutoff (every expected arrival straggled)
        # closes the round immediately: whatever the queue still holds is
        # late by definition.
        if target == 0:
            closed = True
            closed_at = opened_at

        while queue:
            event = queue.pop()
            if event.kind == "close":
                # The grace floor can hold the round open past its
                # deadline; otherwise the close event seals it.
                deadline_passed = True
                if len(fresh) >= min_arrivals or not queue:
                    closed = True
                    closed_at = event.time
                continue
            if not closed:
                update = compute(event.client_id)
                if buffer is None:
                    capacity = len(plan.dispatched) + extra_capacity
                    buffer = RoundBuffer(capacity, flat_spec(update.gradients))
                buffer.add(update.gradients)
                if release_gradients:
                    update.gradients = {}
                fresh.append(update)
                arrival_ticks.append((event.client_id, event.time))
                last_on_time = event.time
                if (target is not None and len(fresh) >= target) or (
                    deadline_passed and len(fresh) >= min_arrivals
                ):
                    closed = True
                    closed_at = event.time
            else:
                straggler_ids.append(event.client_id)
                late_ticks.append((event.client_id, event.time))
                if compute_late:
                    late.append(compute(event.client_id))

        if closed_at is None:
            # Count-cutoff round that ran out of events before reaching
            # its target (mass dropout): it closes when the last on-time
            # arrival landed.
            closed_at = last_on_time
        closed_at = max(closed_at, opened_at)
        self.clock.advance_to(closed_at)

        timing = None
        if self.records_timing:
            timing = {
                "opened_at": opened_at,
                "closed_at": closed_at,
                "cutoff": (
                    "time" if isinstance(self.cutoff, TimeCutoff) else "count"
                ),
                "arrival_ticks": [list(pair) for pair in arrival_ticks],
                "late_ticks": [list(pair) for pair in late_ticks],
                "unavailable": list(plan.unavailable),
            }
        return RoundLedger(
            opened_at=opened_at,
            closed_at=closed_at,
            fresh=fresh,
            late=late,
            dropped_ids=list(plan.unavailable),
            straggler_ids=straggler_ids,
            buffer=buffer,
            arrival_ticks=arrival_ticks,
            late_ticks=late_ticks,
            timing=timing,
        )
