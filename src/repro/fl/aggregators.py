"""Pluggable server-side aggregation over stacked client updates.

The seed hardcoded a per-key Python loop (``average_gradients``) inside
``Server.run_round``; this module replaces that with an :class:`Aggregator`
abstraction operating on a *flattened, stacked* representation: every
client's named-gradient dict is packed into one contiguous ``float64``
vector, the federation's round becomes a single ``(num_clients, dim)``
matrix, and each rule reduces it with one vectorized numpy operation.
For ~100 clients this is the difference between thousands of small ufunc
calls and a single BLAS reduction (see ``benchmarks/bench_fl_scale.py``).

Four rules ship with the engine:

- :class:`FedAvgAggregator` — the paper's Eq. 1 weighted mean.
- :class:`CoordinateMedianAggregator` — coordinate-wise median, robust to
  a minority of crafted/byzantine updates.
- :class:`TrimmedMeanAggregator` — coordinate-wise trimmed mean.
- :class:`MaskedSumAggregator` — a secure-aggregation-style masked sum
  (Bonawitz et al. / LightSecAgg regime): updates are fixed-point
  quantized, each pair of surviving clients shares a pairwise additive
  mask drawn over the full 64-bit ring, and masks cancel *exactly* in the
  modular sum, so the server recovers the plain quantized sum bit-for-bit
  while individual masked uploads are uniformly random.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

# (name, shape, size) triples describing how a flat vector maps back to a
# named-gradient dict.
FlatSpec = list[tuple[str, tuple[int, ...], int]]


def flat_spec(update: dict[str, np.ndarray]) -> FlatSpec:
    """Describe how ``update`` packs into a flat vector (key order preserved)."""
    return [(name, value.shape, int(value.size)) for name, value in update.items()]


class RoundBuffer:
    """Contiguous (capacity, dim) staging area for one round's updates.

    The engine packs each client update into its own matrix row *as it
    arrives* (ingest time), so end-of-round aggregation is a single
    vectorized reduction over :attr:`matrix` instead of the seed's per-key
    Python loop over dicts.  In a deployment the packing cost overlaps the
    wait for slower clients; here it simply moves the dict walking out of
    the aggregation hot path.
    """

    def __init__(self, capacity: int, spec: FlatSpec) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.spec = spec
        self.dim = sum(size for _, _, size in spec)
        self._matrix = np.empty((capacity, self.dim), dtype=np.float64)
        self._names = {name for name, _, _ in spec}
        self._count = 0

    @classmethod
    def for_updates(cls, updates: Sequence[dict[str, np.ndarray]]) -> "RoundBuffer":
        """Build a buffer sized for ``updates`` and pack them all."""
        if not updates:
            raise ValueError("no updates to aggregate")
        buffer = cls(len(updates), flat_spec(updates[0]))
        for update in updates:
            buffer.add(update)
        return buffer

    def add(self, gradients: dict[str, np.ndarray]) -> None:
        """Pack one arriving named-gradient dict into the next matrix row."""
        if self._count >= len(self._matrix):
            raise ValueError("round buffer is full")
        if set(gradients) != self._names:
            raise KeyError("updates carry mismatched parameter names")
        row = self._matrix[self._count]
        offset = 0
        for name, _, size in self.spec:
            row[offset : offset + size] = np.asarray(gradients[name]).reshape(size)
            offset += size
        self._count += 1

    @property
    def matrix(self) -> np.ndarray:
        """The stacked (num_arrived, dim) update matrix."""
        return self._matrix[: self._count]

    def __len__(self) -> int:
        return self._count


def flatten_updates(
    updates: Sequence[dict[str, np.ndarray]],
) -> tuple[np.ndarray, FlatSpec]:
    """Stack named-gradient dicts into one contiguous (K, dim) matrix.

    Returns ``(matrix, spec)`` where row ``k`` of ``matrix`` is client
    ``k``'s update flattened in the key order of the first dict, and
    ``spec`` records how to invert the packing (:func:`unflatten_vector`).
    Raises :class:`ValueError` on an empty list and :class:`KeyError` when
    updates carry mismatched parameter names.
    """
    buffer = RoundBuffer.for_updates(updates)
    return buffer.matrix, buffer.spec


def unflatten_vector(vector: np.ndarray, spec: FlatSpec) -> dict[str, np.ndarray]:
    """Invert :func:`flatten_updates` for a single reduced (dim,) vector."""
    out: dict[str, np.ndarray] = {}
    offset = 0
    for name, shape, size in spec:
        out[name] = vector[offset : offset + size].reshape(shape)
        offset += size
    return out


def _normalized_weights(
    weights: Sequence[float] | None, count: int
) -> np.ndarray:
    """Validate and normalize per-client weights to a (K,) simplex vector."""
    if weights is None:
        return np.full(count, 1.0 / count)
    if len(weights) != count:
        raise ValueError("weights/updates length mismatch")
    array = np.asarray(weights, dtype=np.float64)
    total = float(array.sum())
    if np.any(array < 0) or total <= 0.0:
        raise ValueError("weights must be non-negative with a positive sum")
    return array / total


class Aggregator:
    """Base class for server-side aggregation rules.

    Subclasses implement :meth:`reduce` over the stacked ``(K, dim)``
    update matrix; :meth:`aggregate` handles packing/unpacking of the
    named-gradient dicts so every rule gets the vectorized path for free.
    """

    name = "base"

    def reduce(self, matrix: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Reduce a (num_clients, dim) matrix to the (dim,) aggregate.

        ``weights`` is the normalized per-client weight vector; rules that
        are inherently unweighted (median, masked sum) may ignore it.
        """
        raise NotImplementedError

    def aggregate(
        self,
        updates: Sequence[dict[str, np.ndarray]],
        weights: Sequence[float] | None = None,
    ) -> dict[str, np.ndarray]:
        """Aggregate named-gradient dicts into one named-gradient dict."""
        matrix, spec = flatten_updates(updates)
        reduced = self.reduce(matrix, _normalized_weights(weights, len(updates)))
        return unflatten_vector(reduced, spec)

    def aggregate_buffer(
        self,
        buffer: RoundBuffer,
        weights: Sequence[float] | None = None,
    ) -> dict[str, np.ndarray]:
        """Aggregate an ingest-stacked :class:`RoundBuffer` (the hot path).

        Skips the dict flattening entirely — the buffer was packed as
        updates arrived — so this is one vectorized reduction plus a
        view-based unflatten.
        """
        if not len(buffer):
            raise ValueError("no updates to aggregate")
        reduced = self.reduce(
            buffer.matrix, _normalized_weights(weights, len(buffer))
        )
        return unflatten_vector(reduced, buffer.spec)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FedAvgAggregator(Aggregator):
    """Weighted arithmetic mean of client updates (paper Eq. 1).

    With uniform weights this reproduces the seed's ``average_gradients``
    semantics as a single matrix-vector product.
    """

    name = "fedavg"

    def reduce(self, matrix: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return weights @ matrix


class CoordinateMedianAggregator(Aggregator):
    """Coordinate-wise median; ignores weights.

    Robust to up to ``(K - 1) // 2`` arbitrarily corrupted updates per
    coordinate, which makes it the standard byzantine-tolerant baseline.
    """

    name = "median"

    def reduce(self, matrix: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return np.median(matrix, axis=0)


class TrimmedMeanAggregator(Aggregator):
    """Coordinate-wise trimmed mean: drop the ``trim_ratio`` tails, average.

    ``trim_ratio`` is the fraction of clients trimmed from *each* end per
    coordinate (so 0.25 with 4 clients keeps the middle two).  Ignores
    weights; the surviving entries are averaged uniformly.
    """

    name = "trimmed_mean"

    def __init__(self, trim_ratio: float = 0.1) -> None:
        if not 0.0 <= trim_ratio < 0.5:
            raise ValueError("trim_ratio must be in [0, 0.5)")
        self.trim_ratio = trim_ratio

    def reduce(self, matrix: np.ndarray, weights: np.ndarray) -> np.ndarray:
        count = len(matrix)
        trim = min(int(self.trim_ratio * count), (count - 1) // 2)
        if trim == 0:
            return matrix.mean(axis=0)
        ordered = np.sort(matrix, axis=0)
        return ordered[trim : count - trim].mean(axis=0)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(trim_ratio={self.trim_ratio})"


class MaskedSumAggregator(Aggregator):
    """Secure-aggregation-style masked sum with pairwise-cancelling masks.

    Models the arithmetic core of LightSecAgg/Bonawitz-style protocols:

    1. Each client fixed-point quantizes its update with scale
       ``2**fractional_bits`` into the 64-bit two's-complement ring.
    2. Every *surviving* pair ``(i, j)``, ``i < j``, expands a shared seed
       into a mask drawn uniformly over the ring; ``i`` adds it, ``j``
       subtracts it (mod ``2**64``), so each masked upload is uniformly
       random on its own.  (Dropout is modeled by generating masks among
       the survivors only — the real protocol's mask-recovery phase.)
    3. The server sums the masked uploads in the ring; the masks cancel
       *exactly*, so the result equals the plain quantized sum bit-for-bit
       (integer arithmetic has no rounding), which is then dequantized.

    Weights are ignored: a secure sum reveals only the uniform total, so
    :meth:`reduce` returns ``sum / K`` to stay mean-scaled like FedAvg.
    Exact while the true quantized sum stays within int64, i.e.
    ``K * max|g| * 2**fractional_bits < 2**63``.  Mask expansion is
    O(K^2 * dim) — faithful to the pairwise protocol, so keep federations
    in the tens of clients when using this rule.
    """

    name = "masked_sum"

    def __init__(self, fractional_bits: int = 16, seed: int = 0) -> None:
        if fractional_bits < 0:
            raise ValueError("fractional_bits must be non-negative")
        self.fractional_bits = fractional_bits
        self.scale = float(2 ** fractional_bits)
        self._seed = seed
        self._round = 0

    def quantize(self, matrix: np.ndarray) -> np.ndarray:
        """Fixed-point encode a float matrix into the uint64 ring.

        Rejects updates whose quantized sum could leave the int64 range —
        silent modular wraparound would otherwise corrupt the aggregate.
        """
        limit = 2.0 ** 62 / self.scale / max(len(matrix), 1)
        magnitude = float(np.max(np.abs(matrix))) if matrix.size else 0.0
        if not magnitude < limit:
            raise ValueError(
                f"update magnitude {magnitude:.3g} exceeds the masked-sum "
                f"fixed-point range ({limit:.3g} for {len(matrix)} clients at "
                f"{self.fractional_bits} fractional bits); clip updates or "
                "lower fractional_bits"
            )
        return np.rint(matrix * self.scale).astype(np.int64).view(np.uint64)

    def mask_updates(self, matrix: np.ndarray) -> np.ndarray:
        """Quantize and mask the (K, dim) update matrix — what clients upload.

        Every call draws a fresh round of pairwise masks (a new protocol
        execution), derived deterministically from the aggregator seed.
        """
        masked = self.quantize(matrix).copy()
        count, dim = masked.shape
        if count < 2:
            return masked
        ceiling = np.iinfo(np.uint64).max
        seeds = iter(
            np.random.SeedSequence((self._seed, self._round)).spawn(
                count * (count - 1) // 2
            )
        )
        for i in range(count):
            for j in range(i + 1, count):
                mask = np.random.default_rng(next(seeds)).integers(
                    ceiling, size=dim, dtype=np.uint64, endpoint=True
                )
                masked[i] += mask
                masked[j] -= mask
        return masked

    def unmask_sum(self, masked: np.ndarray) -> np.ndarray:
        """Ring-sum masked uploads and dequantize the recovered plain sum."""
        total = masked.sum(axis=0, dtype=np.uint64)
        return total.view(np.int64).astype(np.float64) / self.scale

    def exact_sum(self, matrix: np.ndarray) -> np.ndarray:
        """The unmasked fixed-point sum the protocol must recover bit-for-bit."""
        total = self.quantize(matrix).sum(axis=0, dtype=np.uint64)
        return total.view(np.int64).astype(np.float64) / self.scale

    def reduce(self, matrix: np.ndarray, weights: np.ndarray) -> np.ndarray:
        masked = self.mask_updates(matrix)
        self._round += 1
        return self.unmask_sum(masked) / len(matrix)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(fractional_bits={self.fractional_bits})"


_AGGREGATORS: dict[str, type[Aggregator]] = {
    "fedavg": FedAvgAggregator,
    "mean": FedAvgAggregator,
    "median": CoordinateMedianAggregator,
    "coordinate_median": CoordinateMedianAggregator,
    "trimmed_mean": TrimmedMeanAggregator,
    "masked_sum": MaskedSumAggregator,
    "secure_agg": MaskedSumAggregator,
}


def make_aggregator(spec: "str | type[Aggregator] | Aggregator" = "fedavg", **kwargs) -> Aggregator:
    """Resolve an aggregator from a registry name, class, or instance.

    Accepts an :class:`Aggregator` instance (returned as-is; ``kwargs``
    must be empty), an ``Aggregator`` subclass, or one of the registered
    names: ``fedavg``/``mean``, ``median``/``coordinate_median``,
    ``trimmed_mean``, ``masked_sum``/``secure_agg``.
    """
    if isinstance(spec, Aggregator):
        if kwargs:
            raise ValueError("cannot pass kwargs with an aggregator instance")
        return spec
    if isinstance(spec, type) and issubclass(spec, Aggregator):
        return spec(**kwargs)
    try:
        cls = _AGGREGATORS[str(spec).lower()]
    except KeyError:
        raise ValueError(
            f"unknown aggregator {spec!r}; choose from {sorted(_AGGREGATORS)}"
        ) from None
    return cls(**kwargs)
