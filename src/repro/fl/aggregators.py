"""Pluggable server-side aggregation over stacked client updates.

The seed hardcoded a per-key Python loop (``average_gradients``) inside
``Server.run_round``; this module replaces that with an :class:`Aggregator`
abstraction operating on a *flattened, stacked* representation: every
client's named-gradient dict is packed into one contiguous ``float64``
vector, the federation's round becomes a single ``(num_clients, dim)``
matrix, and each rule reduces it with one vectorized numpy operation.
For ~100 clients this is the difference between thousands of small ufunc
calls and a single BLAS reduction (see ``benchmarks/bench_fl_scale.py``).

Four rules ship with the engine:

- :class:`FedAvgAggregator` — the paper's Eq. 1 weighted mean.
- :class:`CoordinateMedianAggregator` — coordinate-wise median, robust to
  a minority of crafted/byzantine updates.
- :class:`TrimmedMeanAggregator` — coordinate-wise trimmed mean.
- :class:`MaskedSumAggregator` — a secure-aggregation-style masked sum
  (Bonawitz et al. / LightSecAgg regime): updates are fixed-point
  quantized, each pair of surviving clients shares a pairwise additive
  mask drawn over the full 64-bit ring, and masks cancel *exactly* in the
  modular sum, so the server recovers the plain quantized sum bit-for-bit
  while individual masked uploads are uniformly random.
"""

from __future__ import annotations

import warnings
from importlib import import_module
from typing import Sequence

import numpy as np

# (name, shape, size) triples describing how a flat vector maps back to a
# named-gradient dict.
FlatSpec = list[tuple[str, tuple[int, ...], int]]


def flat_spec(update: dict[str, np.ndarray]) -> FlatSpec:
    """Describe how ``update`` packs into a flat vector (key order preserved)."""
    return [(name, value.shape, int(value.size)) for name, value in update.items()]


class RoundBuffer:
    """Contiguous (capacity, dim) staging area for one round's updates.

    The engine packs each client update into its own matrix row *as it
    arrives* (ingest time), so end-of-round aggregation is a single
    vectorized reduction over :attr:`matrix` instead of the seed's per-key
    Python loop over dicts.  In a deployment the packing cost overlaps the
    wait for slower clients; here it simply moves the dict walking out of
    the aggregation hot path.
    """

    def __init__(self, capacity: int, spec: FlatSpec) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.spec = spec
        self.dim = sum(size for _, _, size in spec)
        self._matrix = np.empty((capacity, self.dim), dtype=np.float64)
        self._names = {name for name, _, _ in spec}
        self._count = 0

    @classmethod
    def for_updates(cls, updates: Sequence[dict[str, np.ndarray]]) -> "RoundBuffer":
        """Build a buffer sized for ``updates`` and pack them all."""
        if not updates:
            raise ValueError("no updates to aggregate")
        buffer = cls(len(updates), flat_spec(updates[0]))
        for update in updates:
            buffer.add(update)
        return buffer

    def add(self, gradients: dict[str, np.ndarray]) -> None:
        """Pack one arriving named-gradient dict into the next matrix row."""
        if self._count >= len(self._matrix):
            raise ValueError("round buffer is full")
        if set(gradients) != self._names:
            raise KeyError("updates carry mismatched parameter names")
        row = self._matrix[self._count]
        offset = 0
        for name, _, size in self.spec:
            row[offset : offset + size] = np.asarray(gradients[name]).reshape(size)
            offset += size
        self._count += 1

    @property
    def matrix(self) -> np.ndarray:
        """The stacked (num_arrived, dim) update matrix."""
        return self._matrix[: self._count]

    def __len__(self) -> int:
        return self._count


def flatten_updates(
    updates: Sequence[dict[str, np.ndarray]],
) -> tuple[np.ndarray, FlatSpec]:
    """Stack named-gradient dicts into one contiguous (K, dim) matrix.

    Returns ``(matrix, spec)`` where row ``k`` of ``matrix`` is client
    ``k``'s update flattened in the key order of the first dict, and
    ``spec`` records how to invert the packing (:func:`unflatten_vector`).
    Raises :class:`ValueError` on an empty list and :class:`KeyError` when
    updates carry mismatched parameter names.
    """
    buffer = RoundBuffer.for_updates(updates)
    return buffer.matrix, buffer.spec


def unflatten_vector(vector: np.ndarray, spec: FlatSpec) -> dict[str, np.ndarray]:
    """Invert :func:`flatten_updates` for a single reduced (dim,) vector."""
    out: dict[str, np.ndarray] = {}
    offset = 0
    for name, shape, size in spec:
        out[name] = vector[offset : offset + size].reshape(shape)
        offset += size
    return out


def _normalized_weights(
    weights: Sequence[float] | None, count: int
) -> np.ndarray:
    """Validate and normalize per-client weights to a (K,) simplex vector."""
    if weights is None:
        return np.full(count, 1.0 / count)
    if len(weights) != count:
        raise ValueError("weights/updates length mismatch")
    array = np.asarray(weights, dtype=np.float64)
    total = float(array.sum())
    if np.any(array < 0) or total <= 0.0:
        raise ValueError("weights must be non-negative with a positive sum")
    return array / total


class Aggregator:
    """Base class for server-side aggregation rules.

    Subclasses implement :meth:`reduce` over the stacked ``(K, dim)``
    update matrix; :meth:`aggregate` handles packing/unpacking of the
    named-gradient dicts so every rule gets the vectorized path for free.
    Rules whose output depends on the round (mask derivation, protocol
    sessions) override :meth:`_reduce_round` instead and key everything
    off the ``round_index`` the server passes — never off hidden
    instance state, which a resumed or replayed round would not share.

    ``honours_weights`` declares whether the rule can apply per-client
    weights at all; passing weights to a rule that cannot raises a
    one-time :class:`RuntimeWarning` per instance instead of silently
    discarding them.
    """

    name = "base"
    honours_weights = True
    # True for protocol rules that need the server to treat selection as
    # a commitment (mask seeds are shared before uploads; dropouts after
    # that point are recovered, not resampled).
    requires_commitment = False
    _warned_weights = False

    def reduce(self, matrix: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Reduce a (num_clients, dim) matrix to the (dim,) aggregate.

        ``weights`` is the normalized per-client weight vector; rules that
        are inherently unweighted (median, masked sum) may ignore it.
        """
        raise NotImplementedError

    def _reduce_round(
        self, matrix: np.ndarray, weights: np.ndarray, round_index: int
    ) -> np.ndarray:
        """Round-aware reduction hook; defaults to the stateless rule."""
        return self.reduce(matrix, weights)

    def _check_weights(self, weights: Sequence[float] | None) -> None:
        """Warn (once per instance) when weights reach an unweighted rule."""
        if weights is None or self.honours_weights or self._warned_weights:
            return
        self._warned_weights = True
        warnings.warn(
            f"the {self.name!r} aggregator cannot honour per-client weights; "
            "aggregating uniformly (recorded as weighting='uniform')",
            RuntimeWarning,
            stacklevel=3,
        )

    def effective_weighting(self, weights: Sequence[float] | None) -> str:
        """The weighting actually applied: ``"weighted"`` or ``"uniform"``."""
        return "weighted" if weights is not None and self.honours_weights else "uniform"

    def aggregate(
        self,
        updates: Sequence[dict[str, np.ndarray]],
        weights: Sequence[float] | None = None,
        round_index: int = 0,
    ) -> dict[str, np.ndarray]:
        """Aggregate named-gradient dicts into one named-gradient dict."""
        self._check_weights(weights)
        matrix, spec = flatten_updates(updates)
        reduced = self._reduce_round(
            matrix, _normalized_weights(weights, len(updates)), round_index
        )
        return unflatten_vector(reduced, spec)

    def aggregate_buffer(
        self,
        buffer: RoundBuffer,
        weights: Sequence[float] | None = None,
        round_index: int = 0,
    ) -> dict[str, np.ndarray]:
        """Aggregate an ingest-stacked :class:`RoundBuffer` (the hot path).

        Skips the dict flattening entirely — the buffer was packed as
        updates arrived — so this is one vectorized reduction plus a
        view-based unflatten.
        """
        if not len(buffer):
            raise ValueError("no updates to aggregate")
        self._check_weights(weights)
        reduced = self._reduce_round(
            buffer.matrix, _normalized_weights(weights, len(buffer)), round_index
        )
        return unflatten_vector(reduced, buffer.spec)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FedAvgAggregator(Aggregator):
    """Weighted arithmetic mean of client updates (paper Eq. 1).

    With uniform weights this reproduces the seed's ``average_gradients``
    semantics as a single matrix-vector product.
    """

    name = "fedavg"

    def reduce(self, matrix: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return weights @ matrix


class CoordinateMedianAggregator(Aggregator):
    """Coordinate-wise median; ignores weights.

    Robust to up to ``(K - 1) // 2`` arbitrarily corrupted updates per
    coordinate, which makes it the standard byzantine-tolerant baseline.
    """

    name = "median"
    honours_weights = False

    def reduce(self, matrix: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return np.median(matrix, axis=0)


class TrimmedMeanAggregator(Aggregator):
    """Coordinate-wise trimmed mean: drop the ``trim_ratio`` tails, average.

    ``trim_ratio`` is the fraction of clients trimmed from *each* end per
    coordinate (so 0.25 with 4 clients keeps the middle two).  Ignores
    weights; the surviving entries are averaged uniformly.
    """

    name = "trimmed_mean"
    honours_weights = False

    def __init__(self, trim_ratio: float = 0.1) -> None:
        if not 0.0 <= trim_ratio < 0.5:
            raise ValueError("trim_ratio must be in [0, 0.5)")
        self.trim_ratio = trim_ratio

    def reduce(self, matrix: np.ndarray, weights: np.ndarray) -> np.ndarray:
        count = len(matrix)
        trim = min(int(self.trim_ratio * count), (count - 1) // 2)
        if trim == 0:
            return matrix.mean(axis=0)
        ordered = np.sort(matrix, axis=0)
        return ordered[trim : count - trim].mean(axis=0)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(trim_ratio={self.trim_ratio})"


class FixedPointCodec:
    """Fixed-point quantization into a modular ring, exact up to a sum bound.

    Encodes floats as ``round(value * 2**fractional_bits)`` signed
    integers; every masked-sum flavour (the in-aggregator model below and
    the ``repro.fl.secagg`` protocols) shares this codec so "recovers the
    exact quantized sum bit-for-bit" means the same bits everywhere.

    ``sum_limit`` bounds the magnitude the *summed* quantized values may
    reach: ``2**63`` for the two's-complement uint64 ring (int64 range),
    or the field codecs' tighter primes.  :meth:`quantize` rejects any
    batch whose worst-case sum ``count * max|q|`` could reach the limit —
    silent modular wraparound would otherwise corrupt the aggregate.
    """

    def __init__(
        self, fractional_bits: int = 16, sum_limit: float = 2.0 ** 63
    ) -> None:
        if fractional_bits < 0:
            raise ValueError("fractional_bits must be non-negative")
        if not 0 < sum_limit <= 2.0 ** 63:
            raise ValueError("sum_limit must be in (0, 2**63]")
        self.fractional_bits = fractional_bits
        self.scale = float(2 ** fractional_bits)
        self.sum_limit = float(sum_limit)

    def quantize(self, matrix: np.ndarray, count: int | None = None) -> np.ndarray:
        """Encode floats into the uint64 ring (two's-complement int64 view).

        ``count`` is the number of values that may be summed (defaults to
        the batch's row count); the guard checks the *rounded* magnitudes,
        so a batch passes iff its true quantized sum provably fits.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        rows = len(matrix) if matrix.ndim > 1 else 1
        count = max(count if count is not None else rows, 1)
        scaled = np.rint(matrix * self.scale)
        magnitude = float(np.max(np.abs(scaled))) if scaled.size else 0.0
        if not magnitude * count < self.sum_limit:
            limit = self.sum_limit / self.scale / count
            raise ValueError(
                f"update magnitude {magnitude / self.scale:.3g} exceeds the "
                f"masked-sum fixed-point range ({limit:.3g} for {count} "
                f"clients at {self.fractional_bits} fractional bits); clip "
                "updates or lower fractional_bits"
            )
        return scaled.astype(np.int64).view(np.uint64)

    def dequantize_sum(self, total: np.ndarray) -> np.ndarray:
        """Decode a ring sum back to floats (int64 two's-complement view)."""
        return np.asarray(total, dtype=np.uint64).view(np.int64).astype(
            np.float64
        ) / self.scale

    def exact_sum(self, matrix: np.ndarray, count: int | None = None) -> np.ndarray:
        """The plain fixed-point sum a protocol must recover bit-for-bit."""
        total = self.quantize(matrix, count=count).sum(axis=0, dtype=np.uint64)
        return self.dequantize_sum(total)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(fractional_bits={self.fractional_bits})"


class MaskedSumAggregator(Aggregator):
    """Secure-aggregation-style masked sum with pairwise-cancelling masks.

    Models the arithmetic core of LightSecAgg/Bonawitz-style protocols:

    1. Each client fixed-point quantizes its update with scale
       ``2**fractional_bits`` into the 64-bit two's-complement ring.
    2. Every *surviving* pair ``(i, j)``, ``i < j``, expands a shared seed
       into a mask drawn uniformly over the ring; ``i`` adds it, ``j``
       subtracts it (mod ``2**64``), so each masked upload is uniformly
       random on its own.  (Dropout is modeled by generating masks among
       the survivors only; a client dropping *after* masks are committed
       is out of scope here — that is what the real protocol rounds in
       :mod:`repro.fl.secagg` exist for.)
    3. The server sums the masked uploads in the ring; the masks cancel
       *exactly*, so the result equals the plain quantized sum bit-for-bit
       (integer arithmetic has no rounding), which is then dequantized.

    Weights are ignored: a secure sum reveals only the uniform total, so
    the reduction returns ``sum / K`` to stay mean-scaled like FedAvg.
    Exact while the true quantized sum stays within int64, i.e.
    ``K * max|round(g * 2**fractional_bits)| < 2**63`` — the codec guard
    enforces exactly this bound.  Mask derivation is keyed by the round
    index the server passes, so replaying or resuming a round draws the
    identical mask stream no matter how many rounds the instance served.
    Mask expansion is O(K^2 * dim) — faithful to the pairwise protocol,
    so keep federations in the tens of clients when using this rule.
    """

    name = "masked_sum"
    honours_weights = False

    def __init__(self, fractional_bits: int = 16, seed: int = 0) -> None:
        self.codec = FixedPointCodec(fractional_bits)
        self.fractional_bits = fractional_bits
        self.scale = self.codec.scale
        self._seed = seed

    def quantize(self, matrix: np.ndarray) -> np.ndarray:
        """Fixed-point encode a float matrix into the uint64 ring.

        Rejects updates whose quantized sum could leave the int64 range —
        silent modular wraparound would otherwise corrupt the aggregate.
        """
        return self.codec.quantize(matrix)

    def mask_updates(self, matrix: np.ndarray, round_index: int = 0) -> np.ndarray:
        """Quantize and mask the (K, dim) update matrix — what clients upload.

        Masks derive from ``(seed, round_index)`` alone: the same round
        always draws the same masks (replay/resume safe) and distinct
        rounds draw independent ones.
        """
        masked = self.quantize(matrix).copy()
        count, dim = masked.shape
        if count < 2:
            return masked
        ceiling = np.iinfo(np.uint64).max
        seeds = iter(
            np.random.SeedSequence((self._seed, int(round_index))).spawn(
                count * (count - 1) // 2
            )
        )
        for i in range(count):
            for j in range(i + 1, count):
                mask = np.random.default_rng(next(seeds)).integers(
                    ceiling, size=dim, dtype=np.uint64, endpoint=True
                )
                masked[i] += mask
                masked[j] -= mask
        return masked

    def unmask_sum(self, masked: np.ndarray) -> np.ndarray:
        """Ring-sum masked uploads and dequantize the recovered plain sum."""
        total = masked.sum(axis=0, dtype=np.uint64)
        return self.codec.dequantize_sum(total)

    def exact_sum(self, matrix: np.ndarray) -> np.ndarray:
        """The unmasked fixed-point sum the protocol must recover bit-for-bit."""
        return self.codec.exact_sum(matrix)

    def reduce(self, matrix: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return self._reduce_round(matrix, weights, 0)

    def _reduce_round(
        self, matrix: np.ndarray, weights: np.ndarray, round_index: int
    ) -> np.ndarray:
        masked = self.mask_updates(matrix, round_index)
        return self.unmask_sum(masked) / len(matrix)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(fractional_bits={self.fractional_bits})"


_AGGREGATORS: dict[str, type[Aggregator]] = {
    "fedavg": FedAvgAggregator,
    "mean": FedAvgAggregator,
    "median": CoordinateMedianAggregator,
    "coordinate_median": CoordinateMedianAggregator,
    "trimmed_mean": TrimmedMeanAggregator,
    "masked_sum": MaskedSumAggregator,
    "secure_agg": MaskedSumAggregator,
}

# Protocol aggregators live in repro.fl.secagg, which itself builds on
# this module — resolving them lazily (module path, attribute) keeps the
# registry complete without a circular import at package load.
_LAZY_AGGREGATORS: dict[str, tuple[str, str]] = {
    "secagg": ("repro.fl.secagg.aggregators", "SecAggAggregator"),
    "secagg_bonawitz": ("repro.fl.secagg.aggregators", "SecAggAggregator"),
    "secagg_oneshot": ("repro.fl.secagg.aggregators", "OneShotRecoveryAggregator"),
    "lightsecagg": ("repro.fl.secagg.aggregators", "OneShotRecoveryAggregator"),
}


def aggregator_names() -> list[str]:
    """Every registered aggregator name (eager and lazy), sorted."""
    return sorted(set(_AGGREGATORS) | set(_LAZY_AGGREGATORS))


def make_aggregator(spec: "str | type[Aggregator] | Aggregator" = "fedavg", **kwargs) -> Aggregator:
    """Resolve an aggregator from a registry name, class, or instance.

    Accepts an :class:`Aggregator` instance (returned as-is; ``kwargs``
    must be empty), an ``Aggregator`` subclass, or one of the registered
    names: ``fedavg``/``mean``, ``median``/``coordinate_median``,
    ``trimmed_mean``, ``masked_sum``/``secure_agg``, and the protocol
    rules ``secagg``/``secagg_bonawitz``, ``secagg_oneshot``/
    ``lightsecagg``.
    """
    if isinstance(spec, Aggregator):
        if kwargs:
            raise ValueError("cannot pass kwargs with an aggregator instance")
        return spec
    if isinstance(spec, type) and issubclass(spec, Aggregator):
        return spec(**kwargs)
    key = str(spec).lower()
    if key in _AGGREGATORS:
        return _AGGREGATORS[key](**kwargs)
    if key in _LAZY_AGGREGATORS:
        module_path, attribute = _LAZY_AGGREGATORS[key]
        cls = getattr(import_module(module_path), attribute)
        return cls(**kwargs)
    raise ValueError(
        f"unknown aggregator {spec!r}; choose from {aggregator_names()}"
    )
