"""FL servers: the honest coordinator and the actively dishonest attacker.

:class:`Server` implements the paper's Sec. II-A protocol: per round,
sample ``M`` of ``N`` clients, broadcast the global parameters, aggregate
the returned gradients, and take a gradient step (Eq. 1).  On top of the
seed's fixed-participation FedAvg it now simulates the participation
scenarios large-scale attacks assume (per-round sampling, client dropout,
stragglers with optional stale inclusion) and delegates the reduction to a
pluggable :class:`~repro.fl.aggregators.Aggregator` (FedAvg, coordinate
median, trimmed mean, or a secure-aggregation-style masked sum).

:class:`DishonestServer` additionally manipulates the global model before
broadcasting (the paper's threat model) and runs gradient inversion on a
targeted client's update.  It still performs the normal aggregation so the
protocol looks honest from the outside.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.attacks.base import ActiveReconstructionAttack, ReconstructionResult
from repro.fl.aggregators import Aggregator, RoundBuffer, make_aggregator
from repro.fl.client import Client
from repro.fl.messages import GradientUpdate, ModelBroadcast, RoundRecord
from repro.fl.secagg.base import BelowThresholdError
from repro.nn.module import Module


class Server:
    """Honest FL coordinator implementing gradient-averaged FedSGD (Eq. 1).

    Scenario knobs:

    - ``clients_per_round``: per-round uniform sampling of the fleet.
    - ``dropout_rate``: probability a selected client fails before its
      update arrives (it never computes one).
    - ``straggler_rate``: probability a surviving client computes its
      update but misses the round deadline.  Late updates are dropped
      unless ``accept_stale=True``, in which case they are folded into the
      *next* round's aggregate.
    - ``aggregator``: an :class:`~repro.fl.aggregators.Aggregator`
      instance, subclass, or registry name (``"fedavg"``, ``"median"``,
      ``"trimmed_mean"``, ``"masked_sum"``, and the secure-aggregation
      protocol rules ``"secagg"`` / ``"secagg_oneshot"``, which run
      commit-then-drop rounds — see :mod:`repro.fl.secagg`).
    - ``weight_by_examples``: weight the aggregate by each update's
      ``num_examples`` instead of uniformly (only meaningful for rules
      that honour weights, i.e. FedAvg).
    """

    def __init__(
        self,
        model: Module,
        clients: Sequence[Client],
        learning_rate: float = 0.1,
        clients_per_round: Optional[int] = None,
        aggregator: "str | type[Aggregator] | Aggregator" = "fedavg",
        dropout_rate: float = 0.0,
        straggler_rate: float = 0.0,
        accept_stale: bool = False,
        weight_by_examples: bool = False,
        seed: int = 0,
    ) -> None:
        if not clients:
            raise ValueError("server needs at least one client")
        for rate, label in (
            (dropout_rate, "dropout_rate"),
            (straggler_rate, "straggler_rate"),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{label} must be in [0, 1]")
        self.model = model
        self.clients = list(clients)
        self.learning_rate = learning_rate
        self.clients_per_round = clients_per_round or len(self.clients)
        self.clients_per_round = min(self.clients_per_round, len(self.clients))
        self.aggregator = make_aggregator(aggregator)
        self.dropout_rate = dropout_rate
        self.straggler_rate = straggler_rate
        self.accept_stale = accept_stale
        self.weight_by_examples = weight_by_examples
        self._rng = np.random.default_rng(seed)
        self.round_index = 0
        self.history: list[RoundRecord] = []
        self.last_aggregate: Optional[dict[str, np.ndarray]] = None
        self._stale_updates: list[GradientUpdate] = []

    # ------------------------------------------------------------------
    # Hooks a dishonest subclass overrides
    # ------------------------------------------------------------------
    def prepare_broadcast(self) -> ModelBroadcast:
        """Build the round's broadcast; honest servers send the true state."""
        return ModelBroadcast(
            round_index=self.round_index, state=self.model.state_dict()
        )

    def inspect_updates(self, updates: list[GradientUpdate]) -> list[dict]:
        """Hook called with raw client updates; honest servers do nothing."""
        return []

    def broadcast_to(
        self, client: Client, broadcast: ModelBroadcast
    ) -> ModelBroadcast:
        """Per-client broadcast hook; honest servers send everyone the same
        state.  A dishonest subclass can substitute client-customized
        parameters here (the LOKI-style per-client model manipulation)."""
        return broadcast

    def inspect_aggregate(
        self, aggregated: dict[str, np.ndarray]
    ) -> list[dict]:
        """Hook called with the round's aggregate; honest servers do nothing."""
        return []

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def select_clients(self) -> list[Client]:
        """Uniformly sample this round's ``clients_per_round`` participants."""
        indices = self._rng.choice(
            len(self.clients), size=self.clients_per_round, replace=False
        )
        return [self.clients[i] for i in indices]

    def simulate_participation(
        self, participants: Sequence[Client]
    ) -> tuple[list[Client], list[Client], list[Client]]:
        """Split the selected clients into (active, dropped, stragglers).

        Each selected client independently drops with ``dropout_rate``;
        a survivor then straggles with ``straggler_rate``.  When both
        rates are zero no randomness is consumed, so fixed-participation
        federations reproduce the seed's RNG stream exactly.
        """
        if self.dropout_rate == 0.0 and self.straggler_rate == 0.0:
            return list(participants), [], []
        active: list[Client] = []
        dropped: list[Client] = []
        stragglers: list[Client] = []
        for client in participants:
            if self._rng.random() < self.dropout_rate:
                dropped.append(client)
            elif self._rng.random() < self.straggler_rate:
                stragglers.append(client)
            else:
                active.append(client)
        return active, dropped, stragglers

    def apply_aggregate(self, aggregated: dict[str, np.ndarray]) -> None:
        """w_{t+1} = w_t - eta * aggregated gradient (Eq. 1)."""
        params = dict(self.model.named_parameters())
        for name, gradient in aggregated.items():
            if name in params:
                params[name].data -= self.learning_rate * gradient

    def run_round(self) -> RoundRecord:
        """One full protocol round under the configured scenario.

        A round always completes: if no update arrives at all (or a
        secure-aggregation round aborts below its recovery threshold),
        the model is simply left unchanged and the record shows an empty
        participant list with ``mean_loss = nan``.  ``mean_loss``
        averages over every update that entered the aggregate, stale
        arrivals included.

        Under a protocol aggregator (``requires_commitment``) the round
        takes the commit-then-recover shape: every *selected* client
        commits mask material before uploads exist, so clients lost to
        dropout or straggling after that point are recovered through the
        protocol's unmasking phase rather than resampled.  Late uploads
        are discarded outright — a stale masked payload carries mask
        material of a finished round and can never be unmasked later —
        and :meth:`inspect_updates` is skipped entirely because the
        server only ever sees masked payloads (aggregate-level hooks
        still fire; whether aggregate-inversion attacks survive real
        secure aggregation is exactly the question the secagg sweeps
        ask).
        """
        protocol_mode = getattr(self.aggregator, "requires_commitment", False)
        broadcast = self.prepare_broadcast()
        selected = self.select_clients()
        active, dropped, stragglers = self.simulate_participation(selected)
        updates = [
            client.local_update(self.broadcast_to(client, broadcast))
            for client in active
        ]
        late = (
            []
            if protocol_mode
            else [
                client.local_update(self.broadcast_to(client, broadcast))
                for client in stragglers
            ]
        )
        stale = self._stale_updates if self.accept_stale else []
        self._stale_updates = late
        # Inspect updates in the round they are *aggregated*: fresh ones
        # now, late ones only if/when they re-enter as stale arrivals —
        # inspecting `late` here would attribute next round's aggregate
        # members to this round's record (and count discarded updates
        # when accept_stale is off).
        attack_events = [] if protocol_mode else self.inspect_updates(updates + stale)
        arrivals = updates + stale
        secagg_meta: dict | None = None
        weights = (
            [u.num_examples for u in arrivals]
            if (self.weight_by_examples and arrivals)
            else None
        )
        aggregated = None
        if arrivals:
            # Each update is packed into the contiguous round buffer on
            # arrival, so the aggregation itself is a single reduction.
            buffer = RoundBuffer.for_updates([u.gradients for u in arrivals])
            if protocol_mode:
                try:
                    aggregated = self.aggregator.aggregate_committed(
                        buffer,
                        survivor_ids=[u.client_id for u in arrivals],
                        committed_ids=[c.client_id for c in selected],
                        round_index=self.round_index,
                        weights=weights,
                    )
                    secagg_meta = dict(self.aggregator.last_metadata)
                except BelowThresholdError as error:
                    secagg_meta = {
                        "protocol": self.aggregator.name,
                        "aborted": True,
                        "survivors": error.survivors,
                        "threshold": error.threshold,
                    }
                    arrivals = []
            else:
                aggregated = self.aggregator.aggregate_buffer(
                    buffer, weights, round_index=self.round_index
                )
        if aggregated is not None:
            self.apply_aggregate(aggregated)
            self.last_aggregate = aggregated
            attack_events = attack_events + self.inspect_aggregate(aggregated)
        else:
            self.last_aggregate = None
        record = RoundRecord(
            round_index=self.round_index,
            participant_ids=[u.client_id for u in arrivals],
            mean_loss=(
                float(np.mean([u.loss for u in arrivals]))
                if arrivals
                else float("nan")
            ),
            attack_events=attack_events,
            selected_ids=[c.client_id for c in selected],
            dropped_ids=[c.client_id for c in dropped],
            straggler_ids=[c.client_id for c in stragglers],
            stale_ids=[u.client_id for u in stale],
            aggregator=self.aggregator.name,
            weighting=self.aggregator.effective_weighting(weights),
            secagg=secagg_meta,
        )
        self.history.append(record)
        self.round_index += 1
        return record

    def run(self, num_rounds: int) -> list[RoundRecord]:
        """Run ``num_rounds`` consecutive protocol rounds."""
        return [self.run_round() for _ in range(num_rounds)]


class DishonestServer(Server):
    """An actively dishonest server running a reconstruction attack.

    Before each broadcast it lets ``attack.craft`` overwrite the malicious
    layer of the global model; after collecting updates it inverts the
    targeted client's gradients.  Reconstructions are stored in
    :attr:`reconstructions` keyed by ``(round_index, client_id)`` — keying
    by round alone would let a later client's result silently clobber an
    earlier one when every client is targeted (``target_client_id=None``),
    exactly the multi-victim regime large-scale attacks operate in.  Use
    :meth:`round_reconstructions` for everything captured in one round.
    All honest-server scenario knobs (sampling, dropout, stragglers,
    aggregator) pass through ``**server_kwargs``.

    Large-scale attacks opt into two further hooks through class
    attributes on the attack object:

    - ``per_client_crafting`` — the attack's :meth:`craft_for_client` is
      called per participant, so each client receives its own manipulated
      parameters (LOKI's per-client-disjoint neuron blocks).  The fleet's
      ids are handed to ``attack.assign_clients`` once, at construction.
    - ``reconstructs_from_aggregate`` — per-update inversion is skipped
      and the attack inverts the round's FedAvg *aggregate* instead
      (``reconstruct_per_client``), the regime where secure aggregation
      alone does not protect individual updates.
    """

    def __init__(
        self,
        model: Module,
        clients: Sequence[Client],
        attack: ActiveReconstructionAttack,
        target_client_id: Optional[int] = None,
        **server_kwargs,
    ) -> None:
        super().__init__(model, clients, **server_kwargs)
        self.attack = attack
        self.target_client_id = target_client_id
        self.reconstructions: dict[tuple[int, int], ReconstructionResult] = {}
        if hasattr(attack, "assign_clients"):
            attack.assign_clients([client.client_id for client in self.clients])

    def prepare_broadcast(self) -> ModelBroadcast:
        """Craft the malicious model, then broadcast it as if honest.

        Per-client-crafting attacks skip the shared craft entirely: every
        delivered broadcast is rebuilt in :meth:`broadcast_to`, so a union
        craft here would be paid each round and then discarded.
        """
        if not getattr(self.attack, "per_client_crafting", False):
            self.attack.craft(self.model)
        return ModelBroadcast(
            round_index=self.round_index, state=self.model.state_dict()
        )

    def broadcast_to(
        self, client: Client, broadcast: ModelBroadcast
    ) -> ModelBroadcast:
        """Substitute client-customized parameters when the attack asks.

        ``state_dict`` snapshots copies, so re-crafting the server model
        for the next client never mutates an already-dispatched broadcast.
        """
        if not getattr(self.attack, "per_client_crafting", False):
            return broadcast
        self.attack.craft_for_client(self.model, client.client_id)
        return ModelBroadcast(
            round_index=broadcast.round_index, state=self.model.state_dict()
        )

    def inspect_updates(self, updates: list[GradientUpdate]) -> list[dict]:
        """Invert every targeted update that reaches the server this round.

        Aggregate-reconstructing attacks skip this path entirely: their
        whole point is that the server never needs the individual updates
        (it may not even see them under secure aggregation).
        """
        if getattr(self.attack, "reconstructs_from_aggregate", False):
            return []
        events = []
        for update in updates:
            targeted = (
                self.target_client_id is None
                or update.client_id == self.target_client_id
            )
            if not targeted:
                continue
            result = self.attack.reconstruct(update.gradients)
            self.reconstructions[(update.round_index, update.client_id)] = result
            events.append(
                {
                    "round": update.round_index,
                    "client_id": update.client_id,
                    "num_reconstructions": len(result),
                    "attack": self.attack.name,
                }
            )
        return events

    def inspect_aggregate(
        self, aggregated: dict[str, np.ndarray]
    ) -> list[dict]:
        """Invert the round's aggregate for attacks that reconstruct there."""
        if not getattr(self.attack, "reconstructs_from_aggregate", False):
            return []
        events = []
        per_client = self.attack.reconstruct_per_client(aggregated)
        for client_id in sorted(per_client):
            targeted = (
                self.target_client_id is None
                or client_id == self.target_client_id
            )
            if not targeted:
                continue
            result = per_client[client_id]
            self.reconstructions[(self.round_index, client_id)] = result
            events.append(
                {
                    "round": self.round_index,
                    "client_id": client_id,
                    "num_reconstructions": len(result),
                    "attack": self.attack.name,
                    "from_aggregate": True,
                }
            )
        return events

    def round_reconstructions(
        self, round_index: int
    ) -> list[tuple[int, ReconstructionResult]]:
        """All ``(client_id, result)`` pairs captured in ``round_index``.

        Pairs come back in arrival order (insertion order of the round's
        inversions), so multi-victim rounds keep every client's result.
        """
        return [
            (client_id, result)
            for (captured_round, client_id), result in self.reconstructions.items()
            if captured_round == round_index
        ]
