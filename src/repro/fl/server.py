"""FL servers: the honest coordinator and the actively dishonest attacker.

:class:`Server` implements the paper's Sec. II-A protocol: per round,
sample ``M`` of ``N`` clients, broadcast the global parameters, aggregate
the returned gradients, and take a gradient step (Eq. 1).  The server
owns the *protocol* — selection, aggregation, secure-aggregation
commitment windows, dishonest hooks — and delegates *time* to the
event-driven :class:`~repro.fl.engine.RoundEngine`: clients are
dispatched through a pluggable :class:`~repro.fl.arrivals.ArrivalProcess`,
updates ingest into the round buffer as their completion events pop on
the virtual clock, and the configured cutoff decides when the round
closes.  Under the default configuration (rate-based
:class:`~repro.fl.arrivals.InstantArrivals` + degenerate count cutoff)
the engine reproduces the legacy synchronous loop's round records
byte-for-byte; a :class:`~repro.fl.engine.TimeCutoff` or a trace-driven
arrival process makes dropout and straggling emergent timing outcomes
instead of coin flips.

Clients live in a :class:`~repro.fl.fleet.Fleet`: registering 10k–1M
users costs a factory and a count, and a ``Client`` object (with its
shard and model) only materializes when the engine actually dispatches
that id.

:class:`DishonestServer` additionally manipulates the global model before
broadcasting (the paper's threat model) and runs gradient inversion on a
targeted client's update.  It still performs the normal aggregation so the
protocol looks honest from the outside.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.attacks.base import ActiveReconstructionAttack, ReconstructionResult
from repro.fl.aggregators import Aggregator, RoundBuffer, make_aggregator
from repro.fl.arrivals import ArrivalProcess, make_arrivals
from repro.fl.client import Client
from repro.fl.engine import CountCutoff, RoundEngine, TimeCutoff, VirtualClock
from repro.fl.fleet import Fleet
from repro.fl.messages import GradientUpdate, ModelBroadcast, RoundRecord
from repro.fl.secagg.base import BelowThresholdError
from repro.nn.module import Module


class Server:
    """Honest FL coordinator implementing gradient-averaged FedSGD (Eq. 1).

    Scenario knobs:

    - ``clients_per_round``: per-round uniform sampling of the fleet.
    - ``dropout_rate`` / ``straggler_rate``: the legacy rate-based
      participation model, implemented by the compat arrival process —
      a selected client fails before uploading with ``dropout_rate``; a
      survivor misses the deadline with ``straggler_rate``.  Late updates
      are dropped unless ``accept_stale=True``, in which case they fold
      into the *next* round's aggregate.
    - ``arrivals`` / ``arrival_options``: a named arrival process
      (``"instant"``, ``"uniform"``, ``"tiered"``, ``"tiered-diurnal"``)
      or an :class:`~repro.fl.arrivals.ArrivalProcess` instance.  Under
      trace-driven processes the rate knobs must stay zero — lateness
      and failure come from the timing traces.
    - ``cutoff``: a :class:`~repro.fl.engine.CountCutoff` or
      :class:`~repro.fl.engine.TimeCutoff`; ``None`` is the legacy
      wait-for-everyone count cutoff.
    - ``aggregator``: an :class:`~repro.fl.aggregators.Aggregator`
      instance, subclass, or registry name (``"fedavg"``, ``"median"``,
      ``"trimmed_mean"``, ``"masked_sum"``, and the secure-aggregation
      protocol rules ``"secagg"`` / ``"secagg_oneshot"``, which run
      commit-then-drop rounds — see :mod:`repro.fl.secagg`).
    - ``weight_by_examples``: weight the aggregate by each update's
      ``num_examples`` instead of uniformly (only meaningful for rules
      that honour weights, i.e. FedAvg).

    ``clients`` may be a concrete client sequence (ids must be
    ``0..n-1``) or a lazy :class:`~repro.fl.fleet.Fleet`; either way the
    server only materializes the clients it actually dispatches.
    """

    def __init__(
        self,
        model: Module,
        clients: "Sequence[Client] | Fleet",
        learning_rate: float = 0.1,
        clients_per_round: Optional[int] = None,
        aggregator: "str | type[Aggregator] | Aggregator" = "fedavg",
        dropout_rate: float = 0.0,
        straggler_rate: float = 0.0,
        accept_stale: bool = False,
        weight_by_examples: bool = False,
        seed: int = 0,
        arrivals: "str | ArrivalProcess | None" = None,
        arrival_options: Optional[dict] = None,
        cutoff: "CountCutoff | TimeCutoff | None" = None,
        clock: Optional[VirtualClock] = None,
    ) -> None:
        if isinstance(clients, Fleet):
            self.fleet = clients
        else:
            if not clients:
                raise ValueError("server needs at least one client")
            self.fleet = Fleet.from_clients(list(clients))
        for rate, label in (
            (dropout_rate, "dropout_rate"),
            (straggler_rate, "straggler_rate"),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{label} must be in [0, 1]")
        self.model = model
        self.learning_rate = learning_rate
        self.clients_per_round = clients_per_round or len(self.fleet)
        self.clients_per_round = min(self.clients_per_round, len(self.fleet))
        self.aggregator = make_aggregator(aggregator)
        self.dropout_rate = dropout_rate
        self.straggler_rate = straggler_rate
        self.accept_stale = accept_stale
        self.weight_by_examples = weight_by_examples
        self._rng = np.random.default_rng(seed)
        self.clock = clock if clock is not None else VirtualClock()
        self.arrivals = make_arrivals(
            arrivals,
            dropout_rate=dropout_rate,
            straggler_rate=straggler_rate,
            seed=seed,
            **(arrival_options or {}),
        )
        self.cutoff = cutoff if cutoff is not None else CountCutoff()
        self.engine = RoundEngine(self.clock, self.arrivals, self.cutoff)
        self.round_index = 0
        self.history: list[RoundRecord] = []
        self.last_aggregate: Optional[dict[str, np.ndarray]] = None
        self._stale_updates: list[GradientUpdate] = []

    @property
    def clients(self) -> list[Client]:
        """Every client, materialized — the legacy eager view.

        Kept for call sites that index or iterate the full roster; fleet-
        scale code should use :attr:`fleet` (ids without materialization).
        """
        return self.fleet.materialize_all()

    # ------------------------------------------------------------------
    # Hooks a dishonest subclass overrides
    # ------------------------------------------------------------------
    def prepare_broadcast(self) -> ModelBroadcast:
        """Build the round's broadcast; honest servers send the true state."""
        return ModelBroadcast(
            round_index=self.round_index, state=self.model.state_dict()
        )

    def inspect_updates(self, updates: list[GradientUpdate]) -> list[dict]:
        """Hook called with raw client updates; honest servers do nothing."""
        return []

    def broadcast_to(
        self, client: Client, broadcast: ModelBroadcast
    ) -> ModelBroadcast:
        """Per-client broadcast hook; honest servers send everyone the same
        state.  A dishonest subclass can substitute client-customized
        parameters here (the LOKI-style per-client model manipulation)."""
        return broadcast

    def inspect_aggregate(
        self, aggregated: dict[str, np.ndarray]
    ) -> list[dict]:
        """Hook called with the round's aggregate; honest servers do nothing."""
        return []

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def select_client_ids(self) -> list[int]:
        """Uniformly sample this round's ``clients_per_round`` participant ids.

        Selection is by id, so sampling a cohort from a million-user
        fleet materializes nothing.
        """
        indices = self._rng.choice(
            len(self.fleet), size=self.clients_per_round, replace=False
        )
        return [int(index) for index in indices]

    def select_clients(self) -> list[Client]:
        """Sample and materialize this round's participants (legacy view)."""
        return self.fleet.get_many(self.select_client_ids())

    def apply_aggregate(self, aggregated: dict[str, np.ndarray]) -> None:
        """w_{t+1} = w_t - eta * aggregated gradient (Eq. 1)."""
        params = dict(self.model.named_parameters())
        for name, gradient in aggregated.items():
            if name in params:
                params[name].data -= self.learning_rate * gradient

    @property
    def _retains_update_objects(self) -> bool:
        """Whether per-update gradient dicts must outlive buffer ingest.

        Only an overridden :meth:`inspect_updates` ever reads a fresh
        update's gradients after they are packed into the round buffer;
        the honest no-op lets the engine release them at ingest so large
        rounds hold one matrix, not thousands of dicts.
        """
        return type(self).inspect_updates is not Server.inspect_updates

    def run_round(self) -> RoundRecord:
        """One full protocol round under the configured scenario.

        The engine owns the round's timeline: it schedules the selected
        cohort through the arrival process, pops completion events in
        virtual-time order, packs each on-time update into the round
        buffer as it lands, and closes the round at the configured
        cutoff.  Everything after the ledger — stale folding, hooks,
        aggregation, the model step — is protocol and stays here.

        A round always completes: if no update arrives at all (or a
        secure-aggregation round aborts below its recovery threshold),
        the model is simply left unchanged and the record shows an empty
        participant list with ``mean_loss = nan``.  ``mean_loss``
        averages over every update that entered the aggregate, stale
        arrivals included.

        Under a protocol aggregator (``requires_commitment``) the round
        takes the commit-then-recover shape: every *selected* client
        commits mask material before uploads exist, so clients lost to
        dropout or straggling after that point are recovered through the
        protocol's unmasking phase rather than resampled.  Late uploads
        are discarded outright — a stale masked payload carries mask
        material of a finished round and can never be unmasked later —
        and :meth:`inspect_updates` is skipped entirely because the
        server only ever sees masked payloads (aggregate-level hooks
        still fire; whether aggregate-inversion attacks survive real
        secure aggregation is exactly the question the secagg sweeps
        ask).
        """
        protocol_mode = getattr(self.aggregator, "requires_commitment", False)
        broadcast = self.prepare_broadcast()
        selected_ids = self.select_client_ids()
        stale = self._stale_updates if self.accept_stale else []

        def compute(client_id: int) -> GradientUpdate:
            client = self.fleet.get(client_id)
            return client.local_update(self.broadcast_to(client, broadcast))

        ledger = self.engine.run_round(
            selected_ids,
            self.round_index,
            self._rng,
            compute,
            compute_late=not protocol_mode,
            extra_capacity=len(stale),
            release_gradients=not self._retains_update_objects,
        )
        updates = ledger.fresh
        self._stale_updates = ledger.late
        # Inspect updates in the round they are *aggregated*: fresh ones
        # now, late ones only if/when they re-enter as stale arrivals —
        # inspecting the late list here would attribute next round's
        # aggregate members to this round's record (and count discarded
        # updates when accept_stale is off).
        attack_events = (
            [] if protocol_mode else self.inspect_updates(updates + stale)
        )
        arrivals = updates + stale
        secagg_meta: dict | None = None
        weights = (
            [u.num_examples for u in arrivals]
            if (self.weight_by_examples and arrivals)
            else None
        )
        aggregated = None
        if arrivals:
            # Fresh rows were packed at ingest time by the engine; stale
            # arrivals append after them, reproducing the legacy
            # fresh-then-stale row order exactly.
            buffer = ledger.buffer
            if buffer is None:
                buffer = RoundBuffer.for_updates([u.gradients for u in stale])
            else:
                for update in stale:
                    buffer.add(update.gradients)
            if protocol_mode:
                try:
                    aggregated = self.aggregator.aggregate_committed(
                        buffer,
                        survivor_ids=[u.client_id for u in arrivals],
                        committed_ids=list(selected_ids),
                        round_index=self.round_index,
                        weights=weights,
                    )
                    secagg_meta = dict(self.aggregator.last_metadata)
                except BelowThresholdError as error:
                    secagg_meta = {
                        "protocol": self.aggregator.name,
                        "aborted": True,
                        "survivors": error.survivors,
                        "threshold": error.threshold,
                    }
                    arrivals = []
            else:
                aggregated = self.aggregator.aggregate_buffer(
                    buffer, weights, round_index=self.round_index
                )
        if aggregated is not None:
            self.apply_aggregate(aggregated)
            self.last_aggregate = aggregated
            attack_events = attack_events + self.inspect_aggregate(aggregated)
        else:
            self.last_aggregate = None
        record = RoundRecord(
            round_index=self.round_index,
            participant_ids=[u.client_id for u in arrivals],
            mean_loss=(
                float(np.mean([u.loss for u in arrivals]))
                if arrivals
                else float("nan")
            ),
            attack_events=attack_events,
            selected_ids=list(selected_ids),
            dropped_ids=list(ledger.dropped_ids),
            straggler_ids=list(ledger.straggler_ids),
            stale_ids=[u.client_id for u in stale],
            aggregator=self.aggregator.name,
            weighting=self.aggregator.effective_weighting(weights),
            secagg=secagg_meta,
            timing=ledger.timing,
        )
        self.history.append(record)
        self.round_index += 1
        return record

    def run(self, num_rounds: int) -> list[RoundRecord]:
        """Run ``num_rounds`` consecutive protocol rounds."""
        return [self.run_round() for _ in range(num_rounds)]


class DishonestServer(Server):
    """An actively dishonest server running a reconstruction attack.

    Before each broadcast it lets ``attack.craft`` overwrite the malicious
    layer of the global model; after collecting updates it inverts the
    targeted client's gradients.  Reconstructions are stored in
    :attr:`reconstructions` keyed by ``(round_index, client_id)`` — keying
    by round alone would let a later client's result silently clobber an
    earlier one when every client is targeted (``target_client_id=None``),
    exactly the multi-victim regime large-scale attacks operate in.  Use
    :meth:`round_reconstructions` for everything captured in one round.
    All honest-server scenario knobs (sampling, dropout, stragglers,
    aggregator, arrival processes, cutoffs) pass through
    ``**server_kwargs``.

    Large-scale attacks opt into two further hooks through class
    attributes on the attack object:

    - ``per_client_crafting`` — the attack's :meth:`craft_for_client` is
      called per participant, so each client receives its own manipulated
      parameters (LOKI's per-client-disjoint neuron blocks).  The fleet's
      ids are handed to ``attack.assign_clients`` once, at construction —
      ids only, so even a million-user fleet materializes nothing here.
    - ``reconstructs_from_aggregate`` — per-update inversion is skipped
      and the attack inverts the round's FedAvg *aggregate* instead
      (``reconstruct_per_client``), the regime where secure aggregation
      alone does not protect individual updates.
    """

    def __init__(
        self,
        model: Module,
        clients: "Sequence[Client] | Fleet",
        attack: ActiveReconstructionAttack,
        target_client_id: Optional[int] = None,
        **server_kwargs,
    ) -> None:
        super().__init__(model, clients, **server_kwargs)
        self.attack = attack
        self.target_client_id = target_client_id
        self.reconstructions: dict[tuple[int, int], ReconstructionResult] = {}
        if hasattr(attack, "assign_clients"):
            attack.assign_clients(list(self.fleet.client_ids))

    def prepare_broadcast(self) -> ModelBroadcast:
        """Craft the malicious model, then broadcast it as if honest.

        Per-client-crafting attacks skip the shared craft entirely: every
        delivered broadcast is rebuilt in :meth:`broadcast_to`, so a union
        craft here would be paid each round and then discarded.
        """
        if not getattr(self.attack, "per_client_crafting", False):
            self.attack.craft(self.model)
        return ModelBroadcast(
            round_index=self.round_index, state=self.model.state_dict()
        )

    def broadcast_to(
        self, client: Client, broadcast: ModelBroadcast
    ) -> ModelBroadcast:
        """Substitute client-customized parameters when the attack asks.

        ``state_dict`` snapshots copies, so re-crafting the server model
        for the next client never mutates an already-dispatched broadcast.
        The engine pops completions in deterministic virtual-time order,
        so the per-client craft sequence is as reproducible as the legacy
        selection-order loop.
        """
        if not getattr(self.attack, "per_client_crafting", False):
            return broadcast
        self.attack.craft_for_client(self.model, client.client_id)
        return ModelBroadcast(
            round_index=broadcast.round_index, state=self.model.state_dict()
        )

    def inspect_updates(self, updates: list[GradientUpdate]) -> list[dict]:
        """Invert every targeted update that reaches the server this round.

        Aggregate-reconstructing attacks skip this path entirely: their
        whole point is that the server never needs the individual updates
        (it may not even see them under secure aggregation).
        """
        if getattr(self.attack, "reconstructs_from_aggregate", False):
            return []
        events = []
        for update in updates:
            targeted = (
                self.target_client_id is None
                or update.client_id == self.target_client_id
            )
            if not targeted:
                continue
            result = self.attack.reconstruct(update.gradients)
            self.reconstructions[(update.round_index, update.client_id)] = result
            events.append(
                {
                    "round": update.round_index,
                    "client_id": update.client_id,
                    "num_reconstructions": len(result),
                    "attack": self.attack.name,
                }
            )
        return events

    def inspect_aggregate(
        self, aggregated: dict[str, np.ndarray]
    ) -> list[dict]:
        """Invert the round's aggregate for attacks that reconstruct there."""
        if not getattr(self.attack, "reconstructs_from_aggregate", False):
            return []
        events = []
        per_client = self.attack.reconstruct_per_client(aggregated)
        for client_id in sorted(per_client):
            targeted = (
                self.target_client_id is None
                or client_id == self.target_client_id
            )
            if not targeted:
                continue
            result = per_client[client_id]
            self.reconstructions[(self.round_index, client_id)] = result
            events.append(
                {
                    "round": self.round_index,
                    "client_id": client_id,
                    "num_reconstructions": len(result),
                    "attack": self.attack.name,
                    "from_aggregate": True,
                }
            )
        return events

    def round_reconstructions(
        self, round_index: int
    ) -> list[tuple[int, ReconstructionResult]]:
        """All ``(client_id, result)`` pairs captured in ``round_index``.

        Pairs come back in arrival order (insertion order of the round's
        inversions), so multi-victim rounds keep every client's result.
        """
        return [
            (client_id, result)
            for (captured_round, client_id), result in self.reconstructions.items()
            if captured_round == round_index
        ]
