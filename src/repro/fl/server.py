"""FL servers: the honest coordinator and the actively dishonest attacker.

:class:`Server` implements the paper's Sec. II-A protocol: per round,
sample ``M`` of ``N`` clients, broadcast the global parameters, average the
returned gradients, and take a gradient step (Eq. 1).

:class:`DishonestServer` additionally manipulates the global model before
broadcasting (the paper's threat model) and runs gradient inversion on a
targeted client's update.  It still performs the normal aggregation so the
protocol looks honest from the outside.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.attacks.base import ActiveReconstructionAttack, ReconstructionResult
from repro.fl.client import Client
from repro.fl.gradients import average_gradients
from repro.fl.messages import GradientUpdate, ModelBroadcast, RoundRecord
from repro.nn.module import Module


class Server:
    """Honest FL coordinator implementing gradient-averaged FedSGD (Eq. 1)."""

    def __init__(
        self,
        model: Module,
        clients: Sequence[Client],
        learning_rate: float = 0.1,
        clients_per_round: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if not clients:
            raise ValueError("server needs at least one client")
        self.model = model
        self.clients = list(clients)
        self.learning_rate = learning_rate
        self.clients_per_round = clients_per_round or len(self.clients)
        self.clients_per_round = min(self.clients_per_round, len(self.clients))
        self._rng = np.random.default_rng(seed)
        self.round_index = 0
        self.history: list[RoundRecord] = []

    # ------------------------------------------------------------------
    # Hooks a dishonest subclass overrides
    # ------------------------------------------------------------------
    def prepare_broadcast(self) -> ModelBroadcast:
        """Build the round's broadcast; honest servers send the true state."""
        return ModelBroadcast(
            round_index=self.round_index, state=self.model.state_dict()
        )

    def inspect_updates(self, updates: list[GradientUpdate]) -> list[dict]:
        """Hook called with raw client updates; honest servers do nothing."""
        return []

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def select_clients(self) -> list[Client]:
        indices = self._rng.choice(
            len(self.clients), size=self.clients_per_round, replace=False
        )
        return [self.clients[i] for i in indices]

    def apply_aggregate(self, aggregated: dict[str, np.ndarray]) -> None:
        """w_{t+1} = w_t - eta * mean gradient (Eq. 1)."""
        params = dict(self.model.named_parameters())
        for name, gradient in aggregated.items():
            if name in params:
                params[name].data -= self.learning_rate * gradient

    def run_round(self) -> RoundRecord:
        broadcast = self.prepare_broadcast()
        participants = self.select_clients()
        updates = [client.local_update(broadcast) for client in participants]
        attack_events = self.inspect_updates(updates)
        aggregated = average_gradients([u.gradients for u in updates])
        self.apply_aggregate(aggregated)
        record = RoundRecord(
            round_index=self.round_index,
            participant_ids=[u.client_id for u in updates],
            mean_loss=float(np.mean([u.loss for u in updates])),
            attack_events=attack_events,
        )
        self.history.append(record)
        self.round_index += 1
        return record

    def run(self, num_rounds: int) -> list[RoundRecord]:
        return [self.run_round() for _ in range(num_rounds)]


class DishonestServer(Server):
    """An actively dishonest server running a reconstruction attack.

    Before each broadcast it lets ``attack.craft`` overwrite the malicious
    layer of the global model; after collecting updates it inverts the
    targeted client's gradients.  Reconstructions are stored in
    :attr:`reconstructions` keyed by round.
    """

    def __init__(
        self,
        model: Module,
        clients: Sequence[Client],
        attack: ActiveReconstructionAttack,
        target_client_id: Optional[int] = None,
        learning_rate: float = 0.1,
        clients_per_round: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(
            model,
            clients,
            learning_rate=learning_rate,
            clients_per_round=clients_per_round,
            seed=seed,
        )
        self.attack = attack
        self.target_client_id = target_client_id
        self.reconstructions: dict[int, ReconstructionResult] = {}

    def prepare_broadcast(self) -> ModelBroadcast:
        self.attack.craft(self.model)
        return ModelBroadcast(
            round_index=self.round_index, state=self.model.state_dict()
        )

    def inspect_updates(self, updates: list[GradientUpdate]) -> list[dict]:
        events = []
        for update in updates:
            targeted = (
                self.target_client_id is None
                or update.client_id == self.target_client_id
            )
            if not targeted:
                continue
            result = self.attack.reconstruct(update.gradients)
            self.reconstructions[update.round_index] = result
            events.append(
                {
                    "round": update.round_index,
                    "client_id": update.client_id,
                    "num_reconstructions": len(result),
                    "attack": self.attack.name,
                }
            )
        return events
