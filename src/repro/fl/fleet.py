"""Lazy client registries: million-user fleets without million-object cost.

A :class:`Fleet` maps client ids to :class:`~repro.fl.client.Client`
objects, but only builds the objects that are actually sampled into a
round.  Registration is O(1) in fleet size — the registry holds a factory
and a count, not a list — so a 1M-user federation costs nothing until the
server samples its first cohort, and then costs exactly the cohort.

The factory contract is ``factory(i).client_id == i`` for every ``i`` in
``range(size)``: a client's shard, loss, and RNG stream must be pure
functions of its id so that materialization order (which depends on
sampling, not registration) can never change behaviour.  Materialized
clients are cached — a client sampled in rounds 3 and 7 is the same
object, preserving its local RNG stream continuity across rounds exactly
as the eager list did.

``Fleet.from_clients`` wraps an existing eagerly-built list so every
legacy call site (tests, examples, the simulator) keeps working unchanged.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.fl.client import Client


class Fleet:
    """A lazily-materializing registry of ``size`` federated clients."""

    def __init__(self, size: int, factory: Callable[[int], Client]) -> None:
        if size <= 0:
            raise ValueError("fleet size must be positive")
        self.size = int(size)
        self._factory = factory
        self._cache: dict[int, Client] = {}

    @classmethod
    def from_clients(cls, clients: Sequence[Client]) -> "Fleet":
        """Wrap an eagerly-built client list (legacy construction path)."""
        if not clients:
            raise ValueError("fleet needs at least one client")
        by_id = {client.client_id: client for client in clients}
        if sorted(by_id) != list(range(len(clients))):
            raise ValueError(
                "client ids must be exactly 0..n-1 with no duplicates"
            )
        fleet = cls(len(clients), by_id.__getitem__)
        fleet._cache = by_id
        return fleet

    def __len__(self) -> int:
        return self.size

    def __contains__(self, client_id: int) -> bool:
        return 0 <= int(client_id) < self.size

    @property
    def client_ids(self) -> range:
        """Every registered id — no materialization."""
        return range(self.size)

    @property
    def materialized_count(self) -> int:
        """How many Client objects actually exist right now."""
        return len(self._cache)

    def get(self, client_id: int) -> Client:
        """Materialize (or fetch the cached) client for ``client_id``."""
        client_id = int(client_id)
        if client_id not in self:
            raise KeyError(f"client_id {client_id} outside fleet of {self.size}")
        client = self._cache.get(client_id)
        if client is None:
            client = self._factory(client_id)
            if client.client_id != client_id:
                raise ValueError(
                    f"fleet factory returned client_id {client.client_id} "
                    f"for requested id {client_id}"
                )
            self._cache[client_id] = client
        return client

    def get_many(self, client_ids: Sequence[int]) -> list[Client]:
        """Materialize a cohort in the given order."""
        return [self.get(client_id) for client_id in client_ids]

    def materialize_all(self) -> list[Client]:
        """Force every client into existence (legacy ``server.clients``)."""
        return [self.get(client_id) for client_id in self.client_ids]

    def __iter__(self) -> Iterator[Client]:
        return iter(self.materialize_all())

    def __repr__(self) -> str:
        return (
            f"Fleet(size={self.size}, "
            f"materialized={self.materialized_count})"
        )
