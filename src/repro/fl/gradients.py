"""Gradient computation: what an honest FL client uploads each round.

``compute_batch_gradients`` is the single chokepoint through which every
experiment obtains the summed/averaged batch gradients that the dishonest
server later inverts.  Keeping it tiny and shared guarantees the attacks see
exactly the same gradient algebra as honest training.
"""

from __future__ import annotations

import numpy as np

import repro.tensor.backend as backend
from repro.nn.module import Module
from repro.tensor import Tensor


def compute_batch_gradients(
    model: Module,
    loss_fn: Module,
    images: np.ndarray,
    labels: np.ndarray,
) -> tuple[dict[str, np.ndarray], float]:
    """Forward/backward on one batch; return (named gradients, loss value).

    The loss reduction (mean vs sum) is whatever ``loss_fn`` was built with;
    the reconstruction attacks are invariant to it because Eq. 6 divides two
    gradients carrying the same scale factor.
    """
    model.zero_grad()
    logits = model(Tensor(images))
    loss = loss_fn(logits, labels)
    loss.backward()
    # Fused kernels own their gradient buffers, so the dict can take the
    # arrays instead of copying them; the values are identical (the
    # reference mode keeps the pre-acceleration copy-out).
    return model.grad_dict(transfer=backend.FUSED), loss.item()


def per_sample_gradients(
    model: Module,
    loss_fn: Module,
    images: np.ndarray,
    labels: np.ndarray,
) -> list[dict[str, np.ndarray]]:
    """Per-example gradients via microbatching (used by the DP-SGD baseline)."""
    gradients = []
    for i in range(len(images)):
        grads, _ = compute_batch_gradients(
            model, loss_fn, images[i : i + 1], labels[i : i + 1]
        )
        gradients.append(grads)
    return gradients


def clip_gradient_dict(
    gradients: dict[str, np.ndarray], clip_norm: float
) -> dict[str, np.ndarray]:
    """Scale a gradient dict so its global L2 norm is at most ``clip_norm``."""
    total = np.sqrt(sum(float(np.sum(g ** 2)) for g in gradients.values()))
    scale = min(1.0, clip_norm / max(total, 1e-12))
    return {name: g * scale for name, g in gradients.items()}


def compute_defended_update(
    model,
    loss_fn,
    images: np.ndarray,
    labels: np.ndarray,
    defense,
    rng: np.random.Generator,
) -> tuple[dict[str, np.ndarray], float, int]:
    """The full client-side update pipeline with a defense attached.

    Applies every stage of the defense hook surface, in order: the batch
    hook (OASIS expansion / ATS replacement), gradient computation
    (per-sample clipped when the defense sets ``per_sample_clip``, plain
    batch otherwise), the gradient hook (pruning / update-level noising),
    and the finalize hook (batch-size-calibrated DP-SGD noise).  Returns
    (gradients, loss, original batch size).

    The reported example count is deliberately the *pre-expansion* batch
    size: OASIS expansion is a local privacy mechanism, not extra client
    data, so under example-weighted FedAvg a defended client must carry
    the same weight as an undefended one (reporting the expanded count
    would hand it 4-7x the influence).  The finalize hook still receives
    the expanded count, because noise calibration (DP-SGD's sigma*C/B)
    tracks the batch the gradients were actually averaged over.
    """
    num_examples = len(images)
    images, labels = defense.process_batch(images, labels, rng)
    if defense.per_sample_clip is not None:
        clipped = []
        losses = []
        for i in range(len(images)):
            grads, loss = compute_batch_gradients(
                model, loss_fn, images[i : i + 1], labels[i : i + 1]
            )
            clipped.append(clip_gradient_dict(grads, defense.per_sample_clip))
            losses.append(loss)
        gradients = average_gradients(clipped)
        loss_value = float(np.mean(losses))
    else:
        gradients, loss_value = compute_batch_gradients(
            model, loss_fn, images, labels
        )
    gradients = defense.process_gradients(gradients, rng)
    gradients = defense.finalize_update(gradients, len(images), rng)
    return gradients, loss_value, num_examples


def average_gradients(
    updates: list[dict[str, np.ndarray]],
    weights: list[float] | None = None,
) -> dict[str, np.ndarray]:
    """FedAvg aggregation of named gradient dicts (paper Eq. 1)."""
    if not updates:
        raise ValueError("no updates to aggregate")
    if weights is None:
        weights = [1.0] * len(updates)
    if len(weights) != len(updates):
        raise ValueError("weights/updates length mismatch")
    total = float(sum(weights))
    if total == 0.0:
        raise ValueError(
            "aggregation weights sum to zero; no update can carry the round"
        )
    aggregated = {
        name: np.zeros_like(value) for name, value in updates[0].items()
    }
    for update, weight in zip(updates, weights):
        if set(update) != set(aggregated):
            raise KeyError("updates carry mismatched parameter names")
        for name, value in update.items():
            aggregated[name] += (weight / total) * value
    return aggregated
