"""Protocol messages exchanged between the FL server and clients."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ModelBroadcast:
    """Server -> client: the global model for the current round.

    A dishonest server may have manipulated ``state`` before sending
    (paper threat model, Sec. III-A); clients cannot tell.
    """

    round_index: int
    state: dict[str, np.ndarray]


@dataclass
class GradientUpdate:
    """Client -> server: gradients computed on the local batch (Eq. 1)."""

    client_id: int
    round_index: int
    num_examples: int
    gradients: dict[str, np.ndarray]
    loss: float = 0.0


@dataclass
class RoundRecord:
    """Bookkeeping for one completed FL round."""

    round_index: int
    participant_ids: list[int]
    mean_loss: float
    attack_events: list[dict] = field(default_factory=list)
