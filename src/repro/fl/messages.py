"""Protocol messages exchanged between the FL server and clients."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ModelBroadcast:
    """Server -> client: the global model for the current round.

    A dishonest server may have manipulated ``state`` before sending
    (paper threat model, Sec. III-A); clients cannot tell.
    """

    round_index: int
    state: dict[str, np.ndarray]


@dataclass
class GradientUpdate:
    """Client -> server: gradients computed on the local batch (Eq. 1)."""

    client_id: int
    round_index: int
    num_examples: int
    gradients: dict[str, np.ndarray]
    loss: float = 0.0


@dataclass
class RoundRecord:
    """Bookkeeping for one completed FL round.

    ``participant_ids`` lists the clients whose updates actually entered
    the aggregate (survivors plus any stale stragglers folded in this
    round); the scenario fields break the selection down further:
    ``selected_ids`` is the server's per-round sample, ``dropped_ids`` the
    clients that failed before uploading, ``straggler_ids`` the clients
    whose updates missed the round deadline, and ``stale_ids`` the late
    updates from a *previous* round aggregated now (only when the server
    runs with ``accept_stale=True``).
    """

    round_index: int
    participant_ids: list[int]
    mean_loss: float
    attack_events: list[dict] = field(default_factory=list)
    selected_ids: list[int] = field(default_factory=list)
    dropped_ids: list[int] = field(default_factory=list)
    straggler_ids: list[int] = field(default_factory=list)
    stale_ids: list[int] = field(default_factory=list)
    aggregator: str = "fedavg"

    @property
    def num_selected(self) -> int:
        """How many clients the server sampled for this round."""
        return len(self.selected_ids)

    @property
    def participation_rate(self) -> float:
        """Fraction of selected clients whose update entered the aggregate.

        Returns 1.0 when no selection breakdown was recorded (legacy
        construction paths that only fill ``participant_ids``).
        """
        if not self.selected_ids:
            return 1.0
        fresh = len(self.participant_ids) - len(self.stale_ids)
        return fresh / len(self.selected_ids)
