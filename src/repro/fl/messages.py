"""Protocol messages exchanged between the FL server and clients."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ModelBroadcast:
    """Server -> client: the global model for the current round.

    A dishonest server may have manipulated ``state`` before sending
    (paper threat model, Sec. III-A); clients cannot tell.
    """

    round_index: int
    state: dict[str, np.ndarray]


@dataclass
class GradientUpdate:
    """Client -> server: gradients computed on the local batch (Eq. 1)."""

    client_id: int
    round_index: int
    num_examples: int
    gradients: dict[str, np.ndarray]
    loss: float = 0.0


@dataclass
class KeyAdvertisement:
    """Client -> server -> all: a client's public key for this round.

    First message of a Bonawitz-style round; every pair of committed
    clients derives its pairwise mask seed from the two advertisements.
    """

    client_id: int
    round_index: int
    public_key: int


@dataclass
class SecretShareBundle:
    """Client -> client (via server): Shamir shares of the sender's seeds.

    ``seed_share`` shares the sender's Diffie–Hellman secret key (so the
    server can cancel a *dropped* sender's pairwise masks) and
    ``self_mask_share`` shares the sender's self-mask seed (so the server
    can cancel a *surviving* sender's self mask).  ``share_x`` is the
    recipient's 1-indexed Shamir x-coordinate.
    """

    sender_id: int
    recipient_id: int
    round_index: int
    share_x: int
    seed_share: int
    self_mask_share: int


@dataclass
class MaskedUpload:
    """Client -> server: the masked quantized update.

    ``payload`` is uniformly random on its own — in the ``uint64`` ring
    for the Bonawitz-style protocol, in GF(2**61 - 1) for the one-shot
    recovery protocol.  The server learns an individual update only by
    breaking the masking, never from this message.
    """

    client_id: int
    round_index: int
    num_examples: int
    payload: np.ndarray
    loss: float = 0.0


@dataclass
class UnmaskRequest:
    """Server -> survivors: the round's survivor/dropped split.

    Asks each survivor for the shares the server needs: self-mask shares
    for the survivors, secret-key shares for the dropped.
    """

    round_index: int
    survivor_ids: list[int]
    dropped_ids: list[int]


@dataclass
class UnmaskResponse:
    """Survivor -> server: the shares answering an :class:`UnmaskRequest`.

    Maps sender id -> this survivor's share of that sender's self-mask
    seed (for survivors) or secret key (for dropped clients).  A client
    never reveals both kinds of share for the same sender — that would
    hand the server everything needed to unmask a live upload.
    """

    client_id: int
    round_index: int
    share_x: int
    self_mask_shares: dict[int, int] = field(default_factory=dict)
    seed_shares: dict[int, int] = field(default_factory=dict)


@dataclass
class EncodedMaskSegment:
    """Client -> client (via server): one Lagrange-coded mask segment.

    LightSecAgg-style offline phase: the sender's full-size mask is
    encoded into ``n`` segments, one per committed client, such that any
    ``threshold`` of them reconstruct the mask polynomial.
    """

    sender_id: int
    recipient_id: int
    round_index: int
    segment: np.ndarray


@dataclass
class AggregatedMaskSegment:
    """Survivor -> server: the one-shot recovery message.

    The survivor sums the encoded segments it holds *for the survivor
    set* and sends that single aggregate; ``threshold`` such messages let
    the server interpolate the summed mask directly — one round-trip,
    regardless of how many clients dropped.
    """

    client_id: int
    round_index: int
    segment: np.ndarray


@dataclass
class RoundRecord:
    """Bookkeeping for one completed FL round.

    ``participant_ids`` lists the clients whose updates actually entered
    the aggregate (survivors plus any stale stragglers folded in this
    round); the scenario fields break the selection down further:
    ``selected_ids`` is the server's per-round sample, ``dropped_ids`` the
    clients that failed before uploading, ``straggler_ids`` the clients
    whose updates missed the round deadline, and ``stale_ids`` the late
    updates from a *previous* round aggregated now (only when the server
    runs with ``accept_stale=True``).

    ``weighting`` records the weighting that was actually applied —
    ``"weighted"`` only when the server passed example-count weights *and*
    the aggregation rule honours weights, else ``"uniform"`` — so sweeps
    cannot misreport a weighted run through an unweighted rule.
    ``secagg`` is ``None`` outside protocol rounds; under a secure-
    aggregation protocol it carries the round's protocol metadata
    (committed/survivor counts, threshold, recovered dropouts, or the
    abort reason when survivors fell below threshold).

    ``timing`` is the event engine's virtual-clock annotation (open/close
    ticks, per-client arrival ticks, cutoff policy) when the federation
    runs a real arrival process or a non-default cutoff.  It stays
    ``None`` in the legacy-compatible configuration, so records produced
    by the event engine's degenerate count cutoff compare equal to
    pre-engine records field-for-field.
    """

    round_index: int
    participant_ids: list[int]
    mean_loss: float
    attack_events: list[dict] = field(default_factory=list)
    selected_ids: list[int] = field(default_factory=list)
    dropped_ids: list[int] = field(default_factory=list)
    straggler_ids: list[int] = field(default_factory=list)
    stale_ids: list[int] = field(default_factory=list)
    aggregator: str = "fedavg"
    weighting: str = "uniform"
    secagg: dict | None = None
    timing: dict | None = None

    @property
    def num_selected(self) -> int:
        """How many clients the server sampled for this round."""
        return len(self.selected_ids)

    @property
    def participation_rate(self) -> float:
        """Fraction of selected clients whose update entered the aggregate.

        Returns 1.0 when no selection breakdown was recorded (legacy
        construction paths that only fill ``participant_ids``).
        """
        if not self.selected_ids:
            return 1.0
        fresh = len(self.participant_ids) - len(self.stale_ids)
        return fresh / len(self.selected_ids)
