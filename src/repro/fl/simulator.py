"""High-level federated simulation: partitioning, assembly, evaluation.

Convenience layer that turns a dataset + model factory + defense into a
running federation, so examples and experiments stay short.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.data.synthetic import SyntheticImageDataset
from repro.defense.base import ClientDefense
from repro.fl.client import Client
from repro.fl.server import DishonestServer, Server
from repro.metrics.accuracy import accuracy
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.tensor import Tensor, no_grad


def partition_dataset(
    dataset: SyntheticImageDataset,
    num_clients: int,
    seed: int = 0,
) -> list[SyntheticImageDataset]:
    """IID partition of a dataset into ``num_clients`` equal shards."""
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    if len(dataset) < num_clients:
        raise ValueError("fewer samples than clients")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    shards = np.array_split(order, num_clients)
    return [dataset.subset(shard) for shard in shards]


@dataclass
class FederationConfig:
    """Knobs for assembling a simulation."""

    num_clients: int = 10
    clients_per_round: Optional[int] = None
    batch_size: int = 8
    learning_rate: float = 0.1
    seed: int = 0


class FederatedSimulation:
    """A ready-to-run federation over one dataset.

    ``model_factory`` must return a fresh model of identical architecture
    each call; clients each hold their own instance (as real devices would)
    and synchronize through state dicts.
    """

    def __init__(
        self,
        dataset: SyntheticImageDataset,
        model_factory: Callable[[], Module],
        config: FederationConfig,
        defense: Optional[ClientDefense] = None,
        attack=None,
        target_client_id: Optional[int] = None,
    ) -> None:
        self.config = config
        shards = partition_dataset(dataset, config.num_clients, seed=config.seed)
        loss_fn = CrossEntropyLoss()
        self.clients = [
            Client(
                client_id=i,
                dataset=shard,
                model=model_factory(),
                loss_fn=loss_fn,
                batch_size=config.batch_size,
                defense=defense,
                seed=config.seed,
            )
            for i, shard in enumerate(shards)
        ]
        global_model = model_factory()
        if attack is None:
            self.server: Server = Server(
                global_model,
                self.clients,
                learning_rate=config.learning_rate,
                clients_per_round=config.clients_per_round,
                seed=config.seed,
            )
        else:
            self.server = DishonestServer(
                global_model,
                self.clients,
                attack=attack,
                target_client_id=target_client_id,
                learning_rate=config.learning_rate,
                clients_per_round=config.clients_per_round,
                seed=config.seed,
            )

    def run(self, num_rounds: int):
        return self.server.run(num_rounds)

    def evaluate(self, dataset: SyntheticImageDataset, batch_size: int = 64) -> float:
        """Top-1 accuracy of the current global model on ``dataset``."""
        model = self.server.model
        model.eval()
        logits_all = []
        with no_grad():
            for start in range(0, len(dataset), batch_size):
                images = dataset.images[start : start + batch_size].astype(np.float64)
                logits_all.append(model(Tensor(images)).numpy())
        model.train()
        return accuracy(np.concatenate(logits_all), dataset.labels)
