"""High-level federated simulation: partitioning, assembly, evaluation.

Convenience layer that turns a dataset + model factory + defense into a
running federation, so examples and experiments stay short.  Scenarios are
described declaratively through :class:`FederationConfig`: IID or Dirichlet
label-skewed partitioning, per-round client sampling, dropout/straggler
rates, arrival processes and round cutoffs for the event engine, and the
server-side aggregation rule.  Setting ``fleet_size`` switches the
federation onto a lazy :class:`~repro.fl.fleet.Fleet`: clients (shard,
model, RNG stream) materialize only when sampled, so a 100k-user
registration costs a closure, not 100k objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.data.synthetic import SyntheticImageDataset
from repro.defense.base import ClientDefense
from repro.fl.aggregators import Aggregator, make_aggregator
from repro.fl.client import Client
from repro.fl.engine import CountCutoff, TimeCutoff, make_cutoff
from repro.fl.fleet import Fleet
from repro.fl.server import DishonestServer, Server
from repro.metrics.accuracy import accuracy
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.tensor import Tensor, no_grad
from repro.utils.rng import seed_sequence_for


def partition_dataset(
    dataset: SyntheticImageDataset,
    num_clients: int,
    seed: int = 0,
) -> list[SyntheticImageDataset]:
    """IID partition of a dataset into ``num_clients`` equal shards."""
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    if len(dataset) < num_clients:
        raise ValueError("fewer samples than clients")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    shards = np.array_split(order, num_clients)
    return [dataset.subset(shard) for shard in shards]


def dirichlet_partition_indices(
    labels: np.ndarray,
    num_clients: int,
    alpha: float,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """Dirichlet label-skew assignment of sample indices to clients.

    For each class, client shares are drawn from ``Dirichlet(alpha)`` and
    the class's (shuffled) samples are split at the cumulative-share
    boundaries, so every sample lands on exactly one client for any
    ``alpha > 0``.  Small ``alpha`` concentrates each class on few clients
    (strong non-IID); large ``alpha`` approaches IID.
    """
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    if not alpha > 0.0:
        raise ValueError("alpha must be positive")
    labels = np.asarray(labels)
    assignments: list[list[int]] = [[] for _ in range(num_clients)]
    for cls in np.unique(labels):
        indices = np.flatnonzero(labels == cls)
        rng.shuffle(indices)
        shares = rng.dirichlet(np.full(num_clients, alpha))
        bounds = np.floor(np.cumsum(shares) * len(indices)).astype(int)
        bounds = np.maximum.accumulate(np.clip(bounds, 0, len(indices)))
        bounds[-1] = len(indices)
        for client, piece in enumerate(np.split(indices, bounds[:-1])):
            assignments[client].extend(piece.tolist())
    return [np.asarray(sorted(a), dtype=np.int64) for a in assignments]


def rebalance_min_per_client(
    assignments: list[np.ndarray],
    labels: np.ndarray,
    min_per_client: int,
) -> list[np.ndarray]:
    """Move samples from surplus shards until every shard has the minimum.

    One vectorized deterministic pass.  Donors are the shards holding
    more than ``min_per_client``, drained richest-first; each donor gives
    away its most-abundant labels first, so topping up a starved client
    flattens the donor's label skew as little as possible — unlike the
    old pop-from-largest loop, which moved whatever sample happened to
    sit at the end of the donor's list, one sample per O(num_clients)
    scan.

    Deterministic by construction: donees are visited in index order
    (most-starved first), donations are ordered by ``np.lexsort`` over
    (donor label count descending, index), and no RNG is consumed —
    callers' random streams are untouched by rebalancing.
    """
    if min_per_client <= 0:
        return assignments
    labels = np.asarray(labels)
    sizes = np.asarray([len(a) for a in assignments], dtype=np.int64)
    deficits = np.maximum(min_per_client - sizes, 0)
    if not deficits.any():
        return assignments
    surpluses = np.maximum(sizes - min_per_client, 0)
    if deficits.sum() > surpluses.sum():
        raise ValueError("not enough samples to satisfy min_per_client")

    # Each donor's give-away queue: its own samples ordered so that the
    # most-abundant label's samples leave first (ties broken by index for
    # determinism).  Built once, consumed by slicing.
    donations: dict[int, list[int]] = {}
    for donor in np.flatnonzero(surpluses):
        shard = np.asarray(assignments[donor], dtype=np.int64)
        shard_labels = labels[shard]
        _, inverse, counts = np.unique(
            shard_labels, return_inverse=True, return_counts=True
        )
        order = np.lexsort((shard, -counts[inverse]))
        donations[donor] = shard[order][: surpluses[donor]].tolist()

    # Richest donors drain first; donees fill in index order.  Both
    # orders are pure functions of the shard sizes, never of dict or
    # insertion order.
    donor_order = sorted(donations, key=lambda i: (-surpluses[i], i))
    rebalanced = [list(a) for a in assignments]
    taken: dict[int, int] = {donor: 0 for donor in donor_order}
    cursor = 0
    for donee in np.flatnonzero(deficits):
        need = int(deficits[donee])
        while need > 0:
            donor = donor_order[cursor]
            available = donations[donor][taken[donor] :]
            if not available:
                cursor += 1
                continue
            grabbed = available[:need]
            taken[donor] += len(grabbed)
            need -= len(grabbed)
            moved = set(grabbed)
            rebalanced[donor] = [
                index for index in rebalanced[donor] if index not in moved
            ]
            rebalanced[donee].extend(grabbed)
    return [np.asarray(sorted(a), dtype=np.int64) for a in rebalanced]


def partition_dataset_dirichlet(
    dataset: SyntheticImageDataset,
    num_clients: int,
    alpha: float = 0.5,
    seed: int = 0,
    min_per_client: int = 0,
) -> list[SyntheticImageDataset]:
    """Non-IID partition with Dirichlet(alpha) label skew per class.

    When ``min_per_client`` is positive, samples are reassigned from
    surplus shards until every client owns at least that many (Dirichlet
    draws with small ``alpha`` routinely starve some clients entirely,
    which a federation cannot train with) — see
    :func:`rebalance_min_per_client` for the deterministic donor policy.
    The result always covers the dataset exactly once.
    """
    if min_per_client * num_clients > len(dataset):
        raise ValueError("fewer samples than clients require")
    rng = np.random.default_rng(seed)
    assignments = dirichlet_partition_indices(
        dataset.labels, num_clients, alpha, rng
    )
    assignments = rebalance_min_per_client(
        assignments, dataset.labels, min_per_client
    )
    return [dataset.subset(a) for a in assignments]


@dataclass
class FederationConfig:
    """Declarative description of a federation scenario.

    Beyond the seed's sizing knobs it selects the data partition
    (``partition``: ``"iid"`` or ``"dirichlet"`` with ``dirichlet_alpha``
    label skew), the participation scenario (``clients_per_round``
    sampling, ``dropout_rate``, ``straggler_rate``, ``accept_stale``), and
    the server-side ``aggregator`` (registry name, class, or instance —
    see :func:`repro.fl.aggregators.make_aggregator`).

    ``aggregator_options`` are constructor keywords forwarded when the
    aggregator is given as a name or class — e.g.
    ``aggregator="secagg", aggregator_options={"threshold": 8}`` pins a
    SecAgg reconstruction threshold instead of the default strict
    majority.  They are rejected for instances (the instance is already
    configured).

    Event-engine knobs (all default to the legacy-compatible behaviour):

    - ``arrivals`` / ``arrival_options``: a named arrival process
      (``"instant"``, ``"uniform"``, ``"tiered"``, ``"tiered-diurnal"``)
      with its constructor options; ``None`` is the rate-driven compat
      process.
    - ``round_duration_s`` / ``min_arrivals``: a positive duration closes
      each round on a :class:`~repro.fl.engine.TimeCutoff` after that
      many simulated seconds (with an optional grace floor); zero keeps
      the legacy count cutoff.
    - ``fleet_size`` / ``shard_size``: a positive ``fleet_size`` registers
      that many users in a lazy fleet instead of eagerly partitioning
      ``num_clients`` shards; each materialized client samples a
      ``shard_size`` private shard (``0`` → ``batch_size``) keyed by its
      id, so any cohort is reproducible without touching the rest of the
      fleet.
    """

    num_clients: int = 10
    clients_per_round: Optional[int] = None
    batch_size: int = 8
    learning_rate: float = 0.1
    seed: int = 0
    partition: str = "iid"
    dirichlet_alpha: float = 0.5
    dropout_rate: float = 0.0
    straggler_rate: float = 0.0
    accept_stale: bool = False
    aggregator: "str | type[Aggregator] | Aggregator" = "fedavg"
    aggregator_options: Optional[dict] = None
    weight_by_examples: bool = False
    arrivals: Optional[str] = None
    arrival_options: Optional[dict] = None
    round_duration_s: float = 0.0
    min_arrivals: int = 0
    fleet_size: int = 0
    shard_size: int = 0

    def make_aggregator(self) -> Aggregator:
        """Resolve the configured aggregation rule to an instance."""
        return make_aggregator(self.aggregator, **(self.aggregator_options or {}))

    def make_cutoff(self) -> "CountCutoff | TimeCutoff":
        """Resolve the configured round-close policy."""
        return make_cutoff(
            round_duration_s=self.round_duration_s or None,
            min_arrivals=self.min_arrivals,
        )

    def make_shards(
        self, dataset: SyntheticImageDataset
    ) -> list[SyntheticImageDataset]:
        """Partition ``dataset`` per the configured scheme, one shard per client."""
        if self.partition == "iid":
            return partition_dataset(dataset, self.num_clients, seed=self.seed)
        if self.partition == "dirichlet":
            return partition_dataset_dirichlet(
                dataset,
                self.num_clients,
                alpha=self.dirichlet_alpha,
                seed=self.seed,
                min_per_client=1,
            )
        raise ValueError(
            f"unknown partition {self.partition!r}; choose 'iid' or 'dirichlet'"
        )


def make_lazy_fleet(
    dataset: SyntheticImageDataset,
    model_factory: Callable[[], Module],
    config: FederationConfig,
    defense: Optional[ClientDefense] = None,
) -> Fleet:
    """A ``config.fleet_size``-user fleet materializing clients on demand.

    Each client's shard is a ``shard_size`` sample of the dataset keyed by
    ``(seed, "fleet-shard", client_id)`` — a pure function of the id, so
    whichever cohort the server happens to dispatch sees the same data in
    any run, on any worker, regardless of who else materialized.
    ``model_factory`` must likewise be order-independent (seeded
    internally, as every factory in this repo is): with a lazy fleet it
    runs at materialization time, in dispatch order.
    """
    if config.fleet_size <= 0:
        raise ValueError("fleet_size must be positive for a lazy fleet")
    shard_size = config.shard_size or config.batch_size
    if shard_size > len(dataset):
        raise ValueError("shard_size cannot exceed the dataset")
    loss_fn = CrossEntropyLoss()

    def factory(client_id: int) -> Client:
        shard_rng = np.random.default_rng(
            seed_sequence_for(config.seed, "fleet-shard", str(client_id))
        )
        indices = np.sort(
            shard_rng.choice(len(dataset), size=shard_size, replace=False)
        )
        return Client(
            client_id=client_id,
            dataset=dataset.subset(indices),
            model=model_factory(),
            loss_fn=loss_fn,
            batch_size=config.batch_size,
            defense=defense,
            seed=config.seed,
        )

    return Fleet(config.fleet_size, factory)


class FederatedSimulation:
    """A ready-to-run federation over one dataset.

    ``model_factory`` must return a fresh model of identical architecture
    each call; clients each hold their own instance (as real devices would)
    and synchronize through state dicts.
    """

    def __init__(
        self,
        dataset: SyntheticImageDataset,
        model_factory: Callable[[], Module],
        config: FederationConfig,
        defense: Optional[ClientDefense] = None,
        attack=None,
        target_client_id: Optional[int] = None,
    ) -> None:
        self.config = config
        if config.fleet_size:
            self.fleet = make_lazy_fleet(dataset, model_factory, config, defense)
        else:
            shards = config.make_shards(dataset)
            loss_fn = CrossEntropyLoss()
            self.fleet = Fleet.from_clients(
                [
                    Client(
                        client_id=i,
                        dataset=shard,
                        model=model_factory(),
                        loss_fn=loss_fn,
                        batch_size=config.batch_size,
                        defense=defense,
                        seed=config.seed,
                    )
                    for i, shard in enumerate(shards)
                ]
            )
        global_model = model_factory()
        server_kwargs = dict(
            learning_rate=config.learning_rate,
            clients_per_round=config.clients_per_round,
            aggregator=config.make_aggregator(),
            dropout_rate=config.dropout_rate,
            straggler_rate=config.straggler_rate,
            accept_stale=config.accept_stale,
            weight_by_examples=config.weight_by_examples,
            seed=config.seed,
            arrivals=config.arrivals,
            arrival_options=config.arrival_options,
            cutoff=config.make_cutoff(),
        )
        if attack is None:
            self.server: Server = Server(global_model, self.fleet, **server_kwargs)
        else:
            self.server = DishonestServer(
                global_model,
                self.fleet,
                attack=attack,
                target_client_id=target_client_id,
                **server_kwargs,
            )

    @property
    def clients(self) -> list[Client]:
        """The fully-materialized roster (legacy view; prefer ``fleet``)."""
        return self.fleet.materialize_all()

    def run(self, num_rounds: int):
        """Run the federation for ``num_rounds`` and return the records."""
        return self.server.run(num_rounds)

    def evaluate(self, dataset: SyntheticImageDataset, batch_size: int = 64) -> float:
        """Top-1 accuracy of the current global model on ``dataset``."""
        model = self.server.model
        model.eval()
        logits_all = []
        with no_grad():
            for start in range(0, len(dataset), batch_size):
                images = dataset.images[start : start + batch_size].astype(np.float64)
                logits_all.append(model(Tensor(images)).numpy())
        model.train()
        return accuracy(np.concatenate(logits_all), dataset.labels)
