"""High-level federated simulation: partitioning, assembly, evaluation.

Convenience layer that turns a dataset + model factory + defense into a
running federation, so examples and experiments stay short.  Scenarios are
described declaratively through :class:`FederationConfig`: IID or Dirichlet
label-skewed partitioning, per-round client sampling, dropout/straggler
rates, and the server-side aggregation rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.data.synthetic import SyntheticImageDataset
from repro.defense.base import ClientDefense
from repro.fl.aggregators import Aggregator, make_aggregator
from repro.fl.client import Client
from repro.fl.server import DishonestServer, Server
from repro.metrics.accuracy import accuracy
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.tensor import Tensor, no_grad


def partition_dataset(
    dataset: SyntheticImageDataset,
    num_clients: int,
    seed: int = 0,
) -> list[SyntheticImageDataset]:
    """IID partition of a dataset into ``num_clients`` equal shards."""
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    if len(dataset) < num_clients:
        raise ValueError("fewer samples than clients")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    shards = np.array_split(order, num_clients)
    return [dataset.subset(shard) for shard in shards]


def dirichlet_partition_indices(
    labels: np.ndarray,
    num_clients: int,
    alpha: float,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """Dirichlet label-skew assignment of sample indices to clients.

    For each class, client shares are drawn from ``Dirichlet(alpha)`` and
    the class's (shuffled) samples are split at the cumulative-share
    boundaries, so every sample lands on exactly one client for any
    ``alpha > 0``.  Small ``alpha`` concentrates each class on few clients
    (strong non-IID); large ``alpha`` approaches IID.
    """
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    if not alpha > 0.0:
        raise ValueError("alpha must be positive")
    labels = np.asarray(labels)
    assignments: list[list[int]] = [[] for _ in range(num_clients)]
    for cls in np.unique(labels):
        indices = np.flatnonzero(labels == cls)
        rng.shuffle(indices)
        shares = rng.dirichlet(np.full(num_clients, alpha))
        bounds = np.floor(np.cumsum(shares) * len(indices)).astype(int)
        bounds = np.maximum.accumulate(np.clip(bounds, 0, len(indices)))
        bounds[-1] = len(indices)
        for client, piece in enumerate(np.split(indices, bounds[:-1])):
            assignments[client].extend(piece.tolist())
    return [np.asarray(sorted(a), dtype=np.int64) for a in assignments]


def partition_dataset_dirichlet(
    dataset: SyntheticImageDataset,
    num_clients: int,
    alpha: float = 0.5,
    seed: int = 0,
    min_per_client: int = 0,
) -> list[SyntheticImageDataset]:
    """Non-IID partition with Dirichlet(alpha) label skew per class.

    When ``min_per_client`` is positive, samples are reassigned from the
    largest shard until every client owns at least that many (Dirichlet
    draws with small ``alpha`` routinely starve some clients entirely,
    which a federation cannot train with).  The result always covers the
    dataset exactly once.
    """
    if min_per_client * num_clients > len(dataset):
        raise ValueError("fewer samples than clients require")
    rng = np.random.default_rng(seed)
    assignments = [
        list(a)
        for a in dirichlet_partition_indices(
            dataset.labels, num_clients, alpha, rng
        )
    ]
    while True:
        smallest = min(range(num_clients), key=lambda i: len(assignments[i]))
        if len(assignments[smallest]) >= min_per_client:
            break
        largest = max(range(num_clients), key=lambda i: len(assignments[i]))
        assignments[smallest].append(assignments[largest].pop())
    return [
        dataset.subset(np.asarray(sorted(a), dtype=np.int64))
        for a in assignments
    ]


@dataclass
class FederationConfig:
    """Declarative description of a federation scenario.

    Beyond the seed's sizing knobs it selects the data partition
    (``partition``: ``"iid"`` or ``"dirichlet"`` with ``dirichlet_alpha``
    label skew), the participation scenario (``clients_per_round``
    sampling, ``dropout_rate``, ``straggler_rate``, ``accept_stale``), and
    the server-side ``aggregator`` (registry name, class, or instance —
    see :func:`repro.fl.aggregators.make_aggregator`).

    ``aggregator_options`` are constructor keywords forwarded when the
    aggregator is given as a name or class — e.g.
    ``aggregator="secagg", aggregator_options={"threshold": 8}`` pins a
    SecAgg reconstruction threshold instead of the default strict
    majority.  They are rejected for instances (the instance is already
    configured).
    """

    num_clients: int = 10
    clients_per_round: Optional[int] = None
    batch_size: int = 8
    learning_rate: float = 0.1
    seed: int = 0
    partition: str = "iid"
    dirichlet_alpha: float = 0.5
    dropout_rate: float = 0.0
    straggler_rate: float = 0.0
    accept_stale: bool = False
    aggregator: "str | type[Aggregator] | Aggregator" = "fedavg"
    aggregator_options: Optional[dict] = None
    weight_by_examples: bool = False

    def make_aggregator(self) -> Aggregator:
        """Resolve the configured aggregation rule to an instance."""
        return make_aggregator(self.aggregator, **(self.aggregator_options or {}))

    def make_shards(
        self, dataset: SyntheticImageDataset
    ) -> list[SyntheticImageDataset]:
        """Partition ``dataset`` per the configured scheme, one shard per client."""
        if self.partition == "iid":
            return partition_dataset(dataset, self.num_clients, seed=self.seed)
        if self.partition == "dirichlet":
            return partition_dataset_dirichlet(
                dataset,
                self.num_clients,
                alpha=self.dirichlet_alpha,
                seed=self.seed,
                min_per_client=1,
            )
        raise ValueError(
            f"unknown partition {self.partition!r}; choose 'iid' or 'dirichlet'"
        )


class FederatedSimulation:
    """A ready-to-run federation over one dataset.

    ``model_factory`` must return a fresh model of identical architecture
    each call; clients each hold their own instance (as real devices would)
    and synchronize through state dicts.
    """

    def __init__(
        self,
        dataset: SyntheticImageDataset,
        model_factory: Callable[[], Module],
        config: FederationConfig,
        defense: Optional[ClientDefense] = None,
        attack=None,
        target_client_id: Optional[int] = None,
    ) -> None:
        self.config = config
        shards = config.make_shards(dataset)
        loss_fn = CrossEntropyLoss()
        self.clients = [
            Client(
                client_id=i,
                dataset=shard,
                model=model_factory(),
                loss_fn=loss_fn,
                batch_size=config.batch_size,
                defense=defense,
                seed=config.seed,
            )
            for i, shard in enumerate(shards)
        ]
        global_model = model_factory()
        server_kwargs = dict(
            learning_rate=config.learning_rate,
            clients_per_round=config.clients_per_round,
            aggregator=config.make_aggregator(),
            dropout_rate=config.dropout_rate,
            straggler_rate=config.straggler_rate,
            accept_stale=config.accept_stale,
            weight_by_examples=config.weight_by_examples,
            seed=config.seed,
        )
        if attack is None:
            self.server: Server = Server(global_model, self.clients, **server_kwargs)
        else:
            self.server = DishonestServer(
                global_model,
                self.clients,
                attack=attack,
                target_client_id=target_client_id,
                **server_kwargs,
            )

    def run(self, num_rounds: int):
        """Run the federation for ``num_rounds`` and return the records."""
        return self.server.run(num_rounds)

    def evaluate(self, dataset: SyntheticImageDataset, batch_size: int = 64) -> float:
        """Top-1 accuracy of the current global model on ``dataset``."""
        model = self.server.model
        model.eval()
        logits_all = []
        with no_grad():
            for start in range(0, len(dataset), batch_size):
                images = dataset.images[start : start + batch_size].astype(np.float64)
                logits_all.append(model(Tensor(images)).numpy())
        model.train()
        return accuracy(np.concatenate(logits_all), dataset.labels)
