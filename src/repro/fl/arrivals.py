"""Pluggable client arrival processes: who completes a round, and when.

An :class:`ArrivalProcess` turns the server's selected client set into a
:class:`~repro.fl.engine.RoundPlan` — per-client completion ticks on the
virtual clock, plus the clients that never start at all.  The engine pops
those completions in time order; the round cutoff then *derives* dropout
and straggling from the timeline instead of drawing them from rates.

Three processes ship with the engine:

- :class:`InstantArrivals` — the compatibility layer.  Reproduces the
  legacy rate-based scenario semantics exactly: it consumes the server's
  RNG with the same dropout/straggler coin flips the synchronous loop
  drew, then synthesizes one-tick-apart completion times that replay the
  legacy arrival order (survivors in selection order, then stragglers).
  Under the default count cutoff this makes the event engine
  byte-identical to the pre-engine loop.
- :class:`UniformArrivals` — every client's round latency is uniform on
  ``[low_s, high_s]`` simulated seconds, keyed by ``(seed, client_id,
  round)``.  The minimal genuinely-timed process; with a time cutoff,
  stragglers emerge wherever the draw lands past the deadline.
- :class:`TieredArrivals` — per-client latency/compute traces.  Each
  client is pinned to a :class:`HardwareTier` (flagship/mid/budget/IoT by
  fleet share), draws per-round compute time around the tier's mean with
  lognormal jitter plus network latency, can fail mid-round with the
  tier's failure rate, and — when a :class:`DiurnalCycle` is attached —
  is simply offline for part of every simulated day.

Every trace draw is keyed by ``seed_sequence_for(seed, label, client,
round)``: completion times are pure functions of configuration, invariant
to registration order, worker count, and which other clients exist — the
same discipline the sweep engine's byte-identity rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.fl.engine import RoundPlan, ScheduledCompletion, ticks
from repro.utils.rng import seed_sequence_for


class ArrivalProcess:
    """Base class: schedules the completion timeline of one round.

    ``synthesizes_time`` marks processes whose ticks are bookkeeping
    artifacts (the compat layer) rather than modeled durations; the
    engine omits the timing annotation from round records for those so
    legacy records stay byte-identical.
    """

    name = "base"
    synthesizes_time = False

    def plan_round(
        self,
        selected_ids: list[int],
        round_index: int,
        opened_at: int,
        server_rng: np.random.Generator,
    ) -> RoundPlan:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class InstantArrivals(ArrivalProcess):
    """Legacy rate-based participation as a degenerate arrival process.

    Consumes ``server_rng`` exactly as the synchronous loop's
    ``simulate_participation`` did — one dropout draw per selected
    client, one straggler draw per survivor, zero draws when both rates
    are zero — so federations configured through the rate knobs reproduce
    the seed's RNG stream bit-for-bit.  Completion ticks are synthesized
    one tick apart in the legacy computation order: survivors first (in
    selection order), stragglers after every survivor.
    """

    name = "instant"
    synthesizes_time = True

    def __init__(
        self, dropout_rate: float = 0.0, straggler_rate: float = 0.0
    ) -> None:
        for rate, label in (
            (dropout_rate, "dropout_rate"),
            (straggler_rate, "straggler_rate"),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{label} must be in [0, 1]")
        self.dropout_rate = dropout_rate
        self.straggler_rate = straggler_rate

    def plan_round(
        self,
        selected_ids: list[int],
        round_index: int,
        opened_at: int,
        server_rng: np.random.Generator,
    ) -> RoundPlan:
        if self.dropout_rate == 0.0 and self.straggler_rate == 0.0:
            active = list(selected_ids)
            dropped: list[int] = []
            stragglers: list[int] = []
        else:
            active, dropped, stragglers = [], [], []
            for client_id in selected_ids:
                if server_rng.random() < self.dropout_rate:
                    dropped.append(client_id)
                elif server_rng.random() < self.straggler_rate:
                    stragglers.append(client_id)
                else:
                    active.append(client_id)
        dispatched = [
            ScheduledCompletion(client_id, opened_at + rank + 1)
            for rank, client_id in enumerate(active)
        ]
        base = opened_at + len(active) + 1
        dispatched.extend(
            ScheduledCompletion(client_id, base + rank)
            for rank, client_id in enumerate(stragglers)
        )
        return RoundPlan(
            dispatched=dispatched,
            unavailable=dropped,
            expected_fresh=len(active),
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(dropout_rate={self.dropout_rate}, "
            f"straggler_rate={self.straggler_rate})"
        )


def _trace_rng(
    seed: int, label: str, client_id: int, round_index: int
) -> np.random.Generator:
    """A generator keyed by (seed, label, client, round) — order-invariant."""
    return np.random.default_rng(
        seed_sequence_for(seed, label, str(int(client_id)), str(int(round_index)))
    )


class UniformArrivals(ArrivalProcess):
    """Round latency uniform on ``[low_s, high_s]`` simulated seconds."""

    name = "uniform"

    def __init__(
        self, low_s: float = 0.1, high_s: float = 1.0, seed: int = 0
    ) -> None:
        if not 0 < low_s <= high_s:
            raise ValueError("need 0 < low_s <= high_s")
        self.low_s = low_s
        self.high_s = high_s
        self.seed = seed

    def plan_round(
        self,
        selected_ids: list[int],
        round_index: int,
        opened_at: int,
        server_rng: np.random.Generator,
    ) -> RoundPlan:
        dispatched = []
        for client_id in selected_ids:
            rng = _trace_rng(self.seed, "uniform-latency", client_id, round_index)
            delay = ticks(float(rng.uniform(self.low_s, self.high_s)))
            dispatched.append(
                ScheduledCompletion(client_id, opened_at + max(delay, 1))
            )
        return RoundPlan(dispatched=dispatched)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(low_s={self.low_s}, high_s={self.high_s})"
        )


@dataclass(frozen=True)
class HardwareTier:
    """One device class of a heterogeneous fleet.

    ``compute_s`` is the mean local-training duration in simulated
    seconds, ``jitter`` the sigma of the lognormal factor applied per
    round, ``network_s`` the mean one-way upload latency, and
    ``failure_rate`` the per-round probability the device starts but
    never reports (battery died, app evicted).  ``weight`` is the tier's
    share of the fleet.
    """

    name: str
    compute_s: float
    network_s: float = 0.05
    jitter: float = 0.35
    failure_rate: float = 0.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.compute_s <= 0 or self.network_s < 0:
            raise ValueError("tier durations must be positive")
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        if self.weight <= 0:
            raise ValueError("tier weight must be positive")


#: A cross-device census loosely following published FL system papers:
#: a fast minority, a broad middle, a long budget tail, and a sliver of
#: embedded devices an order of magnitude slower.
DEFAULT_TIERS: tuple[HardwareTier, ...] = (
    HardwareTier("flagship", compute_s=0.12, network_s=0.03, weight=0.15),
    HardwareTier("mid", compute_s=0.30, network_s=0.05, weight=0.55),
    HardwareTier(
        "budget", compute_s=0.90, network_s=0.10, failure_rate=0.02, weight=0.25
    ),
    HardwareTier(
        "iot", compute_s=2.50, network_s=0.20, failure_rate=0.05, weight=0.05
    ),
)


@dataclass(frozen=True)
class DiurnalCycle:
    """Availability window repeating every ``period_s`` simulated seconds.

    Each client's phase offset within the cycle is keyed by its id, so at
    any instant roughly ``duty_cycle`` of the fleet is reachable and the
    reachable set rotates as virtual time advances — the compressed-day
    model of devices that are only eligible while idle and charging.
    """

    period_s: float = 60.0
    duty_cycle: float = 0.5

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ValueError("duty_cycle must be in (0, 1]")

    def available(self, client_id: int, tick: int, seed: int) -> bool:
        period = ticks(self.period_s)
        window = int(round(period * self.duty_cycle))
        phase_rng = np.random.default_rng(
            seed_sequence_for(seed, "diurnal-phase", str(int(client_id)))
        )
        phase = int(phase_rng.integers(period))
        return (tick + phase) % period < window


class TieredArrivals(ArrivalProcess):
    """Per-client latency/compute traces over heterogeneous hardware tiers.

    A client's tier assignment is permanent (keyed by id alone); its
    per-round duration is ``(compute_s * lognormal(jitter) + network_s *
    Exp(1))`` seconds, keyed by ``(client, round)``.  Tier failure draws
    and the optional :class:`DiurnalCycle` availability check decide who
    never completes.  All of it is deterministic per configuration —
    nothing depends on the order clients were registered or scheduled.
    """

    name = "tiered"

    def __init__(
        self,
        tiers: Sequence[HardwareTier] = DEFAULT_TIERS,
        seed: int = 0,
        diurnal: Optional[DiurnalCycle] = None,
    ) -> None:
        if not tiers:
            raise ValueError("need at least one hardware tier")
        self.tiers = tuple(tiers)
        self.seed = seed
        self.diurnal = diurnal
        total = sum(tier.weight for tier in self.tiers)
        self._shares = np.asarray(
            [tier.weight / total for tier in self.tiers], dtype=np.float64
        )

    def tier_of(self, client_id: int) -> HardwareTier:
        """The client's permanent hardware tier (keyed by id alone)."""
        rng = np.random.default_rng(
            seed_sequence_for(self.seed, "hardware-tier", str(int(client_id)))
        )
        return self.tiers[int(rng.choice(len(self.tiers), p=self._shares))]

    def completion_delay(
        self, client_id: int, round_index: int
    ) -> Optional[int]:
        """Ticks from dispatch to completion; ``None`` when the device fails."""
        tier = self.tier_of(client_id)
        rng = _trace_rng(self.seed, "tier-trace", client_id, round_index)
        if tier.failure_rate and rng.random() < tier.failure_rate:
            return None
        compute = tier.compute_s * float(rng.lognormal(0.0, tier.jitter))
        network = tier.network_s * float(rng.exponential(1.0))
        return max(ticks(compute + network), 1)

    def plan_round(
        self,
        selected_ids: list[int],
        round_index: int,
        opened_at: int,
        server_rng: np.random.Generator,
    ) -> RoundPlan:
        dispatched = []
        unavailable = []
        for client_id in selected_ids:
            if self.diurnal is not None and not self.diurnal.available(
                client_id, opened_at, self.seed
            ):
                unavailable.append(client_id)
                continue
            delay = self.completion_delay(client_id, round_index)
            if delay is None:
                unavailable.append(client_id)
                continue
            dispatched.append(
                ScheduledCompletion(client_id, opened_at + delay)
            )
        return RoundPlan(dispatched=dispatched, unavailable=unavailable)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(tiers={[t.name for t in self.tiers]}, "
            f"diurnal={self.diurnal})"
        )


# --------------------------------------------------------------------------
# Registry.
# --------------------------------------------------------------------------

_NAMED_PROCESSES = ("instant", "uniform", "tiered", "tiered-diurnal")


def arrival_process_names() -> tuple[str, ...]:
    """Every named arrival process the config layer accepts."""
    return _NAMED_PROCESSES


def make_arrivals(
    spec: "str | ArrivalProcess | None",
    dropout_rate: float = 0.0,
    straggler_rate: float = 0.0,
    seed: int = 0,
    **options,
) -> ArrivalProcess:
    """Resolve an arrival process from a name, instance, or ``None``.

    ``None`` (and ``"instant"``) selects the legacy-compatible process
    driven by the rate knobs.  The trace-driven processes refuse nonzero
    dropout/straggler rates: under them those phenomena are emergent
    timing outcomes, and silently layering coin flips on top would make
    the scenario lie about its own semantics.
    """
    if isinstance(spec, ArrivalProcess):
        if options:
            raise ValueError("cannot pass options with a process instance")
        return spec
    name = "instant" if spec is None else str(spec).lower()
    if name == "instant":
        return InstantArrivals(
            dropout_rate=dropout_rate, straggler_rate=straggler_rate, **options
        )
    if dropout_rate or straggler_rate:
        raise ValueError(
            f"arrival process {name!r} derives dropout and straggling from "
            "timing traces; rate knobs must stay zero under it"
        )
    if name == "uniform":
        return UniformArrivals(seed=seed, **options)
    if name == "tiered":
        return TieredArrivals(seed=seed, **options)
    if name == "tiered-diurnal":
        options.setdefault("diurnal", DiurnalCycle())
        return TieredArrivals(seed=seed, **options)
    raise ValueError(
        f"unknown arrival process {spec!r}; choose from {_NAMED_PROCESSES}"
    )
