"""Vectorized arithmetic over the Mersenne-61 prime field GF(2**61 - 1).

Every algebraic object the secure-aggregation protocols exchange — Shamir
shares of mask seeds, Lagrange-coded mask segments, field-embedded
quantized updates — lives in one prime field.  The modulus is the
Mersenne prime ``2**61 - 1``, chosen so that:

- field elements fit a ``uint64`` lane, so whole vectors of coordinates
  are processed with numpy ufuncs instead of per-element Python bigints;
- reduction after addition is a single fold (``2**61 ≡ 1 (mod p)`` turns
  the carry into an add), and the 122-bit product of two elements reduces
  with three folds of 32-bit limb products — no division anywhere;
- the field is comfortably wider than the 16-fractional-bit quantized
  updates summed over a 1000-client round, so encoding never saturates.

All functions accept scalars or arrays (broadcasting like the underlying
ufuncs) and return canonical representatives in ``[0, PRIME)`` as
``uint64`` arrays.  Inputs must already be canonical unless noted —
:func:`to_field` is the entry point for arbitrary signed integers.
"""

from __future__ import annotations

import numpy as np

# The Mersenne prime 2**61 - 1, as a Python int and a uint64 scalar.
PRIME_INT = (1 << 61) - 1
PRIME = np.uint64(PRIME_INT)

_LOW32 = np.uint64(0xFFFFFFFF)
_LOW29 = np.uint64((1 << 29) - 1)
_SHIFT29 = np.uint64(29)
_SHIFT32 = np.uint64(32)
_SHIFT61 = np.uint64(61)
_EIGHT = np.uint64(8)  # 2**64 mod PRIME


def _fold(values: np.ndarray) -> np.ndarray:
    """Reduce values below ``2**63`` into ``[0, PRIME)`` with one fold."""
    folded = (values & PRIME) + (values >> _SHIFT61)
    return np.where(folded >= PRIME, folded - PRIME, folded)


def to_field(values) -> np.ndarray:
    """Canonical field representatives of (possibly signed) integers.

    Negative inputs map to their additive inverses, so the signed
    fixed-point encoding of a quantized update round-trips through
    :func:`from_field_centered`.
    """
    array = np.asarray(values)
    if array.dtype.kind == "u":
        reduced = array.astype(np.uint64) % PRIME
    else:
        signed = array.astype(object) if array.dtype.kind != "i" else array
        reduced = np.mod(signed, PRIME_INT).astype(np.uint64)
    return reduced


def from_field_centered(values: np.ndarray) -> np.ndarray:
    """Decode canonical elements as signed integers in ``(-p/2, p/2]``.

    The inverse of :func:`to_field` for magnitudes below half the prime —
    exactly the regime the fixed-point guard enforces.
    """
    array = np.asarray(values, dtype=np.uint64)
    half = np.uint64(PRIME_INT // 2)
    as_signed = array.astype(np.int64)
    return np.where(array > half, as_signed - np.int64(PRIME_INT), as_signed)


def f_add(a, b) -> np.ndarray:
    """Field addition."""
    return _fold(np.asarray(a, dtype=np.uint64) + np.asarray(b, dtype=np.uint64))


def f_sub(a, b) -> np.ndarray:
    """Field subtraction."""
    return _fold(
        np.asarray(a, dtype=np.uint64) + (PRIME - np.asarray(b, dtype=np.uint64))
    )


def f_neg(a) -> np.ndarray:
    """Field additive inverse."""
    return _fold(PRIME - np.asarray(a, dtype=np.uint64))


def f_mul(a, b) -> np.ndarray:
    """Field multiplication via 32-bit limb products (no 128-bit ints).

    With ``a = a1·2**32 + a0`` and ``b = b1·2**32 + b0``, the product is
    ``a1b1·2**64 + (a1b0 + a0b1)·2**32 + a0b0``; modulo the Mersenne
    prime, ``2**64 ≡ 8`` and ``2**61 ≡ 1`` reduce every term below
    ``2**62`` without overflowing a ``uint64`` accumulator.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    a1, a0 = a >> _SHIFT32, a & _LOW32
    b1, b0 = b >> _SHIFT32, b & _LOW32
    high = a1 * b1  # < 2**58
    mid = a1 * b0 + a0 * b1  # < 2**62
    low = a0 * b0  # < 2**64
    acc = high * _EIGHT
    acc = acc + ((mid >> _SHIFT29) + ((mid & _LOW29) << _SHIFT32))
    acc = acc + ((low & PRIME) + (low >> _SHIFT61))
    return _fold(acc)


def f_pow(base, exponent: int) -> np.ndarray:
    """Field exponentiation by a non-negative Python-int exponent."""
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    base = np.asarray(base, dtype=np.uint64)
    result = np.ones_like(base)
    while exponent:
        if exponent & 1:
            result = f_mul(result, base)
        base = f_mul(base, base)
        exponent >>= 1
    return result


def f_inv(a) -> np.ndarray:
    """Field multiplicative inverse (Fermat); undefined (0) maps to 0."""
    return f_pow(a, PRIME_INT - 2)


def rand_field(rng: np.random.Generator, size) -> np.ndarray:
    """Uniform field elements in ``[0, PRIME)`` from a seeded generator."""
    return rng.integers(0, PRIME_INT, size=size, dtype=np.uint64)


def lagrange_basis(xs: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Lagrange basis matrix ``B[t, j] = l_j(targets[t])`` over the field.

    ``xs`` are the distinct interpolation points; the returned matrix
    turns values at ``xs`` into values at ``targets`` by a field
    matrix-vector product.  A target coinciding with an interpolation
    point yields the corresponding unit row automatically (its numerator
    vanishes everywhere else).  Built with prefix/suffix products, so the
    cost is O(k) vectorized passes rather than O(k**2) scalar loops.
    """
    xs = np.asarray(xs, dtype=np.uint64)
    targets = np.asarray(targets, dtype=np.uint64)
    k = len(xs)
    diffs = f_sub(targets[:, None], xs[None, :])  # (m, k)
    prefix = np.ones_like(diffs)
    for j in range(1, k):
        prefix[:, j] = f_mul(prefix[:, j - 1], diffs[:, j - 1])
    suffix = np.ones_like(diffs)
    for j in range(k - 2, -1, -1):
        suffix[:, j] = f_mul(suffix[:, j + 1], diffs[:, j + 1])
    numerators = f_mul(prefix, suffix)
    point_diffs = f_sub(xs[:, None], xs[None, :])
    np.fill_diagonal(point_diffs, 1)
    denominators = np.ones_like(xs)
    for j in range(k):
        denominators = f_mul(denominators, point_diffs[:, j])
    return f_mul(numerators, f_inv(denominators)[None, :])


def interpolate(xs: np.ndarray, ys: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Evaluate the degree-``len(xs)-1`` interpolant of ``(xs, ys)`` at
    ``targets``.

    ``ys`` has shape ``(k, ...)`` — one value vector per interpolation
    point; the result has shape ``(len(targets), ...)``.
    """
    ys = np.asarray(ys, dtype=np.uint64)
    basis = lagrange_basis(xs, targets)
    shape = (len(basis),) + ys.shape[1:]
    acc = np.zeros(shape, dtype=np.uint64)
    expand = (slice(None),) + (None,) * (ys.ndim - 1)
    for j in range(len(xs)):
        acc = f_add(acc, f_mul(basis[:, j][expand], ys[j][None]))
    return acc
