"""Bonawitz-style secure aggregation with Shamir dropout recovery.

One :class:`SecAggRound` simulates a full protocol execution over the
round's *committed* client set (everyone the server selected — dropout
after this point is exactly the failure mode the protocol recovers
from).  The choreography follows Bonawitz et al. (CCS 2017):

1. **Advertise keys** — every committed client broadcasts a Diffie–
   Hellman public key (:class:`~repro.fl.messages.KeyAdvertisement`).
2. **Share keys** — every client Shamir-shares two secrets among all
   committed clients at threshold ``t``: its DH *secret key* (enough to
   re-derive its pairwise masks if it drops) and a fresh *self-mask
   seed* (:class:`~repro.fl.messages.SecretShareBundle`).
3. **Masked upload** — a surviving client uploads
   ``y_i = q_i + PRG(b_i) + Σ_{j≠i} sign(i,j) · PRG(s_ij)  (mod 2**64)``
   where ``q_i`` is the fixed-point quantized update, ``b_i`` the self
   mask, ``s_ij`` the pairwise seed, and ``sign(i,j) = +1`` iff
   ``i < j`` — so pairwise masks cancel between any two survivors.
4. **Unmask** — the server names the survivor/dropped split
   (:class:`~repro.fl.messages.UnmaskRequest`); each survivor answers
   with its self-mask shares for *survivors* and secret-key shares for
   *dropped* clients (:class:`~repro.fl.messages.UnmaskResponse`), never
   both for the same sender.  With ``t`` responses the server
   reconstructs every survivor's ``b_i`` (cancel self masks) and every
   dropped client's secret key (cancel the orphaned pairwise masks), and
   the ring sum of the uploads collapses to the exact quantized sum.

Clients here are simulated in-process: each one's secrets derive from a
:func:`~repro.utils.rng.rng_for` stream keyed by (seed, round, client),
so rounds are deterministic and replayable, and nothing about a round
depends on how many rounds an instance served before — the replay bug
the old in-aggregator masking had.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ...utils.rng import derive_seed, rng_for
from ..messages import (
    KeyAdvertisement,
    MaskedUpload,
    SecretShareBundle,
    UnmaskRequest,
    UnmaskResponse,
)
from .base import BelowThresholdError, SecAggError, default_threshold
from .masking import dh_keypair, dh_shared_seed, expand_ring_mask
from .shamir import reconstruct_secrets, share_secrets


@dataclass
class _ClientState:
    """One simulated client's per-round secrets (never visible server-side)."""

    client_id: int
    position: int  # 0-indexed slot in the committed order; share_x = position + 1
    secret_key: int
    public_key: int
    self_mask_seed: int


class SecAggRound:
    """One protocol execution over a fixed committed client set.

    Construction runs the advertise and share phases (the commitment
    point); :meth:`masked_upload` produces survivor uploads and
    :meth:`recover_sum` runs the unmasking phase.
    """

    def __init__(
        self,
        client_ids: Sequence[int],
        round_index: int,
        threshold: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        ordered = sorted(int(cid) for cid in client_ids)
        if len(set(ordered)) != len(ordered):
            raise ValueError("committed client ids must be distinct")
        if not ordered:
            raise ValueError("a protocol round needs at least one client")
        self.client_ids = ordered
        self.round_index = int(round_index)
        self.threshold = (
            default_threshold(len(ordered)) if threshold is None else int(threshold)
        )
        if not 1 <= self.threshold <= len(ordered):
            raise ValueError(
                f"threshold {self.threshold} invalid for {len(ordered)} clients"
            )
        self._seed = seed
        self._states: dict[int, _ClientState] = {}
        self.advertisements: list[KeyAdvertisement] = []
        self._advertise_keys()
        # Mailboxes: share matrices indexed [recipient_position, sender_position].
        self._seed_shares = np.zeros((0, 0), dtype=np.uint64)
        self._self_mask_shares = np.zeros((0, 0), dtype=np.uint64)
        self._share_keys()

    # ------------------------------------------------------------------
    # Phase 1+2: commitment
    # ------------------------------------------------------------------
    def _advertise_keys(self) -> None:
        for position, client_id in enumerate(self.client_ids):
            rng = rng_for(
                self._seed, "secagg-client", str(self.round_index), str(client_id)
            )
            secret_key, public_key = dh_keypair(rng)
            # derive_seed yields a uint32, so the seed doubles as a Shamir
            # secret (it must fit the 61-bit field to survive sharing).
            self_mask_seed = derive_seed(
                int(rng.integers(0, 2**63, dtype=np.uint64)),
                "secagg-self-mask",
                str(self.round_index),
            )
            self._states[client_id] = _ClientState(
                client_id, position, secret_key, public_key, self_mask_seed
            )
            self.advertisements.append(
                KeyAdvertisement(client_id, self.round_index, public_key)
            )

    def _share_keys(self) -> None:
        count = len(self.client_ids)
        secret_keys = np.array(
            [self._states[cid].secret_key for cid in self.client_ids],
            dtype=np.uint64,
        )
        self_masks = np.array(
            [self._states[cid].self_mask_seed for cid in self.client_ids],
            dtype=np.uint64,
        )
        rng = rng_for(self._seed, "secagg-shamir", str(self.round_index))
        self._seed_shares = share_secrets(secret_keys, count, self.threshold, rng)
        self._self_mask_shares = share_secrets(self_masks, count, self.threshold, rng)

    def share_bundles(self) -> list[SecretShareBundle]:
        """Materialize the n**2 share messages (for inspection/tests)."""
        bundles = []
        for sender in self.client_ids:
            sender_pos = self._states[sender].position
            for recipient in self.client_ids:
                recipient_pos = self._states[recipient].position
                bundles.append(
                    SecretShareBundle(
                        sender_id=sender,
                        recipient_id=recipient,
                        round_index=self.round_index,
                        share_x=recipient_pos + 1,
                        seed_share=int(self._seed_shares[recipient_pos, sender_pos]),
                        self_mask_share=int(
                            self._self_mask_shares[recipient_pos, sender_pos]
                        ),
                    )
                )
        return bundles

    # ------------------------------------------------------------------
    # Phase 3: masked upload
    # ------------------------------------------------------------------
    def _pairwise_seed(self, state: _ClientState, peer: _ClientState) -> tuple:
        return dh_shared_seed(state.secret_key, peer.public_key, self.round_index)

    def masked_upload(
        self,
        client_id: int,
        quantized: np.ndarray,
        num_examples: int = 1,
        loss: float = 0.0,
    ) -> MaskedUpload:
        """Mask a quantized (uint64-ring) update the way client ``i`` would."""
        state = self._states.get(int(client_id))
        if state is None:
            raise SecAggError(f"client {client_id} is not in the committed set")
        payload = np.asarray(quantized, dtype=np.uint64).copy()
        dim = payload.shape[-1]
        payload += expand_ring_mask(state.self_mask_seed, dim)
        for peer_id in self.client_ids:
            if peer_id == state.client_id:
                continue
            mask = expand_ring_mask(
                self._pairwise_seed(state, self._states[peer_id]), dim
            )
            if state.client_id < peer_id:
                payload += mask
            else:
                payload -= mask
        return MaskedUpload(
            client_id=state.client_id,
            round_index=self.round_index,
            num_examples=num_examples,
            payload=payload,
            loss=loss,
        )

    # ------------------------------------------------------------------
    # Phase 4: unmasking
    # ------------------------------------------------------------------
    def unmask_messages(
        self, survivor_ids: Sequence[int]
    ) -> tuple[UnmaskRequest, list[UnmaskResponse]]:
        """The unmask round-trip: the server's request and the survivors'
        share responses (self-mask shares for survivors, seed shares for
        dropped — never both for one sender)."""
        survivors = sorted(int(cid) for cid in survivor_ids)
        dropped = [cid for cid in self.client_ids if cid not in set(survivors)]
        request = UnmaskRequest(self.round_index, survivors, dropped)
        responses = []
        for cid in survivors:
            pos = self._states[cid].position
            responses.append(
                UnmaskResponse(
                    client_id=cid,
                    round_index=self.round_index,
                    share_x=pos + 1,
                    self_mask_shares={
                        sid: int(
                            self._self_mask_shares[pos, self._states[sid].position]
                        )
                        for sid in survivors
                    },
                    seed_shares={
                        did: int(self._seed_shares[pos, self._states[did].position])
                        for did in dropped
                    },
                )
            )
        return request, responses

    def recover_sum(self, uploads: Sequence[MaskedUpload]) -> np.ndarray:
        """Unmask the survivors' ring sum; exact even with mid-round dropout.

        Raises :class:`BelowThresholdError` when fewer than ``threshold``
        uploads arrived — below that the shares cannot reconstruct the
        dropped clients' seeds (by design).  Returns the ``(dim,)``
        ``uint64`` ring sum of the survivors' *plain* quantized updates.
        """
        survivor_ids = sorted(int(upload.client_id) for upload in uploads)
        if len(set(survivor_ids)) != len(survivor_ids):
            raise SecAggError("duplicate masked uploads for one client")
        unknown = [cid for cid in survivor_ids if cid not in self._states]
        if unknown:
            raise SecAggError(f"uploads from uncommitted clients: {unknown}")
        if len(survivor_ids) < self.threshold:
            raise BelowThresholdError(len(survivor_ids), self.threshold)

        request, responses = self.unmask_messages(survivor_ids)
        helpers = responses[: self.threshold]
        helper_xs = np.array([r.share_x for r in helpers], dtype=np.uint64)

        total = np.zeros_like(np.asarray(uploads[0].payload, dtype=np.uint64))
        for upload in uploads:
            total += np.asarray(upload.payload, dtype=np.uint64)
        dim = total.shape[-1]

        # Cancel every survivor's self mask: reconstruct all b_i in one
        # batched interpolation over the helpers' shares.
        self_mask_shares = np.array(
            [[r.self_mask_shares[sid] for sid in survivor_ids] for r in helpers],
            dtype=np.uint64,
        )
        recovered_self = reconstruct_secrets(helper_xs, self_mask_shares)
        for seed in recovered_self:
            total -= expand_ring_mask(int(seed), dim)

        # Cancel the dropped clients' orphaned pairwise masks: reconstruct
        # each dropped secret key, re-derive its pairwise seeds with every
        # survivor, and remove the survivor-side contributions.
        recovered_dropped: list[int] = []
        if request.dropped_ids:
            seed_shares = np.array(
                [[r.seed_shares[did] for did in request.dropped_ids] for r in helpers],
                dtype=np.uint64,
            )
            recovered_keys = reconstruct_secrets(helper_xs, seed_shares)
            for dropped_id, secret_key in zip(
                request.dropped_ids, (int(k) for k in recovered_keys)
            ):
                recovered_dropped.append(dropped_id)
                for survivor_id in survivor_ids:
                    peer = self._states[survivor_id]
                    mask = expand_ring_mask(
                        dh_shared_seed(secret_key, peer.public_key, self.round_index),
                        dim,
                    )
                    # Survivor i uploaded sign(i, dropped) * mask; remove it.
                    if survivor_id < dropped_id:
                        total -= mask
                    else:
                        total += mask
        self.last_recovery = {
            "survivors": len(survivor_ids),
            "dropped": len(request.dropped_ids),
            "recovered_dropped_ids": recovered_dropped,
            "unmask_responses": len(responses),
            "helper_shares": int(self.threshold),
        }
        return total


class SecAggProtocol:
    """Factory for Bonawitz-style protocol rounds.

    ``threshold=None`` uses the strict-majority default
    (:func:`~repro.fl.secagg.base.default_threshold`); a fixed integer
    threshold applies to every round regardless of committed-set size.
    """

    name = "secagg"

    def __init__(self, threshold: Optional[int] = None, seed: int = 0) -> None:
        self.threshold = threshold
        self.seed = seed

    def begin(self, client_ids: Sequence[int], round_index: int) -> SecAggRound:
        """Commit a round: advertise keys and distribute Shamir shares."""
        return SecAggRound(
            client_ids, round_index, threshold=self.threshold, seed=self.seed
        )
