"""Secure-aggregation protocol rounds with mid-round dropout recovery.

Two protocol families, both exact (the server recovers the bit-for-bit
fixed-point sum of the survivors' updates) and both surviving clients
that drop *after* mask commitment:

- :class:`SecAggProtocol` — Bonawitz-style: pairwise Diffie–Hellman
  masks plus a self mask, with Shamir t-of-n sharing of the seeds so
  survivors can hand the server what it needs to cancel dropped
  clients' masks (:mod:`repro.fl.secagg.protocol`).
- :class:`OneShotRecoveryProtocol` — LightSecAgg-style: masks are
  Lagrange-encoded and segment-shared offline, so recovery is a single
  aggregated segment per survivor (:mod:`repro.fl.secagg.lightsecagg`).

Both surface as first-class aggregation rules (``"secagg"`` and
``"secagg_oneshot"`` in the aggregator registry) that the FL server
drives through a commit-then-recover round shape.
"""

from .aggregators import (
    OneShotRecoveryAggregator,
    ProtocolAggregator,
    SecAggAggregator,
)
from .base import BelowThresholdError, SecAggError, default_threshold
from .lightsecagg import OneShotRecoveryProtocol, OneShotRound
from .protocol import SecAggProtocol, SecAggRound

__all__ = [
    "BelowThresholdError",
    "OneShotRecoveryAggregator",
    "OneShotRecoveryProtocol",
    "OneShotRound",
    "ProtocolAggregator",
    "SecAggAggregator",
    "SecAggError",
    "SecAggProtocol",
    "SecAggRound",
    "default_threshold",
]
