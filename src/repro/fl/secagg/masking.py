"""Mask expansion and key agreement primitives for the SecAgg protocols.

Two mask domains coexist:

- the Bonawitz-style protocol masks quantized updates in the full
  ``uint64`` ring (``mod 2**64``), matching the fixed-point encoding of
  :class:`~repro.fl.aggregators.MaskedSumAggregator` exactly, so the
  recovered sum is bit-for-bit the plain quantized sum;
- the LightSecAgg-style protocol masks field-embedded updates in
  GF(2**61 - 1), because its mask segments must survive Lagrange
  encoding/decoding, which only works over a field.

Key agreement is a textbook Diffie–Hellman simulation over the same
Mersenne prime (generator 7) — a stand-in for X25519 with the property
that matters here: both endpoints of a pair derive the same seed without
the server learning it.
"""

from __future__ import annotations

import numpy as np

from ...utils.rng import derive_seed
from .field import PRIME_INT, rand_field

_GENERATOR = 7
_RING_MAX = np.iinfo(np.uint64).max


def expand_ring_mask(seed, dim: int) -> np.ndarray:
    """PRG-expand a seed into a uniform ``uint64`` ring mask of length ``dim``."""
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    return rng.integers(_RING_MAX, size=dim, dtype=np.uint64, endpoint=True)


def expand_field_mask(seed, dim: int) -> np.ndarray:
    """PRG-expand a seed into uniform GF(2**61 - 1) elements of length ``dim``."""
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    return rand_field(rng, dim)


def dh_keypair(rng: np.random.Generator) -> tuple[int, int]:
    """Draw a (secret, public) Diffie–Hellman pair mod the Mersenne prime.

    Secrets are drawn in ``[1, p - 1)`` so the public key is never the
    identity; arithmetic runs through Python's ``pow`` because the
    exponent exceeds what uint64 modmul can express.
    """
    secret = int(rng.integers(1, PRIME_INT - 1, dtype=np.uint64))
    return secret, pow(_GENERATOR, secret, PRIME_INT)


def dh_shared_seed(secret_key: int, peer_public_key: int, round_index: int) -> tuple:
    """The pairwise PRG seed both endpoints derive: ``g**(sk_i * sk_j)``.

    Folding the round index in via :func:`~repro.utils.rng.derive_seed`
    gives each round an independent mask stream from the same key pair.
    """
    shared = pow(peer_public_key, secret_key, PRIME_INT)
    return (derive_seed(shared, "secagg-pairwise", str(round_index)),)
