"""Protocol-backed aggregators: real SecAgg rounds behind the Aggregator API.

Unlike :class:`~repro.fl.aggregators.MaskedSumAggregator` — which models
only the masked-sum *arithmetic* by drawing every mask server-side over
whichever updates happened to arrive — these rules run a full protocol
execution per round: masks are committed over the round's *selected*
client set before any upload exists, each survivor's upload is masked
client-side, and the server runs the protocol's recovery phase to cancel
the masks of clients that dropped after commitment.  The server opts
into that choreography through ``requires_commitment``; see
``Server.run_round``.

Both rules also work through the plain ``aggregate``/``reduce`` path
(every row is treated as a committed survivor), so registry-level
round-trips and generic aggregator tests hold.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..aggregators import (
    Aggregator,
    FixedPointCodec,
    RoundBuffer,
    _normalized_weights,
    unflatten_vector,
)
from .base import default_threshold
from .field import PRIME_INT
from .lightsecagg import OneShotRecoveryProtocol
from .protocol import SecAggProtocol


class ProtocolAggregator(Aggregator):
    """Shared plumbing for aggregation rules backed by a SecAgg protocol.

    Subclasses implement :meth:`_run_protocol` mapping the survivors'
    quantizable update matrix to the recovered *plain* quantized sum.
    The reduction divides by the survivor count, so results stay
    mean-scaled like FedAvg.  :attr:`last_metadata` carries the most
    recent round's protocol bookkeeping (committed/survivor counts,
    threshold, recovery size) for the server's ``RoundRecord``.
    """

    honours_weights = False
    requires_commitment = True

    def __init__(
        self,
        fractional_bits: int = 16,
        threshold: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        self.fractional_bits = fractional_bits
        self.threshold = threshold
        self.codec = self._make_codec(fractional_bits)
        self.scale = self.codec.scale
        self._seed = seed
        self.last_metadata: dict = {}

    def _make_codec(self, fractional_bits: int) -> FixedPointCodec:
        return FixedPointCodec(fractional_bits)

    def threshold_for(self, num_committed: int) -> int:
        """The Shamir/recovery threshold this rule uses for a round."""
        if self.threshold is not None:
            return int(self.threshold)
        return default_threshold(num_committed)

    def exact_sum(self, matrix: np.ndarray, num_committed: int | None = None) -> np.ndarray:
        """The plain quantized sum a protocol round must recover bit-for-bit."""
        return self.codec.exact_sum(matrix, count=num_committed)

    def _run_protocol(
        self,
        matrix: np.ndarray,
        survivor_ids: list[int],
        committed_ids: list[int],
        round_index: int,
    ) -> np.ndarray:
        """Run one protocol execution; returns the dequantized exact sum."""
        raise NotImplementedError

    def protocol_round(
        self,
        matrix: np.ndarray,
        survivor_ids: Sequence[int],
        committed_ids: Sequence[int],
        round_index: int,
    ) -> np.ndarray:
        """Aggregate one committed round: the survivors' mean update.

        ``matrix`` rows align with ``survivor_ids``; ``committed_ids`` is
        the full selected set whose masks were committed.  Raises
        :class:`~repro.fl.secagg.base.BelowThresholdError` when too few
        survivors remain to unmask.
        """
        survivors = [int(cid) for cid in survivor_ids]
        committed = sorted(int(cid) for cid in committed_ids)
        if len(matrix) != len(survivors):
            raise ValueError("matrix rows must align with survivor_ids")
        missing = [cid for cid in survivors if cid not in set(committed)]
        if missing:
            raise ValueError(f"survivors outside the committed set: {missing}")
        recovered = self._run_protocol(matrix, survivors, committed, int(round_index))
        return recovered / len(survivors)

    def aggregate_committed(
        self,
        buffer: RoundBuffer,
        survivor_ids: Sequence[int],
        committed_ids: Sequence[int],
        round_index: int,
        weights: Sequence[float] | None = None,
    ) -> dict[str, np.ndarray]:
        """The server's entry point for a committed protocol round."""
        if not len(buffer):
            raise ValueError("no updates to aggregate")
        self._check_weights(weights)
        reduced = self.protocol_round(
            buffer.matrix, survivor_ids, committed_ids, round_index
        )
        return unflatten_vector(reduced, buffer.spec)

    def _reduce_round(
        self, matrix: np.ndarray, weights: np.ndarray, round_index: int
    ) -> np.ndarray:
        # Plain-path fallback: every row is a committed survivor.
        ids = list(range(len(matrix)))
        return self.protocol_round(matrix, ids, ids, round_index)

    def reduce(self, matrix: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return self._reduce_round(
            matrix, _normalized_weights(None, len(matrix)), 0
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(fractional_bits={self.fractional_bits}, "
            f"threshold={self.threshold})"
        )


class SecAggAggregator(ProtocolAggregator):
    """Bonawitz-style secure aggregation as an aggregation rule.

    Per round: commit a :class:`~repro.fl.secagg.protocol.SecAggRound`
    over the selected set, mask each survivor's quantized update
    client-side in the uint64 ring, and recover the exact sum through the
    Shamir unmasking phase.  Quantization bits match ``masked_sum``, so
    the recovered sum is bit-for-bit the same aggregate.
    """

    name = "secagg"

    def _run_protocol(
        self,
        matrix: np.ndarray,
        survivor_ids: list[int],
        committed_ids: list[int],
        round_index: int,
    ) -> np.ndarray:
        protocol = SecAggProtocol(threshold=self.threshold, seed=self._seed)
        session = protocol.begin(committed_ids, round_index)
        quantized = self.codec.quantize(matrix, count=len(committed_ids))
        uploads = [
            session.masked_upload(cid, quantized[row])
            for row, cid in enumerate(survivor_ids)
        ]
        total = session.recover_sum(uploads)
        self.last_metadata = {
            "protocol": "secagg",
            "committed": len(committed_ids),
            "threshold": session.threshold,
            **session.last_recovery,
        }
        return self.codec.dequantize_sum(total)


class OneShotRecoveryAggregator(ProtocolAggregator):
    """LightSecAgg-style one-shot recovery as an aggregation rule.

    Per round: commit a
    :class:`~repro.fl.secagg.lightsecagg.OneShotRound` (masks encoded and
    segment-shared offline), mask each survivor's quantized update in
    GF(2**61 - 1), and recover the summed mask from one aggregated
    segment per survivor.  The field is narrower than the uint64 ring, so
    the codec guard is tightened to half the prime — the recovered sum is
    still bit-for-bit the plain quantized sum.
    """

    name = "secagg_oneshot"

    def __init__(
        self,
        fractional_bits: int = 16,
        threshold: Optional[int] = None,
        seed: int = 0,
        privacy_chunks: int = 1,
    ) -> None:
        super().__init__(fractional_bits, threshold, seed)
        self.privacy_chunks = privacy_chunks

    def _make_codec(self, fractional_bits: int) -> FixedPointCodec:
        return FixedPointCodec(fractional_bits, sum_limit=float(PRIME_INT // 2))

    def _run_protocol(
        self,
        matrix: np.ndarray,
        survivor_ids: list[int],
        committed_ids: list[int],
        round_index: int,
    ) -> np.ndarray:
        protocol = OneShotRecoveryProtocol(
            threshold=self.threshold,
            privacy_chunks=self.privacy_chunks,
            seed=self._seed,
        )
        session = protocol.begin(committed_ids, round_index, dim=matrix.shape[1])
        quantized = self.codec.quantize(matrix, count=len(committed_ids)).view(
            np.int64
        )
        uploads = [
            session.masked_upload(cid, quantized[row])
            for row, cid in enumerate(survivor_ids)
        ]
        total_signed = session.recover_sum(uploads)
        self.last_metadata = {
            "protocol": "secagg_oneshot",
            "committed": len(committed_ids),
            "threshold": session.threshold,
            **session.last_recovery,
        }
        return total_signed.astype(np.float64) / self.scale
