"""Shared error types for the secure-aggregation protocol stack.

Kept free of intra-package imports so :mod:`repro.fl.server` can catch
protocol failures without pulling in the protocol implementations at
import time (the aggregator registry resolves those lazily).
"""

from __future__ import annotations


class SecAggError(RuntimeError):
    """Base class for secure-aggregation protocol failures."""


class BelowThresholdError(SecAggError):
    """Raised when fewer than ``threshold`` clients survive to unmasking.

    Below the Shamir threshold the server cannot reconstruct the dropped
    clients' mask seeds, so the round is unrecoverable *by design* — the
    same shares that enable dropout recovery must never let a server with
    too few cooperating clients unmask an individual update.
    """

    def __init__(self, survivors: int, threshold: int) -> None:
        super().__init__(
            f"only {survivors} clients survive to unmasking but the "
            f"protocol threshold is {threshold}; the round cannot be "
            "recovered (and must not be, or the threshold would be "
            "meaningless)"
        )
        self.survivors = survivors
        self.threshold = threshold


def default_threshold(num_clients: int) -> int:
    """The default Shamir threshold: a strict majority of the committed set.

    ``floor(n / 2) + 1`` tolerates up to half the fleet dropping after
    mask commitment while keeping any colluding minority unable to
    reconstruct seeds on its own.
    """
    return num_clients // 2 + 1
