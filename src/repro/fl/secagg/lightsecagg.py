"""LightSecAgg-style secure aggregation with one-shot mask recovery.

The Bonawitz protocol pays for dropout resilience at unmasking time: the
server reconstructs one secret *per dropped client* and replays that
client's pairwise PRG streams.  The LightSecAgg regime (So et al.,
MLSys 2022) moves the cost offline — each client Lagrange-encodes its
*full-size* mask into ``n`` segments during commitment — so recovery
costs a single round-trip whose size is independent of how many clients
dropped:

1. **Commitment (offline)** — client ``i`` draws a uniform field mask
   ``z_i`` of the update dimension, splits it into ``k`` chunks, pads
   with ``r`` uniformly random *coding* chunks, and interprets the
   ``T = k + r`` chunks as evaluations of a degree ``T - 1`` polynomial
   ``f_i`` at ``alphas = 1..T``.  Client ``j`` receives the segment
   ``f_i(beta_j)`` (:class:`~repro.fl.messages.EncodedMaskSegment`);
   the betas are ``n`` further points disjoint from the alphas.
2. **Masked upload** — survivors upload ``y_i = q_i + z_i`` in
   GF(2**61 - 1) (updates are fixed-point quantized, then embedded).
3. **One-shot recovery** — each survivor ``j`` sends the *single*
   aggregated segment ``Σ_{i ∈ U} f_i(beta_j)`` over the survivor set
   ``U`` (:class:`~repro.fl.messages.AggregatedMaskSegment`).  Any ``T``
   such segments interpolate ``Σ_{i ∈ U} f_i``, whose values at the
   alphas are exactly the chunks of ``Σ_{i ∈ U} z_i`` — subtracting it
   from ``Σ y_i`` leaves the exact quantized sum.

Fewer than ``T`` survivors cannot recover (and any ``T - 1`` segments
reveal nothing about an individual ``z_i`` thanks to the ``r`` random
coding chunks — privacy and recoverability share one threshold).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ...utils.rng import rng_for
from ..messages import AggregatedMaskSegment, EncodedMaskSegment, MaskedUpload
from .base import BelowThresholdError, SecAggError, default_threshold
from .field import f_add, f_sub, from_field_centered, interpolate, rand_field, to_field
from .masking import expand_field_mask  # noqa: F401  (re-export for tests)


class OneShotRound:
    """One LightSecAgg-style execution over a fixed committed client set."""

    def __init__(
        self,
        client_ids: Sequence[int],
        round_index: int,
        dim: int,
        threshold: Optional[int] = None,
        privacy_chunks: int = 1,
        seed: int = 0,
    ) -> None:
        ordered = sorted(int(cid) for cid in client_ids)
        if len(set(ordered)) != len(ordered):
            raise ValueError("committed client ids must be distinct")
        if not ordered:
            raise ValueError("a protocol round needs at least one client")
        if dim <= 0:
            raise ValueError("dim must be positive")
        count = len(ordered)
        self.client_ids = ordered
        self.round_index = int(round_index)
        self.dim = int(dim)
        self.threshold = (
            default_threshold(count) if threshold is None else int(threshold)
        )
        if not 1 <= self.threshold <= count:
            raise ValueError(
                f"threshold {self.threshold} invalid for {count} clients"
            )
        # k data chunks + r coding chunks = threshold evaluation points.
        self.privacy_chunks = min(max(int(privacy_chunks), 0), self.threshold - 1)
        self.data_chunks = self.threshold - self.privacy_chunks
        self.chunk_size = -(-self.dim // self.data_chunks)  # ceil division
        self._seed = seed
        self._positions = {cid: pos for pos, cid in enumerate(ordered)}
        self._alphas = np.arange(1, self.threshold + 1, dtype=np.uint64)
        self._betas = np.arange(
            self.threshold + 1, self.threshold + count + 1, dtype=np.uint64
        )
        self._masks = np.zeros((count, self.dim), dtype=np.uint64)
        # segments[j, i] = f_i(beta_j): what client j holds for client i.
        self._segments = self._encode_masks()

    def _encode_masks(self) -> np.ndarray:
        count = len(self.client_ids)
        padded = self.data_chunks * self.chunk_size
        values = np.zeros(
            (self.threshold, count, self.chunk_size), dtype=np.uint64
        )
        for pos, client_id in enumerate(self.client_ids):
            rng = rng_for(
                self._seed, "oneshot-mask", str(self.round_index), str(client_id)
            )
            mask = rand_field(rng, self.dim)
            self._masks[pos] = mask
            chunks = np.zeros(padded, dtype=np.uint64)
            chunks[: self.dim] = mask
            values[: self.data_chunks, pos] = chunks.reshape(
                self.data_chunks, self.chunk_size
            )
            if self.privacy_chunks:
                values[self.data_chunks :, pos] = rand_field(
                    rng, (self.privacy_chunks, self.chunk_size)
                )
        return interpolate(self._alphas, values, self._betas)

    def encoded_segments(self, recipient_id: int) -> list[EncodedMaskSegment]:
        """The offline segment messages one client receives (inspection)."""
        recipient_pos = self._positions[int(recipient_id)]
        return [
            EncodedMaskSegment(
                sender_id=sender_id,
                recipient_id=int(recipient_id),
                round_index=self.round_index,
                segment=self._segments[recipient_pos, self._positions[sender_id]],
            )
            for sender_id in self.client_ids
        ]

    def masked_upload(
        self,
        client_id: int,
        quantized: np.ndarray,
        num_examples: int = 1,
        loss: float = 0.0,
    ) -> MaskedUpload:
        """Mask a signed quantized update by field embedding plus ``z_i``."""
        position = self._positions.get(int(client_id))
        if position is None:
            raise SecAggError(f"client {client_id} is not in the committed set")
        embedded = to_field(np.asarray(quantized))
        if embedded.shape[-1] != self.dim:
            raise ValueError("update dimension does not match the committed round")
        return MaskedUpload(
            client_id=int(client_id),
            round_index=self.round_index,
            num_examples=num_examples,
            payload=f_add(embedded, self._masks[position]),
            loss=loss,
        )

    def recovery_segments(
        self, survivor_ids: Sequence[int]
    ) -> list[AggregatedMaskSegment]:
        """The one message each survivor sends: its segments summed over
        the survivor set."""
        survivors = sorted(int(cid) for cid in survivor_ids)
        survivor_pos = [self._positions[cid] for cid in survivors]
        messages = []
        for cid in survivors:
            own = self._positions[cid]
            aggregated = np.zeros(self.chunk_size, dtype=np.uint64)
            for pos in survivor_pos:
                aggregated = f_add(aggregated, self._segments[own, pos])
            messages.append(
                AggregatedMaskSegment(
                    client_id=cid, round_index=self.round_index, segment=aggregated
                )
            )
        return messages

    def recover_sum(self, uploads: Sequence[MaskedUpload]) -> np.ndarray:
        """One-shot unmasking of the survivors' field sum.

        Returns the ``(dim,)`` *signed* quantized sum (int64).  Raises
        :class:`BelowThresholdError` with fewer than ``threshold``
        survivors — below that the aggregated segments cannot pin down
        the summed mask polynomial.
        """
        survivor_ids = sorted(int(upload.client_id) for upload in uploads)
        if len(set(survivor_ids)) != len(survivor_ids):
            raise SecAggError("duplicate masked uploads for one client")
        unknown = [cid for cid in survivor_ids if cid not in self._positions]
        if unknown:
            raise SecAggError(f"uploads from uncommitted clients: {unknown}")
        if len(survivor_ids) < self.threshold:
            raise BelowThresholdError(len(survivor_ids), self.threshold)

        total = np.zeros(self.dim, dtype=np.uint64)
        for upload in uploads:
            total = f_add(total, np.asarray(upload.payload, dtype=np.uint64))

        segments = self.recovery_segments(survivor_ids)[: self.threshold]
        seg_xs = np.array(
            [self._betas[self._positions[m.client_id]] for m in segments],
            dtype=np.uint64,
        )
        seg_ys = np.stack([m.segment for m in segments])
        chunk_sums = interpolate(seg_xs, seg_ys, self._alphas[: self.data_chunks])
        mask_sum = chunk_sums.reshape(-1)[: self.dim]

        self.last_recovery = {
            "survivors": len(survivor_ids),
            "dropped": len(self.client_ids) - len(survivor_ids),
            "recovery_messages": len(segments),
            "segment_size": int(self.chunk_size),
        }
        return from_field_centered(f_sub(total, mask_sum))


class OneShotRecoveryProtocol:
    """Factory for LightSecAgg-style protocol rounds.

    ``threshold=None`` uses the strict-majority default; ``privacy_chunks``
    is the number of random coding chunks ``r`` (clamped to keep at least
    one data chunk).
    """

    name = "secagg_oneshot"

    def __init__(
        self,
        threshold: Optional[int] = None,
        privacy_chunks: int = 1,
        seed: int = 0,
    ) -> None:
        self.threshold = threshold
        self.privacy_chunks = privacy_chunks
        self.seed = seed

    def begin(
        self, client_ids: Sequence[int], round_index: int, dim: int
    ) -> OneShotRound:
        """Commit a round: draw masks and distribute encoded segments."""
        return OneShotRound(
            client_ids,
            round_index,
            dim,
            threshold=self.threshold,
            privacy_chunks=self.privacy_chunks,
            seed=self.seed,
        )
