"""Vectorized Shamir t-of-n secret sharing over GF(2**61 - 1).

Secrets are field scalars (or batches of them); a batch of ``m`` secrets
is shared with *one* coefficient draw and ``n`` Horner evaluations, so
sharing every client's seed pair in a 1000-client round is a handful of
numpy passes rather than ``O(n * m)`` Python loops.

Share ``j`` (1-indexed ``x = j``) of secret ``s`` is ``f(j)`` for a
random polynomial ``f`` of degree ``t - 1`` with ``f(0) = s``.  Any
``t`` shares reconstruct by Lagrange interpolation at zero; ``t - 1``
shares are information-theoretically independent of the secret.
"""

from __future__ import annotations

import numpy as np

from .field import f_add, f_mul, interpolate, rand_field


def share_secrets(
    secrets: np.ndarray,
    num_shares: int,
    threshold: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Split a batch of secrets into ``num_shares`` Shamir shares.

    ``secrets`` has shape ``(m,)`` (canonical field elements); the result
    has shape ``(num_shares, m)`` where row ``j`` is the share evaluated
    at ``x = j + 1``.  Any ``threshold`` rows recover the batch via
    :func:`reconstruct_secrets`.
    """
    secrets = np.atleast_1d(np.asarray(secrets, dtype=np.uint64))
    if not 1 <= threshold <= num_shares:
        raise ValueError("threshold must satisfy 1 <= threshold <= num_shares")
    coeffs = rand_field(rng, (threshold - 1,) + secrets.shape)
    xs = np.arange(1, num_shares + 1, dtype=np.uint64)
    shares = np.zeros((num_shares,) + secrets.shape, dtype=np.uint64)
    # Horner from the highest-degree coefficient down to f(0) = secret.
    for degree in range(threshold - 2, -1, -1):
        shares = f_add(f_mul(shares, xs[:, None]), coeffs[degree][None])
    return f_add(f_mul(shares, xs[:, None]), secrets[None])


def reconstruct_secrets(xs, shares: np.ndarray) -> np.ndarray:
    """Recover the secret batch from shares at the given x-coordinates.

    ``xs`` are the 1-indexed share coordinates (length ``k >= threshold``)
    and ``shares`` the matching ``(k, m)`` rows.  Interpolates the sharing
    polynomials at zero.
    """
    xs = np.asarray(xs, dtype=np.uint64)
    shares = np.atleast_2d(np.asarray(shares, dtype=np.uint64))
    if len(xs) != len(shares):
        raise ValueError("xs/shares length mismatch")
    if len(set(int(x) for x in xs)) != len(xs):
        raise ValueError("share x-coordinates must be distinct")
    return interpolate(xs, shares, np.zeros(1, dtype=np.uint64))[0]
