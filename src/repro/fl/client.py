"""An FL client: local data, optional client-side defense, honest training.

Clients are *honest* in the paper's threat model — they faithfully train
whatever model the server sends.  Their only protection is local batch
preprocessing (OASIS, transform-replace) or gradient post-processing (DP,
pruning), applied through a pluggable
:class:`~repro.defense.ClientDefense` — a single defense, a composed
:class:`~repro.defense.DefensePipeline`, or a registry spec string like
``"MR>dpsgd"`` (resolved through :func:`repro.defense.make_defense`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.synthetic import SyntheticImageDataset
from repro.defense.base import ClientDefense, NoDefense
from repro.fl.gradients import compute_defended_update
from repro.fl.messages import GradientUpdate, ModelBroadcast
from repro.nn.module import Module


class Client:
    """One federated participant with a private local dataset."""

    def __init__(
        self,
        client_id: int,
        dataset: SyntheticImageDataset,
        model: Module,
        loss_fn: Module,
        batch_size: int,
        defense: "ClientDefense | str | None" = None,
        seed: int = 0,
    ) -> None:
        self.client_id = client_id
        self.dataset = dataset
        self.model = model
        self.loss_fn = loss_fn
        self.batch_size = min(batch_size, len(dataset))
        if defense is None:
            defense = NoDefense()
        elif isinstance(defense, str):
            from repro.defense.registry import make_defense

            defense = make_defense(defense)
        self.defense = defense
        self._rng = np.random.default_rng((seed, client_id))
        self.last_batch: Optional[tuple[np.ndarray, np.ndarray]] = None

    def local_update(self, broadcast: ModelBroadcast) -> GradientUpdate:
        """One round of honest local training on the received model.

        Loads the (possibly malicious) global state, samples a private
        batch, applies the defense's batch hook, computes gradients, applies
        the defense's gradient hook, and uploads.
        """
        self.model.load_state_dict(broadcast.state)
        images, labels = self.dataset.sample_batch(self.batch_size, self._rng)
        self.last_batch = (images.copy(), labels.copy())
        gradients, loss, num_examples = compute_defended_update(
            self.model, self.loss_fn, images, labels, self.defense, self._rng
        )
        return GradientUpdate(
            client_id=self.client_id,
            round_index=broadcast.round_index,
            num_examples=num_examples,
            gradients=gradients,
            loss=loss,
        )
