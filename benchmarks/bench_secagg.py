"""SecAgg bench: dropout-recovery gate and protocol overhead vs masked_sum.

The acceptance criterion of the secure-aggregation subsystem, measured at
the paper's fleet scale: a 100-client round in which 30% of the fleet
drops *after* mask commitment must recover the survivors' exact quantized
sum bit-for-bit — under both the Bonawitz-style Shamir-recovery protocol
(``secagg``) and the LightSecAgg-style one-shot recovery protocol
(``secagg_oneshot``).  The gate is ``np.testing.assert_array_equal``
against the survivors' plaintext quantized sum: no tolerance, no float
comparison.

Alongside the gate, the bench records what the cryptographic choreography
costs relative to the plain ``masked_sum`` reduction (which cannot
survive any dropout at all): wall-clock per round with and without
dropout, and the overhead ratio.  Results merge into
``BENCH_secagg.json`` next to this file.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_secagg.py --benchmark-only
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from common import bench_rng, record_report
from repro.fl import make_aggregator

JSON_PATH = Path(__file__).parent / "BENCH_secagg.json"

NUM_CLIENTS = 100
DROPOUT_FRACTION = 0.30
DIM = 1024
PROTOCOLS = ("secagg", "secagg_oneshot")

_RESULTS: dict = {}


def _fleet():
    """The bench fleet: updates, committed ids, and a 30% post-commit drop."""
    matrix = 0.1 * bench_rng(5).standard_normal((NUM_CLIENTS, DIM))
    committed = list(range(NUM_CLIENTS))
    num_dropped = int(NUM_CLIENTS * DROPOUT_FRACTION)
    dropped = set(bench_rng(7).permutation(NUM_CLIENTS)[:num_dropped].tolist())
    survivors = sorted(set(committed) - dropped)
    return matrix, committed, survivors


def _best_of(fn, rounds: int = 3) -> float:
    fn()  # warmup
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_secagg_dropout_recovery_and_overhead(benchmark):
    matrix, committed, survivors = _fleet()
    assert len(survivors) == NUM_CLIENTS - int(NUM_CLIENTS * DROPOUT_FRACTION)

    # The plain baseline: one masked-sum reduction over the survivors.
    # It has no recovery story — a single dropped-after-commit client
    # would leave its masks in the sum forever — which is exactly the
    # overhead comparison's point.
    plain = make_aggregator("masked_sum", seed=11)
    plain_s = _best_of(lambda: plain.reduce(matrix[survivors], None))

    per_protocol: dict[str, dict] = {}
    for name in PROTOCOLS:
        aggregator = make_aggregator(name, seed=11)

        def full_round(agg=aggregator):
            return agg.protocol_round(
                matrix[survivors], survivors, committed, round_index=0
            )

        def no_dropout_round(agg=aggregator):
            return agg.protocol_round(
                matrix, committed, committed, round_index=0
            )

        # The bit-for-bit gate: 100 committed clients, 30 dropped after
        # mask commitment, survivors' exact quantized sum recovered.
        # (pytest-benchmark allows one pedantic call per test.)
        if name == PROTOCOLS[0]:
            recovered = benchmark.pedantic(full_round, rounds=1, iterations=1)
        else:
            recovered = full_round()
        exact = aggregator.codec.quantize(
            matrix[survivors], count=NUM_CLIENTS
        ).sum(axis=0, dtype=np.uint64)
        expected = aggregator.codec.dequantize_sum(exact) / len(survivors)
        np.testing.assert_array_equal(recovered, expected)
        meta = aggregator.last_metadata
        assert meta["survivors"] == len(survivors)
        assert meta["committed"] == NUM_CLIENTS

        dropout_s = _best_of(full_round)
        smooth_s = _best_of(no_dropout_round)
        per_protocol[name] = {
            "round_with_30pct_dropout_s": dropout_s,
            "round_no_dropout_s": smooth_s,
            "overhead_vs_masked_sum": dropout_s / plain_s,
            "recovery_exact": True,
        }

    _RESULTS["secagg_dropout_recovery"] = {
        "num_clients": NUM_CLIENTS,
        "dim": DIM,
        "dropout_fraction": DROPOUT_FRACTION,
        "survivors": len(survivors),
        "masked_sum_baseline_s": plain_s,
        "protocols": per_protocol,
    }
    record_report(
        "SecAgg — 100-client round, 30% dropped after mask commitment",
        f"masked_sum baseline (no recovery possible) {1e3 * plain_s:8.2f} ms\n"
        + "\n".join(
            f"{name:<16} drop {1e3 * stats['round_with_30pct_dropout_s']:8.2f} ms"
            f"   smooth {1e3 * stats['round_no_dropout_s']:8.2f} ms"
            f"   ({stats['overhead_vs_masked_sum']:.1f}x masked_sum, exact sum OK)"
            for name, stats in per_protocol.items()
        ),
    )
    _write_json()


def _write_json() -> None:
    # Merge with any existing file so running one bench in isolation does
    # not drop another bench's recorded section.
    merged: dict = {}
    if JSON_PATH.exists():
        try:
            merged = json.loads(JSON_PATH.read_text())
        except (ValueError, OSError):
            merged = {}
    merged.update(_RESULTS)
    JSON_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
