"""Figure 6: OASIS vs CAH — single transforms vs the MR+SH integration.

Paper shape: at B=8 neither SH nor MR alone fully prevents perfect
reconstructions (random trap directions are not invariant to any single
transform); integrating MR+SH drives PSNR below ~25 dB.  At B=64 all arms
improve and MR+SH remains the strongest.  Settings: ImageNet (8,100)/
(64,700); CIFAR100 (8,300)/(64,600).
"""

from __future__ import annotations

from common import cifar100_bench, imagenet_bench, record_report
from repro.experiments import FIG6_LINEUP, run_defense_lineup

SETTINGS = {
    "imagenet": ((8, 100), (64, 700)),
    "cifar100": ((8, 300), (64, 600)),
}


def _run(dataset, batch_size, num_neurons):
    return run_defense_lineup(
        dataset, "cah", batch_size, num_neurons, FIG6_LINEUP, num_trials=2, seed=13
    )


def _check_shape(result):
    averages = result.averages()
    assert averages["WO"] > averages["MR+SH"] + 20.0, "integration must defend"
    assert averages["MR+SH"] <= averages["MR"] + 2.0, "MR+SH should not lose to MR"
    assert averages["MR+SH"] <= averages["SH"] + 2.0, "MR+SH should not lose to SH"
    assert averages["MR+SH"] < 30.0, "paper: integration reaches <25 dB regime"
    return averages


def test_fig06_cah_transforms_imagenet(benchmark):
    def run_both():
        return [
            _run(imagenet_bench(), batch, neurons)
            for batch, neurons in SETTINGS["imagenet"]
        ]

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    body = []
    for (batch, neurons), result in zip(SETTINGS["imagenet"], results):
        _check_shape(result)
        body.append(f"(B, n) = ({batch}, {neurons})\n{result.to_table()}")
    record_report("Figure 6a — CAH vs OASIS transformations, ImageNet", "\n\n".join(body))


def test_fig06_cah_transforms_cifar100(benchmark):
    def run_both():
        return [
            _run(cifar100_bench(), batch, neurons)
            for batch, neurons in SETTINGS["cifar100"]
        ]

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    body = []
    for (batch, neurons), result in zip(SETTINGS["cifar100"], results):
        _check_shape(result)
        body.append(f"(B, n) = ({batch}, {neurons})\n{result.to_table()}")
    record_report("Figure 6b — CAH vs OASIS transformations, CIFAR100", "\n\n".join(body))
