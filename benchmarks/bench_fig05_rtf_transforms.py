"""Figure 5: OASIS vs RTF, PSNR distribution per transformation.

Paper shape: without OASIS most reconstructions sit at 130-145 dB; every
transformation collapses that to low dB, with major rotation the strongest
(15-20 dB) and flips slightly above it.  Settings follow the paper's
strongest-attack pairs: ImageNet (8,900)/(64,800), CIFAR100 (8,500)/(64,600).
"""

from __future__ import annotations

import numpy as np

from common import cifar100_bench, imagenet_bench, record_report
from repro.experiments import FIG5_LINEUP, run_defense_lineup

SETTINGS = {
    "imagenet": ((8, 900), (64, 800)),
    "cifar100": ((8, 500), (64, 600)),
}


def _run(dataset, batch_size, num_neurons):
    return run_defense_lineup(
        dataset, "rtf", batch_size, num_neurons, FIG5_LINEUP, num_trials=2, seed=11
    )


def _check_shape(result):
    averages = result.averages()
    assert averages["WO"] > 100.0, "undefended RTF must be near-perfect"
    for suite in ("MR", "mR", "SH", "HFlip", "VFlip"):
        assert averages[suite] < averages["WO"] - 80.0, f"{suite} failed to defend"
    assert averages["MR"] < 30.0, "major rotation should be in the 15-20 dB regime"
    return averages


def test_fig05_rtf_transforms_imagenet(benchmark):
    def run_both():
        return [
            _run(imagenet_bench(), batch, neurons)
            for batch, neurons in SETTINGS["imagenet"]
        ]

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    body = []
    for (batch, neurons), result in zip(SETTINGS["imagenet"], results):
        _check_shape(result)
        body.append(f"(B, n) = ({batch}, {neurons})\n{result.to_table()}")
    record_report("Figure 5a — RTF vs OASIS transformations, ImageNet", "\n\n".join(body))


def test_fig05_rtf_transforms_cifar100(benchmark):
    def run_both():
        return [
            _run(cifar100_bench(), batch, neurons)
            for batch, neurons in SETTINGS["cifar100"]
        ]

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    body = []
    for (batch, neurons), result in zip(SETTINGS["cifar100"], results):
        averages = _check_shape(result)
        # The paper's fine ordering: flips slightly above major rotation.
        assert averages["HFlip"] >= averages["MR"] - 2.0
        body.append(f"(B, n) = ({batch}, {neurons})\n{result.to_table()}")
    record_report("Figure 5b — RTF vs OASIS transformations, CIFAR100", "\n\n".join(body))
