"""Figures 7-12: visual reconstructions per transformation.

Regenerates the qualitative galleries: with OASIS the best-matching
reconstruction of every original is an overlap of the original and its
transforms (low PSNR), not a verbatim copy.  One panel per transformation:
MR (Fig. 7), mR (Fig. 8), SH (Fig. 9), HFlip (Fig. 10), VFlip (Fig. 11)
against RTF, and MR+SH against CAH (Fig. 12).  ASCII previews of the first
pair are embedded in the report; full arrays are saved under
``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

from common import cifar100_bench, record_report
from repro.experiments import reconstruction_gallery, render_pairs

# Batch size per panel: RTF panels use B=8 (protection is deterministic —
# same-bin collapse); the CAH panel uses B=64, the regime where trap
# occupancy makes sole activations rare (at B=8 CAH can still catch an
# image alone even under MR+SH — visible as outliers in the paper's Fig. 6
# boxplots).
PANELS = (
    ("Figure 7", "rtf", "MR", 8),
    ("Figure 8", "rtf", "mR", 8),
    ("Figure 9", "rtf", "SH", 8),
    ("Figure 10", "rtf", "HFlip", 8),
    ("Figure 11", "rtf", "VFlip", 8),
    ("Figure 12", "cah", "MR+SH", 64),
)

RESULTS_DIR = Path(__file__).parent / "results"


def _run_all():
    dataset = cifar100_bench()
    galleries = []
    for figure, attack, suite, batch_size in PANELS:
        gallery = reconstruction_gallery(
            dataset, attack, suite, batch_size=batch_size, num_neurons=300,
            seed=17, max_pairs=3,
        )
        gallery.save(RESULTS_DIR)
        galleries.append((figure, suite, gallery))
    return galleries


def test_fig07_12_visual_reconstructions(benchmark):
    galleries = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    blocks = []
    for figure, suite, gallery in galleries:
        assert len(gallery.originals) > 0, f"{figure}: no reconstructions"
        worst = max(gallery.psnrs)
        # Every best-match reconstruction must be an overlap, not a copy.
        assert worst < 60.0, f"{figure} ({suite}): verbatim leak at {worst:.1f} dB"
        blocks.append(
            f"{figure} ({gallery.attack} vs OASIS-{suite}): "
            f"best-match PSNRs = {[round(p, 1) for p in gallery.psnrs]}\n"
            + render_pairs(gallery, width=24, max_pairs=1)
        )
    record_report(
        "Figures 7-12 — visual reconstruction galleries (arrays in benchmarks/results/)",
        "\n\n".join(blocks),
    )
