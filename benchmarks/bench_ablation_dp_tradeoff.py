"""Ablation: the DP privacy/utility trade-off that motivates OASIS.

Paper Secs. I & V: DP can blunt active reconstruction, but only at noise
levels that destroy the gradient signal — whereas OASIS reaches low PSNR
at zero gradient distortion.  This bench sweeps the DP noise multiplier
and reports, per level: attack PSNR and the relative gradient distortion
(noise-to-signal ratio of the uploaded update), alongside the OASIS row.
"""

from __future__ import annotations

import numpy as np

from common import bench_rng, cifar100_bench, record_report
from repro.defense import DPGradientDefense, OasisDefense
from repro.experiments import format_table, run_attack_trial
from repro.fl import compute_batch_gradients
from repro.attacks import ImprintedModel, RTFAttack
from repro.nn import CrossEntropyLoss

NOISE_MULTIPLIERS = (0.0, 1e-7, 1e-5, 1e-3, 1e-1)


def _gradient_distortion(dataset, defense, seed=29):
    """Relative L2 distortion the defense imposes on the uploaded update."""
    rng = bench_rng(seed)
    images, labels = dataset.sample_batch(8, rng)
    model = ImprintedModel(dataset.image_shape, 200, dataset.num_classes,
                           rng=bench_rng(seed))
    attack = RTFAttack(200)
    attack.calibrate_from_public_data(dataset.images[:200])
    attack.craft(model)
    clean, _ = compute_batch_gradients(model, CrossEntropyLoss(), images, labels)
    processed = defense.process_gradients(
        {k: v.copy() for k, v in clean.items()}, rng
    )
    num = np.sqrt(sum(np.sum((processed[k] - clean[k]) ** 2) for k in clean))
    den = np.sqrt(sum(np.sum(clean[k] ** 2) for k in clean))
    return float(num / max(den, 1e-12))


def _run():
    dataset = cifar100_bench()
    rows = []
    for multiplier in NOISE_MULTIPLIERS:
        defense = DPGradientDefense(clip_norm=10.0, noise_multiplier=multiplier)
        trial = run_attack_trial(dataset, "rtf", 8, 200, defense=defense, seed=29)
        distortion = _gradient_distortion(dataset, defense)
        rows.append((f"DP sigma={multiplier:g}", trial.average_psnr, distortion))
    oasis = OasisDefense("MR")
    trial = run_attack_trial(dataset, "rtf", 8, 200, defense=oasis, seed=29)
    rows.append(("OASIS (MR)", trial.average_psnr, 0.0))
    return rows


def test_ablation_dp_tradeoff(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["defense", "attack PSNR (dB)", "gradient distortion (rel L2)"],
        [[name, f"{p:.1f}", f"{d:.3g}"] for name, p, d in rows],
    )
    record_report("Ablation — DP noise trade-off vs OASIS (RTF, CIFAR100, B=8)", table)
    by_name = {name: (p, d) for name, p, d in rows}
    # No/low noise: attack wins.
    assert by_name["DP sigma=0"][0] > 100.0
    # The noise level that kills the attack also distorts the update badly...
    strong = by_name["DP sigma=0.1"]
    assert strong[0] < 60.0
    assert strong[1] > 1.0, "attack-stopping DP noise should swamp the signal"
    # ...while OASIS stops the attack with zero gradient distortion.
    oasis_psnr, oasis_distortion = by_name["OASIS (MR)"]
    assert oasis_psnr < 30.0
    assert oasis_distortion == 0.0
