"""Parallel sweep bench: process-pool executor vs serial on an 8-cell grid.

Measures one wall-clock comparison: the 8-cell (2 attacks x 2 suites x 2
scenarios) grid below run serially, then run through a 4-worker
:class:`~repro.experiments.ParallelSweepExecutor`.  Two assertions back the
engine's claims:

1. **Correctness** — the parallel store file is byte-identical to the
   serial one (per-cell fingerprint seeding makes results independent of
   executor and worker count).  Always enforced.
2. **Speedup** — parallel wall-clock must be >= 2x faster than serial.
   Enforced whenever the host exposes >= 4 usable cores; on smaller hosts
   (including single-core CI containers, where a process pool cannot beat
   serial by construction) the measurement is still taken and recorded,
   with the gate marked unenforced in the JSON.

Results land in ``BENCH_sweep_parallel.json`` next to this file.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_sweep_parallel.py --benchmark-only
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from common import record_report
from repro.experiments import ParticipationScenario, SweepRunner, make_executor
from repro.data import synthetic_imagenet

JSON_PATH = Path(__file__).parent / "BENCH_sweep_parallel.json"

WORKERS = 4
GATE_SPEEDUP = 2.0
GATE_MIN_CORES = 4


def _usable_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _bench_runner(store):
    """8 cells heavy enough (~1s each) that pool overhead is noise."""
    dataset = synthetic_imagenet(samples_per_class=32, image_size=32, seed=1001)
    return SweepRunner(
        dataset,
        attacks=("rtf", "cah"),
        defenses=("WO", "MR"),
        scenarios=(
            ParticipationScenario("full", num_clients=4),
            ParticipationScenario("sampled", num_clients=8, clients_per_round=4),
        ),
        batch_size=16,
        num_neurons=256,
        rounds=2,
        public_size=128,
        seed=0,
        store=store,
    )


def test_parallel_sweep_speedup(tmp_path, benchmark):
    cores = _usable_cores()
    serial_path = tmp_path / "serial.json"
    parallel_path = tmp_path / "parallel.json"

    start = time.perf_counter()
    serial = _bench_runner(serial_path).run()
    serial_s = time.perf_counter() - start
    assert len(serial.computed) == 8 and not serial.failed

    start = time.perf_counter()
    parallel = benchmark.pedantic(
        lambda: _bench_runner(parallel_path).run(make_executor(WORKERS)),
        rounds=1,
        iterations=1,
    )
    parallel_s = time.perf_counter() - start
    assert len(parallel.computed) == 8 and not parallel.failed

    assert serial_path.read_bytes() == parallel_path.read_bytes(), (
        "parallel store diverged from serial — determinism broken"
    )

    speedup = serial_s / parallel_s
    gate_enforced = cores >= GATE_MIN_CORES
    if gate_enforced:
        assert speedup >= GATE_SPEEDUP, (
            f"{WORKERS}-worker sweep only {speedup:.2f}x faster than serial "
            f"on {cores} cores (gate >= {GATE_SPEEDUP}x)"
        )

    JSON_PATH.write_text(
        json.dumps(
            {
                "grid_cells": 8,
                "workers": WORKERS,
                "usable_cores": cores,
                "serial_s": serial_s,
                "parallel_s": parallel_s,
                "speedup": speedup,
                "stores_byte_identical": True,
                "gate": {
                    "min_speedup": GATE_SPEEDUP,
                    "min_cores": GATE_MIN_CORES,
                    "enforced": gate_enforced,
                },
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    record_report(
        f"Parallel sweep — 8-cell grid, {WORKERS} workers, {cores} cores",
        f"serial    {serial_s:7.2f} s\n"
        f"parallel  {parallel_s:7.2f} s"
        f"   ({speedup:.2f}x, gate >= {GATE_SPEEDUP}x "
        f"{'enforced' if gate_enforced else f'unenforced: < {GATE_MIN_CORES} cores'})\n"
        f"stores byte-identical: yes",
    )
