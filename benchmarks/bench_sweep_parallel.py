"""Parallel sweep bench: work-stealing executor vs serial on an 8-cell grid.

Measures one wall-clock comparison: the 8-cell (2 attacks x 2 suites x 2
scenarios) grid below run serially, then run through
:func:`~repro.experiments.make_executor` asked for 4 workers — which now
adapts to the host instead of oversubscribing (the old pool forced 4
processes onto 1-core CI and ran 0.29x serial speed).  Three assertions
back the engine's claims:

1. **Correctness** — the executor's store file is byte-identical to the
   serial one (per-cell fingerprint seeding plus canonical compaction
   make the bytes independent of executor, worker count, and completion
   order).  Always enforced.
2. **Speedup** — wall-clock must be >= 2x faster than serial.  Enforced
   whenever the host exposes >= 4 usable cores.
3. **No slowdown** — on *any* host, including 1-core containers where
   make_executor degrades to the serial executor, speedup must stay
   >= 0.75x: adapting to the host means never paying pool overhead that
   cannot be repaid.  Always enforced.

Results land in ``BENCH_sweep_parallel.json`` next to this file.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_sweep_parallel.py --benchmark-only
"""

from __future__ import annotations

import json
import time
import warnings
from pathlib import Path

from common import record_report
from repro.experiments import (
    ParticipationScenario,
    SweepRunner,
    make_executor,
    usable_cpu_count,
)
from repro.data import synthetic_imagenet

JSON_PATH = Path(__file__).parent / "BENCH_sweep_parallel.json"

REQUESTED_WORKERS = 4
GATE_SPEEDUP = 2.0
GATE_MIN_CORES = 4
GATE_FLOOR = 0.75


def _bench_runner(store):
    """8 cells heavy enough (~1s each) that pool overhead is noise."""
    dataset = synthetic_imagenet(samples_per_class=32, image_size=32, seed=1001)
    return SweepRunner(
        dataset,
        attacks=("rtf", "cah"),
        defenses=("WO", "MR"),
        scenarios=(
            ParticipationScenario("full", num_clients=4),
            ParticipationScenario("sampled", num_clients=8, clients_per_round=4),
        ),
        batch_size=16,
        num_neurons=256,
        rounds=2,
        public_size=128,
        seed=0,
        store=store,
    )


def test_parallel_sweep_speedup(tmp_path, benchmark):
    cores = usable_cpu_count()
    serial_path = tmp_path / "serial.json"
    parallel_path = tmp_path / "parallel.json"

    start = time.perf_counter()
    serial = _bench_runner(serial_path).run()
    serial_s = time.perf_counter() - start
    assert len(serial.computed) == 8 and not serial.failed

    with warnings.catch_warnings():
        # On small hosts make_executor warns as it reduces the worker
        # count; that adaptation is exactly what this bench measures.
        warnings.simplefilter("ignore", RuntimeWarning)
        executor = make_executor(REQUESTED_WORKERS)
    effective_workers = executor.workers

    start = time.perf_counter()
    parallel = benchmark.pedantic(
        lambda: _bench_runner(parallel_path).run(executor),
        rounds=1,
        iterations=1,
    )
    parallel_s = time.perf_counter() - start
    assert len(parallel.computed) == 8 and not parallel.failed

    assert serial_path.read_bytes() == parallel_path.read_bytes(), (
        "work-stealing store diverged from serial — determinism broken"
    )

    speedup = serial_s / parallel_s
    gate_enforced = cores >= GATE_MIN_CORES
    if gate_enforced:
        assert speedup >= GATE_SPEEDUP, (
            f"{effective_workers}-worker sweep only {speedup:.2f}x faster "
            f"than serial on {cores} cores (gate >= {GATE_SPEEDUP}x)"
        )
    assert speedup >= GATE_FLOOR, (
        f"adaptive executor ran {speedup:.2f}x serial speed on {cores} "
        f"core(s) — the no-slowdown floor is {GATE_FLOOR}x; adapting to "
        "the host must never reintroduce the oversubscription regression"
    )

    JSON_PATH.write_text(
        json.dumps(
            {
                "grid_cells": 8,
                "requested_workers": REQUESTED_WORKERS,
                "effective_workers": effective_workers,
                "usable_cores": cores,
                "serial_s": serial_s,
                "parallel_s": parallel_s,
                "speedup": speedup,
                "stores_byte_identical": True,
                "gate": {
                    "min_speedup": GATE_SPEEDUP,
                    "min_cores": GATE_MIN_CORES,
                    "enforced": gate_enforced,
                    "floor_speedup": GATE_FLOOR,
                    "floor_enforced": True,
                },
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    record_report(
        f"Parallel sweep — 8-cell grid, {REQUESTED_WORKERS} requested -> "
        f"{effective_workers} effective workers, {cores} cores",
        f"serial    {serial_s:7.2f} s\n"
        f"stealing  {parallel_s:7.2f} s"
        f"   ({speedup:.2f}x, gate >= {GATE_SPEEDUP}x "
        f"{'enforced' if gate_enforced else f'unenforced: < {GATE_MIN_CORES} cores'}, "
        f"floor >= {GATE_FLOOR}x always)\n"
        f"stores byte-identical: yes",
    )
