"""Figure 3: RTF average PSNR vs batch size and number of attacked neurons.

Paper shape: PSNR decreases with batch size (summed gradients mix more
samples per bin) and generally increases with the number of neurons (finer
bins).  Headline paper values: ImageNet B=8 peaks ~127.9 dB; CIFAR100 B=8
peaks ~147.7 dB; every row decays toward B=256.
"""

from __future__ import annotations

from common import cifar100_bench, imagenet_bench, record_report
from repro.experiments import monotone_in_batch_size, run_sweep

BATCH_SIZES = (8, 32, 64, 128, 256)
NEURON_COUNTS = (100, 300, 500, 700, 900)


def _sweep(dataset):
    return run_sweep(
        dataset, "rtf",
        batch_sizes=BATCH_SIZES,
        neuron_counts=NEURON_COUNTS,
        num_trials=1,
        seed=5,
    )


def test_fig03_rtf_sweep_imagenet(benchmark):
    result = benchmark.pedantic(lambda: _sweep(imagenet_bench()), rounds=1, iterations=1)
    record_report(
        "Figure 3a — RTF sweep, ImageNet (avg PSNR, rows=neurons, cols=batch)",
        result.to_table()
        + f"\nper-batch optima: {result.optima}"
        + f"\nmonotone-decreasing-in-B fraction: {monotone_in_batch_size(result):.2f}",
    )
    assert monotone_in_batch_size(result) >= 0.6
    assert result.optima[8][1] > 100.0  # B=8 in the perfect-reconstruction regime


def test_fig03_rtf_sweep_cifar100(benchmark):
    result = benchmark.pedantic(lambda: _sweep(cifar100_bench()), rounds=1, iterations=1)
    record_report(
        "Figure 3b — RTF sweep, CIFAR100 (avg PSNR, rows=neurons, cols=batch)",
        result.to_table()
        + f"\nper-batch optima: {result.optima}"
        + f"\nmonotone-decreasing-in-B fraction: {monotone_in_batch_size(result):.2f}",
    )
    assert monotone_in_batch_size(result) >= 0.6
    assert result.optima[8][1] > 100.0
