"""Ablation: Proposition 1's premise, measured.

For each attack and transformation suite, the fraction of batch images
whose activation set is exactly matched by a transformed companion
(``protected``), the mean best Jaccard overlap, and the number of
sole-activation neurons.  Expected: RTF + any measurement-preserving suite
gives protection 1.0; CAH gives partial overlap that improves with the
MR+SH integration — the mechanism behind Figs. 5-6.
"""

from __future__ import annotations

from common import bench_rng, cifar100_bench, record_report
from repro.attacks import CAHAttack, ImprintedModel, RTFAttack
from repro.defense import OasisDefense, activation_overlap_report
from repro.experiments import format_table

SUITES = ("MR", "mR", "SH", "HFlip", "VFlip", "MR+SH")


def _crafted(dataset, attack_name, num_neurons=300, seed=31):
    model = ImprintedModel(dataset.image_shape, num_neurons, dataset.num_classes,
                           rng=bench_rng(seed))
    if attack_name == "rtf":
        attack = RTFAttack(num_neurons)
    else:
        attack = CAHAttack(num_neurons, seed=seed)
    attack.calibrate_from_public_data(dataset.images[:200])
    attack.craft(model)
    return model


def _run():
    dataset = cifar100_bench()
    rng = bench_rng(31)
    images, labels = dataset.sample_batch(8, rng)
    rows = []
    for attack_name in ("rtf", "cah"):
        model = _crafted(dataset, attack_name)
        for suite in SUITES:
            report = activation_overlap_report(
                model, OasisDefense(suite), images, labels
            )
            rows.append(
                (
                    attack_name,
                    suite,
                    report.protected_fraction,
                    report.mean_jaccard,
                    report.sole_activations,
                )
            )
    return rows


def test_ablation_activation_overlap(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["attack", "suite", "protected", "mean jaccard", "sole activations"],
        [[a, s, f"{p:.2f}", f"{j:.3f}", n] for a, s, p, j, n in rows],
    )
    record_report("Ablation — Proposition 1 activation overlap (B=8, n=300)", table)
    by_key = {(a, s): (p, j, n) for a, s, p, j, n in rows}
    # RTF: measurement-preserving suites protect everything, zero sole neurons.
    for suite in SUITES:
        protected, jaccard, sole = by_key[("rtf", suite)]
        assert protected == 1.0, f"rtf/{suite} premise violated"
        assert sole == 0
    # CAH: no suite certifies full protection, but the integration's overlap
    # is at least as good as either component's.
    assert by_key[("cah", "MR+SH")][1] >= min(
        by_key[("cah", "MR")][1], by_key[("cah", "SH")][1]
    ) - 1e-9
