"""Attack zoo bench: every registered attack through the full protocol.

One dishonest-server round per (attack, defense) pair on the CIFAR100
stand-in, undefended vs OASIS MR+SH, recording reconstruction counts,
mean/max PSNR, and per-cell wall-clock.  Two claims are gated:

1. **Attack power** — undefended, every imprint-family attack (and the
   linear inversion) recovers at least one image above 18 dB; the
   imprint attacks recover at least one verbatim (>100 dB).
2. **Defense value** — under MR+SH every attack's count of >18 dB matches
   drops below its undefended count (the paper's Fig. 5/6 trend extended
   to the QBI and LOKI workloads).

Results land in ``BENCH_attack_zoo.json`` next to this file.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_attack_zoo.py --benchmark-only
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from common import bench_rng, cifar100_bench, record_report
from repro.attacks import ImprintedModel, LinearClassifier, attack_spec, available_attacks, make_attack
from repro.defense import OasisDefense
from repro.experiments import format_table
from repro.fl import compute_batch_gradients
from repro.metrics import per_image_best_psnr
from repro.nn import CrossEntropyLoss

JSON_PATH = Path(__file__).parent / "BENCH_attack_zoo.json"

BATCH_SIZE = 8
NUM_NEURONS = 128
MATCH_DB = 18.0


def _one_round(attack_name: str, defense):
    dataset = cifar100_bench()
    spec = attack_spec(attack_name)
    attack = make_attack(
        attack_name, NUM_NEURONS, dataset.images[:128], seed=7
    )
    if spec.model == "linear":
        model = LinearClassifier(
            dataset.image_shape, dataset.num_classes,
            rng=bench_rng(11),
        )
    else:
        model = ImprintedModel(
            dataset.image_shape, NUM_NEURONS, dataset.num_classes,
            rng=bench_rng(11),
        )
    attack.craft(model)
    rng = bench_rng(12345)
    images, labels = dataset.sample_batch(BATCH_SIZE, rng)
    if defense is not None:
        train_images, train_labels = defense.expand_batch(images, labels)
    else:
        train_images, train_labels = images, labels
    start = time.perf_counter()
    grads, _ = compute_batch_gradients(
        model, CrossEntropyLoss(), train_images, train_labels
    )
    result = attack.reconstruct(grads)
    elapsed = time.perf_counter() - start
    best = (
        per_image_best_psnr(images, result.images)
        if len(result)
        else np.zeros(BATCH_SIZE)
    )
    return {
        "num_reconstructions": int(len(result)),
        "matches_over_18db": int((best > MATCH_DB).sum()),
        "best_psnr": float(best.max()) if len(best) else 0.0,
        "seconds": elapsed,
        "reason": result.reason,
    }


def test_attack_zoo_grid(benchmark):
    cells = benchmark.pedantic(
        lambda: {
            name: {
                "WO": _one_round(name, None),
                "MR+SH": _one_round(name, OasisDefense("MR+SH")),
            }
            for name in available_attacks()
        },
        rounds=1,
        iterations=1,
    )

    rows = []
    for name, arms in cells.items():
        rows.append([
            name,
            f"{arms['WO']['matches_over_18db']}/{BATCH_SIZE}",
            f"{arms['WO']['best_psnr']:.1f}",
            f"{arms['MR+SH']['matches_over_18db']}/{BATCH_SIZE}",
            f"{arms['WO']['seconds'] * 1e3:.0f}ms",
        ])
        # Gate 1: the attack works when nothing defends.
        assert arms["WO"]["matches_over_18db"] >= 1, name
        if attack_spec(name).model == "imprint":
            assert arms["WO"]["best_psnr"] > 100.0, name
        # Gate 2: MR+SH drops the match rate.
        assert (
            arms["MR+SH"]["matches_over_18db"]
            < arms["WO"]["matches_over_18db"]
        ), name

    table = format_table(
        ["attack", "WO >18dB", "WO best", "MR+SH >18dB", "round"], rows
    )
    record_report("Attack zoo: undefended vs OASIS MR+SH", table)
    JSON_PATH.write_text(
        json.dumps(
            {
                "batch_size": BATCH_SIZE,
                "num_neurons": NUM_NEURONS,
                "match_threshold_db": MATCH_DB,
                "cells": cells,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
