"""Figure 13: gradient inversion on linear models, per transformation.

Paper shape: on a single-layer logistic model with unique-label batches,
every OASIS transformation yields low-PSNR mixtures (the same-neuron
guarantee holds by construction); rotation and shearing defend slightly
better than flips.  Both datasets, B in {8, 64}.
"""

from __future__ import annotations

from common import cifar100_bench, imagenet_bench, record_report
from repro.experiments import FIG13_LINEUP, run_linear_lineup


def _run(dataset, batch_size):
    return run_linear_lineup(dataset, batch_size, FIG13_LINEUP, num_trials=2, seed=19)


def _check_shape(result):
    averages = result.averages()
    for suite in ("MR", "mR", "SH", "HFlip", "VFlip"):
        assert averages[suite] < averages["WO"], f"{suite} failed to reduce PSNR"
    assert averages["MR"] < 30.0
    return averages


def test_fig13_linear_cifar100(benchmark):
    def run_both():
        return [_run(cifar100_bench(), 8), _run(cifar100_bench(), 64)]

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    body = []
    for batch, result in zip((8, 64), results):
        _check_shape(result)
        body.append(f"B = {batch}\n{result.to_table()}")
    record_report("Figure 13b — linear-model inversion, CIFAR100", "\n\n".join(body))


def test_fig13_linear_imagenet(benchmark):
    # The ImageNet stand-in has 10 classes; unique labels cap B at 10, so
    # the B=64 panel is run at the dataset's maximum (documented deviation).
    def run_both():
        return [_run(imagenet_bench(), 8), _run(imagenet_bench(), 10)]

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    body = []
    for batch, result in zip((8, 10), results):
        _check_shape(result)
        body.append(f"B = {batch}\n{result.to_table()}")
    record_report("Figure 13a — linear-model inversion, ImageNet", "\n\n".join(body))
