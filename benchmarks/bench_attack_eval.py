"""Attack-eval bench: vectorized expansion + matching vs the scalar paths.

Three measurements back the vectorized attack-vs-defense evaluation
engine's claims, each gated against the seed's scalar implementation:

1. **Batch expansion** — ``OasisDefense.expand_batch`` on a 64-image batch
   with the MR+SH suite (the paper's heaviest lineup, 6 transforms) must be
   ≥ 5x faster than the seed's ``np.stack([transform(image) for image in
   images])`` per-image loop, with outputs equal within 1e-9.
2. **Reconstruction matching** — the broadcasted pairwise-PSNR matcher
   (``match_reconstructions`` / ``per_image_best_psnr``) must be ≥ 5x
   faster than the seed's O(R x B) Python loop of scalar ``psnr`` calls,
   equal within 1e-9.
3. **Sweep throughput** — cells/sec of a small ``SweepRunner`` grid, so
   regressions in the end-to-end evaluation loop show up as a number.

Results are recorded as a report and emitted to ``BENCH_attack_eval.json``
next to this file.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_attack_eval.py --benchmark-only
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from common import bench_rng, imagenet_bench, record_report
from repro.defense import OasisDefense
from repro.experiments import ParticipationScenario, SweepRunner
from repro.metrics import (
    average_attack_psnr,
    match_reconstructions,
    per_image_best_psnr,
    psnr,
)

JSON_PATH = Path(__file__).parent / "BENCH_attack_eval.json"

BATCH_SIZE = 64
SUITE = "MR+SH"
_RESULTS: dict = {}


def _best_of(fn, rounds: int = 7) -> float:
    fn()  # warmup
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _scalar_expand_batch(defense: OasisDefense, images, labels):
    """The seed's per-image expansion loop, kept as the benchmark baseline."""
    blocks = [images]
    label_blocks = [labels]
    for transform in defense.suite.transforms:
        transformed = np.stack([transform(image) for image in images])
        blocks.append(transformed.astype(images.dtype, copy=False))
        label_blocks.append(labels.copy())
    return np.concatenate(blocks, axis=0), np.concatenate(label_blocks, axis=0)


def _batch(dataset, size: int, seed: int = 0):
    rng = bench_rng(seed)
    return dataset.sample_batch(size, rng)


def test_batched_expansion_speedup(benchmark):
    dataset = imagenet_bench()
    images, labels = _batch(dataset, BATCH_SIZE)
    defense = OasisDefense(SUITE)

    vectorized = benchmark.pedantic(
        lambda: defense.expand_batch(images, labels), rounds=7, iterations=1
    )
    scalar = _scalar_expand_batch(defense, images, labels)
    np.testing.assert_allclose(vectorized[0], scalar[0], atol=1e-9)
    np.testing.assert_array_equal(vectorized[1], scalar[1])

    scalar_s = _best_of(lambda: _scalar_expand_batch(defense, images, labels))
    batched_s = _best_of(lambda: defense.expand_batch(images, labels))
    speedup = scalar_s / batched_s
    assert speedup >= 5.0, (
        f"batched expansion only {speedup:.1f}x faster than the scalar loop"
    )

    _RESULTS["expansion"] = {
        "batch_size": BATCH_SIZE,
        "suite": SUITE,
        "expanded_size": len(scalar[0]),
        "scalar_loop_s": scalar_s,
        "batched_s": batched_s,
        "speedup": speedup,
    }
    record_report(
        f"Attack eval — OASIS batch expansion ({SUITE}, B={BATCH_SIZE})",
        f"scalar per-image loop {1e3 * scalar_s:8.3f} ms\n"
        f"batched apply_batch   {1e3 * batched_s:8.3f} ms"
        f"   ({speedup:.1f}x, gate >= 5x)",
    )
    _write_json()


def _scalar_match(originals, reconstructions):
    """The seed's O(R x B) matching loop, kept as the benchmark baseline."""
    matches = []
    for recon in reconstructions:
        scores = [psnr(original, recon) for original in originals]
        best = int(np.argmax(scores))
        matches.append((best, scores[best]))
    per_image = np.empty(len(originals))
    for i, original in enumerate(originals):
        per_image[i] = max(psnr(original, recon) for recon in reconstructions)
    return matches, per_image


def test_vectorized_matching_speedup(benchmark):
    dataset = imagenet_bench()
    originals, _ = _batch(dataset, BATCH_SIZE)
    rng = bench_rng(7)
    # A realistic attack output: some near-perfect hits, some mixtures.
    reconstructions = np.concatenate(
        [
            originals[rng.permutation(BATCH_SIZE)[: BATCH_SIZE // 2]]
            + 1e-3 * rng.standard_normal((BATCH_SIZE // 2,) + originals.shape[1:]),
            rng.random((BATCH_SIZE // 2,) + originals.shape[1:]),
        ]
    )

    def vectorized():
        return (
            match_reconstructions(originals, reconstructions),
            per_image_best_psnr(originals, reconstructions),
        )

    matches, per_image = benchmark.pedantic(vectorized, rounds=7, iterations=1)
    scalar_matches, scalar_per_image = _scalar_match(originals, reconstructions)
    assert [index for index, _ in matches] == [i for i, _ in scalar_matches]
    np.testing.assert_allclose(
        [score for _, score in matches],
        [score for _, score in scalar_matches],
        atol=1e-9,
    )
    np.testing.assert_allclose(per_image, scalar_per_image, atol=1e-9)

    scalar_s = _best_of(lambda: _scalar_match(originals, reconstructions))
    vectorized_s = _best_of(vectorized)
    unique_s = _best_of(
        lambda: match_reconstructions(
            originals, reconstructions, assignment="unique"
        )
    )
    average_s = _best_of(lambda: average_attack_psnr(originals, reconstructions))
    speedup = scalar_s / vectorized_s
    assert speedup >= 5.0, (
        f"vectorized matching only {speedup:.1f}x faster than the scalar loop"
    )

    _RESULTS["matching"] = {
        "num_originals": len(originals),
        "num_reconstructions": len(reconstructions),
        "scalar_loop_s": scalar_s,
        "vectorized_s": vectorized_s,
        "unique_assignment_s": unique_s,
        "average_attack_psnr_s": average_s,
        "speedup": speedup,
    }
    record_report(
        f"Attack eval — reconstruction matching ({BATCH_SIZE}x{BATCH_SIZE})",
        f"scalar O(RxB) loop  {1e3 * scalar_s:8.3f} ms\n"
        f"pairwise matrix     {1e3 * vectorized_s:8.3f} ms"
        f"   ({speedup:.1f}x, gate >= 5x)\n"
        f"unique (Hungarian)  {1e3 * unique_s:8.3f} ms",
    )
    _write_json()


def test_sweep_cells_per_sec(benchmark):
    dataset = imagenet_bench()
    runner = SweepRunner(
        dataset,
        attacks=("rtf", "cah"),
        defenses=("WO", "MR", "MR+SH"),
        scenarios=(
            ParticipationScenario("full", num_clients=2),
            ParticipationScenario("sampled", num_clients=4, clients_per_round=2),
        ),
        batch_size=8,
        num_neurons=64,
        public_size=128,
        seed=0,
    )
    start = time.perf_counter()
    outcome = benchmark.pedantic(runner.run, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    num_cells = len(outcome.results)
    assert num_cells == 12
    cells_per_sec = num_cells / elapsed

    _RESULTS["sweep"] = {
        "num_cells": num_cells,
        "elapsed_s": elapsed,
        "cells_per_sec": cells_per_sec,
        "mean_psnr": {
            key: result["mean_psnr"] for key, result in outcome.results.items()
        },
    }
    record_report(
        "Attack eval — sweep throughput (2 attacks x 3 suites x 2 scenarios)",
        f"{num_cells} cells in {elapsed:.2f} s  ({cells_per_sec:.1f} cells/s)",
    )
    _write_json()


def _write_json() -> None:
    # Merge with any existing file so running one bench in isolation does
    # not drop the other bench's recorded section.
    merged: dict = {}
    if JSON_PATH.exists():
        try:
            merged = json.loads(JSON_PATH.read_text())
        except (ValueError, OSError):
            merged = {}
    merged.update(_RESULTS)
    JSON_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
