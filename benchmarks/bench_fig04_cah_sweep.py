"""Figure 4: CAH average PSNR vs batch size and number of attacked neurons.

Paper shape: like RTF, CAH weakens with batch size (trap occupancy grows).
Headline values: ImageNet B=8 peaks ~147.9 dB, B=64 ~97.4 dB; CIFAR100
B=8 ~70.5 dB, B=64 ~40.0 dB.
"""

from __future__ import annotations

from common import cifar100_bench, imagenet_bench, record_report
from repro.experiments import monotone_in_batch_size, run_sweep

BATCH_SIZES = (8, 32, 64, 128)
NEURON_COUNTS = (100, 300, 500, 700)


def _sweep(dataset):
    return run_sweep(
        dataset, "cah",
        batch_sizes=BATCH_SIZES,
        neuron_counts=NEURON_COUNTS,
        num_trials=1,
        seed=6,
    )


def test_fig04_cah_sweep_imagenet(benchmark):
    result = benchmark.pedantic(lambda: _sweep(imagenet_bench()), rounds=1, iterations=1)
    record_report(
        "Figure 4a — CAH sweep, ImageNet (avg PSNR, rows=neurons, cols=batch)",
        result.to_table()
        + f"\nper-batch optima: {result.optima}"
        + f"\nmonotone-decreasing-in-B fraction: {monotone_in_batch_size(result):.2f}",
    )
    assert monotone_in_batch_size(result) >= 0.6
    assert result.optima[8][1] > result.optima[BATCH_SIZES[-1]][1]


def test_fig04_cah_sweep_cifar100(benchmark):
    result = benchmark.pedantic(lambda: _sweep(cifar100_bench()), rounds=1, iterations=1)
    record_report(
        "Figure 4b — CAH sweep, CIFAR100 (avg PSNR, rows=neurons, cols=batch)",
        result.to_table()
        + f"\nper-batch optima: {result.optima}"
        + f"\nmonotone-decreasing-in-B fraction: {monotone_in_batch_size(result):.2f}",
    )
    assert monotone_in_batch_size(result) >= 0.6
    assert result.optima[8][1] > result.optima[BATCH_SIZES[-1]][1]
