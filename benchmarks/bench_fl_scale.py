"""FL scale bench: buffered aggregation speedup and rounds/sec vs fleet size.

Two measurements back the federation engine's scalability claims:

1. The engine packs every arriving update into a contiguous
   :class:`~repro.fl.RoundBuffer`, so end-of-round aggregation over 100
   clients is one vectorized reduction.  Against the seed's pure-Python
   per-key loop (``average_gradients``-style accumulation over dicts) the
   reduction must be at least 5x faster.  The parameter census mirrors a
   small ResNet: dozens of small-to-medium tensors, which is exactly where
   per-key Python overhead dominates.
2. End-to-end federation throughput (rounds/sec) is recorded at 8/32/100
   clients so regressions in the round loop show up as a number, not a
   feeling.
3. The event-driven engine over a lazy 100k-user fleet: rounds/sec with
   1k and 10k active clients per round under a time cutoff is gated (>= 2
   and >= 0.1 rounds/s) and the materialized-client count is asserted to
   stay O(dispatched), never O(registered).

Results are recorded as a report and emitted to ``BENCH_fl_scale.json``
next to this file.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_fl_scale.py --benchmark-only
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from common import bench_rng, record_report
from repro.data import make_synthetic_dataset
from repro.fl import (
    FederatedSimulation,
    FederationConfig,
    Fleet,
    GradientUpdate,
    RoundBuffer,
    Server,
    TimeCutoff,
    make_aggregator,
)
from repro.fl.engine import ticks
from repro.nn import MLP
from repro.nn.module import Module

JSON_PATH = Path(__file__).parent / "BENCH_fl_scale.json"

# A ResNet-ish parameter census: 20 conv blocks (kernel + two norm vectors)
# plus a classifier head — 62 tensors, ~17k parameters.
PARAM_SHAPES: dict[str, tuple[int, ...]] = {}
for _i in range(20):
    PARAM_SHAPES[f"block{_i}.conv.weight"] = (8, 8, 3, 3)
    PARAM_SHAPES[f"block{_i}.norm.gamma"] = (8,)
    PARAM_SHAPES[f"block{_i}.norm.beta"] = (8,)
PARAM_SHAPES["fc.weight"] = (10, 512)
PARAM_SHAPES["fc.bias"] = (10,)

NUM_CLIENTS = 100
_RESULTS: dict = {}


def _make_updates(num_clients: int, seed: int = 0) -> list[dict[str, np.ndarray]]:
    rng = bench_rng(seed)
    return [
        {name: rng.standard_normal(shape) for name, shape in PARAM_SHAPES.items()}
        for _ in range(num_clients)
    ]


def _python_loop_mean(updates: list[dict[str, np.ndarray]]) -> dict[str, np.ndarray]:
    """The seed's aggregation: a pure-Python per-key accumulation loop."""
    weight = 1.0 / len(updates)
    aggregated = {name: np.zeros_like(value) for name, value in updates[0].items()}
    for update in updates:
        for name, value in update.items():
            aggregated[name] += weight * value
    return aggregated


def _best_of(fn, rounds: int = 9) -> float:
    fn()  # warmup
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_buffered_aggregation_speedup(benchmark):
    updates = _make_updates(NUM_CLIENTS)
    aggregator = make_aggregator("fedavg")
    buffer = RoundBuffer.for_updates(updates)  # ingest-time packing

    vectorized = benchmark.pedantic(
        lambda: aggregator.aggregate_buffer(buffer), rounds=9, iterations=1
    )
    baseline = _python_loop_mean(updates)
    for name in baseline:
        np.testing.assert_allclose(vectorized[name], baseline[name], atol=1e-12)

    loop_s = _best_of(lambda: _python_loop_mean(updates))
    reduce_s = _best_of(lambda: aggregator.aggregate_buffer(buffer))
    ingest_s = _best_of(lambda: RoundBuffer.for_updates(updates))
    speedup = loop_s / reduce_s
    assert speedup >= 5.0, (
        f"buffered aggregation only {speedup:.1f}x faster than the Python loop"
    )

    robust = {
        name: _best_of(lambda agg=make_aggregator(name): agg.aggregate_buffer(buffer))
        for name in ("median", "trimmed_mean")
    }
    # masked_sum expands O(K^2) pairwise masks — time it at a modest fleet.
    masked_buffer = RoundBuffer.for_updates(updates[:16])
    robust["masked_sum@16"] = _best_of(
        lambda: make_aggregator("masked_sum").aggregate_buffer(masked_buffer)
    )

    _RESULTS["aggregation"] = {
        "num_clients": NUM_CLIENTS,
        "num_tensors": len(PARAM_SHAPES),
        "dim": buffer.dim,
        "python_loop_s": loop_s,
        "buffered_fedavg_s": reduce_s,
        "ingest_packing_s": ingest_s,
        "speedup": speedup,
        "robust_rules_s": robust,
    }
    record_report(
        "FL scale — buffered aggregation vs per-key Python loop (100 clients)",
        f"python loop     {1e3 * loop_s:8.3f} ms\n"
        f"buffered fedavg {1e3 * reduce_s:8.3f} ms   ({speedup:.1f}x, gate >= 5x)\n"
        f"ingest packing  {1e3 * ingest_s:8.3f} ms   (amortized over arrivals)\n"
        + "\n".join(
            f"{name:<16}{1e3 * seconds:8.3f} ms" for name, seconds in robust.items()
        ),
    )
    _write_json()


def _rounds_per_sec(num_clients: int, dataset, rounds: int = 3) -> float:
    config = FederationConfig(
        num_clients=num_clients,
        clients_per_round=num_clients,
        batch_size=2,
        dropout_rate=0.1,
        seed=0,
    )
    sim = FederatedSimulation(
        dataset,
        lambda: MLP([dataset.flat_dim, 16, dataset.num_classes],
                    rng=bench_rng(0)),
        config,
    )
    start = time.perf_counter()
    records = sim.run(rounds)
    elapsed = time.perf_counter() - start
    assert len(records) == rounds
    return rounds / elapsed


def test_federation_rounds_per_sec(benchmark):
    dataset = make_synthetic_dataset(4, 50, image_size=8, seed=31, name="scale")
    scaling = benchmark.pedantic(
        lambda: {n: _rounds_per_sec(n, dataset) for n in (8, 32, 100)},
        rounds=1,
        iterations=1,
    )
    assert all(rate > 0.0 for rate in scaling.values())
    # Throughput should degrade sublinearly vs the 12.5x fleet growth.
    assert scaling[8] / scaling[100] < 50.0

    _RESULTS["federation_rounds_per_sec"] = {
        str(n): rate for n, rate in scaling.items()
    }
    record_report(
        "FL scale — federation throughput vs fleet size (dropout 10%)",
        "\n".join(
            f"{n:>4} clients: {rate:7.2f} rounds/s"
            for n, rate in scaling.items()
        ),
    )
    _write_json()


FLEET_SIZE = 100_000
FLEET_DIM = 1024
# Honest floors well under the measured dev-box numbers (~11 and ~0.7
# rounds/s) so CI jitter does not flake the gate, while a 10x regression
# in the event loop or fleet materialization still fails loudly.
FLEET_GATES = {1000: 2.0, 10_000: 0.1}


class _FleetStubClient:
    """Constant-gradient client: isolates engine + fleet overhead."""

    def __init__(self, client_id: int) -> None:
        self.client_id = client_id
        self._gradients = {"w": np.full(FLEET_DIM, float(client_id % 97))}

    def local_update(self, broadcast) -> GradientUpdate:
        return GradientUpdate(
            client_id=self.client_id,
            round_index=broadcast.round_index,
            num_examples=1,
            gradients=dict(self._gradients),
            loss=1.0,
        )


def _lazy_fleet_rounds_per_sec(active: int, rounds: int = 3) -> dict:
    fleet = Fleet(FLEET_SIZE, _FleetStubClient)
    server = Server(
        Module(),
        fleet,
        clients_per_round=active,
        arrivals="tiered",
        cutoff=TimeCutoff(ticks(2.0), min_arrivals=active // 10),
        seed=0,
    )
    server.run(1)  # warmup round: first materialization of the cohort
    start = time.perf_counter()
    records = server.run(rounds)
    elapsed = time.perf_counter() - start
    assert all(len(r.participant_ids) >= active // 10 for r in records)
    return {
        "active_per_round": active,
        "registered": FLEET_SIZE,
        "rounds_per_sec": rounds / elapsed,
        "materialized": fleet.materialized_count,
    }


def test_lazy_fleet_engine_throughput(benchmark):
    results = benchmark.pedantic(
        lambda: {n: _lazy_fleet_rounds_per_sec(n) for n in FLEET_GATES},
        rounds=1,
        iterations=1,
    )
    for active, floor in FLEET_GATES.items():
        rate = results[active]["rounds_per_sec"]
        assert rate >= floor, (
            f"{active} active clients: {rate:.2f} rounds/s under gate {floor}"
        )
        # Laziness gate: 4 rounds dispatch at most 4 * active distinct
        # clients; the other ~100k registered users must never be built.
        assert results[active]["materialized"] <= 4 * active

    _RESULTS["lazy_fleet_engine"] = {
        str(active): result for active, result in results.items()
    }
    record_report(
        f"FL scale — event engine over a lazy {FLEET_SIZE:,}-user fleet "
        "(tiered arrivals, 2s cutoff)",
        "\n".join(
            f"{active:>6} active: {result['rounds_per_sec']:7.2f} rounds/s "
            f"(gate >= {FLEET_GATES[active]}), "
            f"{result['materialized']:,} of {FLEET_SIZE:,} materialized"
            for active, result in results.items()
        ),
    )
    _write_json()


def _write_json() -> None:
    # Merge with any existing file so running one bench in isolation does
    # not drop the other bench's recorded section.
    merged: dict = {}
    if JSON_PATH.exists():
        try:
            merged = json.loads(JSON_PATH.read_text())
        except (ValueError, OSError):
            merged = {}
    merged.update(_RESULTS)
    JSON_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
