"""Benchmark-suite conftest: print recorded reproduction reports at the end."""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import common


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    reports = common.consume_reports()
    if not reports:
        return
    terminalreporter.write_sep("=", "OASIS reproduction: regenerated tables/figures")
    for title, body in reports:
        terminalreporter.write_sep("-", title)
        terminalreporter.write_line(body)
