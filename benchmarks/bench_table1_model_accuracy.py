"""Table I: model accuracy when training with and without OASIS.

Paper shape: OASIS imposes no major accuracy degradation — ImageNet stays
above 90% (94.8% without), CIFAR100 drops at most ~1.5% (75.2% without).

Scale note (see DESIGN.md): the paper trains full ResNet-18 for 100-120
GPU-epochs; this CPU bench trains the same topology at base_width=4 on
16x16 synthetic data for 12 epochs.  The *relative* comparison — OASIS arm
vs WO arm under an identical batch stream — is what the table asserts.
"""

from __future__ import annotations

from common import bench_rng, cifar_table1, imagenet_table1, record_report
from repro.data import train_test_split
from repro.experiments import TABLE1_LINEUP, run_table1, table1_report
from repro.nn import resnet18

PAPER_VALUES = {
    "imagenet": {
        "MR": 92.6, "mR": 92.6, "SH": 95.4, "HFlip": 94.0, "VFlip": 94.8,
        "MR+SH": 90.9, "WO": 94.8,
    },
    "cifar100": {
        "MR": 74.3, "mR": 74.1, "SH": 73.7, "HFlip": 75.1, "VFlip": 74.3,
        "MR+SH": 74.6, "WO": 75.2,
    },
}


def _factory(num_classes):
    return lambda: resnet18(num_classes, base_width=4, rng=bench_rng(3))


def _run(dataset, weight_decay):
    train, test = train_test_split(dataset, 0.25, seed=1)
    return run_table1(
        train, test, _factory(dataset.num_classes),
        lineup=TABLE1_LINEUP, epochs=12, batch_size=16,
        learning_rate=1e-3, weight_decay=weight_decay, seed=0,
    )


def _check_shape(outcomes, max_drop):
    baseline = outcomes["WO"].test_accuracy
    assert baseline > 0.5, "baseline model failed to learn"
    for name, outcome in outcomes.items():
        drop = baseline - outcome.test_accuracy
        assert drop <= max_drop, (
            f"OASIS-{name} dropped accuracy by {100 * drop:.1f} points"
        )


def test_table1_imagenet(benchmark):
    # Paper: Adam, lr 1e-3, weight decay 1e-5 for the ImageNet subset.
    outcomes = benchmark.pedantic(
        lambda: _run(imagenet_table1(), 1e-5), rounds=1, iterations=1
    )
    _check_shape(outcomes, max_drop=0.10)
    paper = PAPER_VALUES["imagenet"]
    body = table1_report(outcomes) + "\npaper values (%): " + str(paper)
    record_report("Table I — ImageNet(10-class) accuracy with/without OASIS", body)


def test_table1_cifar100(benchmark):
    # Paper: Adam, lr 1e-3, weight decay 1e-2 for CIFAR100.  Full-scale
    # CIFAR100 is reduced to 20 classes for the CPU budget (DESIGN.md).
    outcomes = benchmark.pedantic(
        lambda: _run(cifar_table1(), 1e-2), rounds=1, iterations=1
    )
    _check_shape(outcomes, max_drop=0.12)
    paper = PAPER_VALUES["cifar100"]
    body = table1_report(outcomes) + "\npaper values (%): " + str(paper)
    record_report("Table I — CIFAR-style accuracy with/without OASIS", body)
