"""Figure 2: PSNR as the attack-success measure.

The paper's illustration: a reconstruction without OASIS scores ~139 dB
(verbatim copy) while the same pipeline with OASIS scores ~15 dB (an
unrecognizable overlap).  This bench regenerates that pair of numbers.
"""

from __future__ import annotations

from common import cifar100_bench, record_report
from repro.experiments import format_table, run_attack_trial
from repro.defense import OasisDefense


def _run():
    dataset = cifar100_bench()
    without = run_attack_trial(dataset, "rtf", 8, 500, seed=7)
    with_oasis = run_attack_trial(
        dataset, "rtf", 8, 500, defense=OasisDefense("MR"), seed=7
    )
    return without.average_psnr, with_oasis.average_psnr


def test_fig02_psnr_example(benchmark):
    without, with_oasis = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["setting", "paper (dB)", "measured (dB)"],
        [
            ["reconstruction w/o OASIS", "139.17", f"{without:.2f}"],
            ["reconstruction with OASIS", "15.41", f"{with_oasis:.2f}"],
        ],
    )
    record_report("Figure 2 — PSNR example (RTF, CIFAR100, B=8)", table)
    assert without > 100.0
    assert with_oasis < 30.0
