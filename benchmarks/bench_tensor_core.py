"""Tensor-core bench: fused kernels vs the reference graph, gated.

The tensor/NN core ships two kernel modes (``repro.tensor.backend``):
``reference`` preserves the pre-acceleration op-for-op graph, ``fused``
collapses the hot chains (linear, cross-entropy, mean/var, im2col/col2im)
into single nodes backed by pooled buffers.  Both modes are bit-identical
by construction, which makes the reference mode an in-repo A/B baseline:
every speedup recorded here is measured against it *in the same process*,
not against a number typed in from some other machine.

Gates (each set with margin below what this suite measures on a loaded
CI worker, so they fail on regression, not on scheduler noise):

- graph-node reduction: a fused MLP + cross-entropy training step builds
  >= 3x fewer autograd nodes than the reference graph, and the fused
  cross-entropy chain alone collapses >= 5x — fusion's
  machine-independent measure, and where the acceleration comes from;
- wall-clock ratios: client update loop, gradient-only loop, fused
  cross-entropy, conv2d forward+backward, and a 30-round sweep cell all
  beat reference mode by their gated factors;
- optimizer steps (``out=`` in-place SGD/Adam) are no slower than the
  allocating reference forms;
- the ``_im2col_indices`` LRU cache turns repeat index-grid construction
  into a lookup;
- the 30-round sweep cell's result dict is equal across modes — the A/B
  equivalence oracle at bench scale.

Results merge into ``BENCH_tensor_core.json`` next to this file.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_tensor_core.py --benchmark-only
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from common import bench_rng, record_report
from repro.experiments.sweep import GRID_PRESETS
from repro.nn import MLP, Adam, CrossEntropyLoss, SGD, small_cnn
from repro.profile import Profiler
from repro.tensor import Tensor, reference_kernels
from repro.tensor.conv import _im2col_indices, conv2d

JSON_PATH = Path(__file__).parent / "BENCH_tensor_core.json"

# Node-count gates are exact graph measurements (no timing noise): a full
# MLP training step fuses 24 reference nodes into 6, and the cross-entropy
# chain alone — the deepest fused chain — collapses 12 nodes into 1.
GATE_NODE_REDUCTION = 3.0
GATE_CE_NODE_REDUCTION = 5.0

# Wall-clock gates: minimum fused/reference speedup per workload.  The
# suite measures roughly 1.3-1.9x (training loops), 1.4-2.2x
# (cross-entropy), 1.3-1.6x (conv), 1.1-1.3x (sweep cell) across repeat
# runs on a loaded worker; gates sit under the *minimum observed* ratio
# so only a real regression trips them, not scheduler noise.
GATE_UPDATE_LOOP = 1.10
GATE_GRADS_LOOP = 1.15
GATE_CROSS_ENTROPY = 1.25
GATE_CONV = 1.10
GATE_SWEEP_CELL = 1.03
GATE_OPTIMIZER_FLOOR = 0.80  # in-place steps must not be slower
GATE_INDEX_CACHE = 5.0

_RESULTS: dict = {}


def _best_of(fn, rounds: int = 5) -> float:
    fn()  # warmup
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _ab(fn, rounds: int = 7) -> tuple[float, float]:
    """Time ``fn`` fused and under ``reference_kernels``, interleaved.

    Alternating mode per round (rather than timing one block then the
    other) means a transient load spike on a shared runner inflates both
    modes' samples instead of silently skewing one side's best-of.
    """
    fn()  # warmup, fused
    with reference_kernels():
        fn()  # warmup, reference
    fused_s = reference_s = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        fused_s = min(fused_s, time.perf_counter() - start)
        with reference_kernels():
            start = time.perf_counter()
            fn()
            reference_s = min(reference_s, time.perf_counter() - start)
    return fused_s, reference_s


def _mlp_workload():
    rng = bench_rng(31)
    model = MLP([64, 128, 64, 10], rng=rng)
    images = rng.standard_normal((32, 64))
    labels = rng.integers(0, 10, 32)
    return model, images, labels


def test_graph_node_reduction(benchmark):
    """Fusion's machine-independent gate: fewer autograd nodes, exactly.

    Node counts are graph facts, not timings, so both gates hold on any
    machine: the whole MLP training step shrinks >= 3x, and the deepest
    fused chain — cross-entropy's max/exp/sum/log/gather cascade — alone
    collapses >= 5x into its single fused node.
    """
    model, images, labels = _mlp_workload()
    loss_fn = CrossEntropyLoss()

    def step():
        model.zero_grad()
        loss_fn(model(Tensor(images)), labels).backward()

    def ce_only():
        logits = Tensor(images[:, :10].copy(), requires_grad=True)
        loss_fn(logits, labels).backward()

    with Profiler() as fused_prof:
        benchmark.pedantic(step, rounds=1, iterations=1)
    with Profiler() as fused_ce:
        ce_only()
    with reference_kernels():
        with Profiler() as reference_prof:
            step()
        with Profiler() as reference_ce:
            ce_only()

    reduction = reference_prof.total_calls / fused_prof.total_calls
    ce_reduction = reference_ce.total_calls / fused_ce.total_calls
    _RESULTS["graph_node_reduction"] = {
        "training_step": {
            "fused_nodes": fused_prof.total_calls,
            "reference_nodes": reference_prof.total_calls,
            "reduction": reduction,
            "gate": GATE_NODE_REDUCTION,
        },
        "cross_entropy_chain": {
            "fused_nodes": fused_ce.total_calls,
            "reference_nodes": reference_ce.total_calls,
            "reduction": ce_reduction,
            "gate": GATE_CE_NODE_REDUCTION,
        },
    }
    record_report(
        "Tensor core — autograd graph size, fused vs reference",
        f"MLP training step   reference {reference_prof.total_calls:4d} nodes"
        f"   fused {fused_prof.total_calls:4d} nodes   ({reduction:.1f}x, "
        f"gate >= {GATE_NODE_REDUCTION:.0f}x)\n"
        f"cross-entropy chain reference {reference_ce.total_calls:4d} nodes"
        f"   fused {fused_ce.total_calls:4d} nodes   ({ce_reduction:.1f}x, "
        f"gate >= {GATE_CE_NODE_REDUCTION:.0f}x)",
    )
    assert reduction >= GATE_NODE_REDUCTION
    assert ce_reduction >= GATE_CE_NODE_REDUCTION
    _write_json()


def test_training_loop_speedup(benchmark):
    model, images, labels = _mlp_workload()
    loss_fn = CrossEntropyLoss()
    optimizer = SGD(model.parameters(), lr=0.01, momentum=0.9)

    def grads_only():
        model.zero_grad()
        loss_fn(model(Tensor(images)), labels).backward()

    def update_step():
        grads_only()
        optimizer.step()

    def update_loop():
        for _ in range(30):
            update_step()

    def grads_loop():
        for _ in range(30):
            grads_only()

    benchmark.pedantic(update_step, rounds=3, iterations=5)
    update_f, update_r = _ab(update_loop)
    grads_f, grads_r = _ab(grads_loop)

    _RESULTS["training_loop"] = {
        "update_loop": {
            "fused_s": update_f, "reference_s": update_r,
            "speedup": update_r / update_f, "gate": GATE_UPDATE_LOOP,
        },
        "grads_loop": {
            "fused_s": grads_f, "reference_s": grads_r,
            "speedup": grads_r / grads_f, "gate": GATE_GRADS_LOOP,
        },
    }
    record_report(
        "Tensor core — 30-step MLP training loops, fused vs reference",
        f"update loop  fused {1e3 * update_f:7.2f} ms   "
        f"reference {1e3 * update_r:7.2f} ms   ({update_r / update_f:.2f}x)\n"
        f"grads loop   fused {1e3 * grads_f:7.2f} ms   "
        f"reference {1e3 * grads_r:7.2f} ms   ({grads_r / grads_f:.2f}x)",
    )
    assert update_r / update_f >= GATE_UPDATE_LOOP
    assert grads_r / grads_f >= GATE_GRADS_LOOP
    _write_json()


def test_fused_op_micro_speedups(benchmark):
    rng = bench_rng(32)
    logits_data = rng.standard_normal((128, 100))
    labels = rng.integers(0, 100, 128)
    loss_fn = CrossEntropyLoss()

    def ce_step():
        logits = Tensor(logits_data, requires_grad=True)
        loss_fn(logits, labels).backward()

    def ce_loop():
        for _ in range(20):
            ce_step()

    cnn = small_cnn(num_classes=10, in_channels=3, rng=bench_rng(33))
    conv_images = rng.standard_normal((8, 3, 16, 16))
    conv_labels = rng.integers(0, 10, 8)

    def conv_step():
        cnn.zero_grad()
        loss_fn(cnn(Tensor(conv_images)), conv_labels).backward()

    benchmark.pedantic(conv_step, rounds=3, iterations=2)
    ce_f, ce_r = _ab(ce_loop)
    conv_f, conv_r = _ab(conv_step)

    _RESULTS["fused_ops"] = {
        "cross_entropy_fwd_bwd": {
            "fused_s": ce_f, "reference_s": ce_r,
            "speedup": ce_r / ce_f, "gate": GATE_CROSS_ENTROPY,
        },
        "small_cnn_fwd_bwd": {
            "fused_s": conv_f, "reference_s": conv_r,
            "speedup": conv_r / conv_f, "gate": GATE_CONV,
        },
    }
    record_report(
        "Tensor core — fused op microbenchmarks",
        f"cross-entropy (128x100, fwd+bwd x20)  fused {1e3 * ce_f:7.2f} ms   "
        f"reference {1e3 * ce_r:7.2f} ms   ({ce_r / ce_f:.2f}x)\n"
        f"small_cnn (8x3x16x16, fwd+bwd)        fused {1e3 * conv_f:7.2f} ms   "
        f"reference {1e3 * conv_r:7.2f} ms   ({conv_r / conv_f:.2f}x)",
    )
    assert ce_r / ce_f >= GATE_CROSS_ENTROPY
    assert conv_r / conv_f >= GATE_CONV
    _write_json()


def test_optimizer_inplace_not_slower(benchmark):
    """``out=`` optimizer steps: allocation-free and at least as fast."""
    model, images, labels = _mlp_workload()
    loss_fn = CrossEntropyLoss()
    model.zero_grad()
    loss_fn(model(Tensor(images)), labels).backward()

    per_optimizer: dict[str, dict] = {}
    for name, optimizer in (
        ("sgd", SGD(model.parameters(), lr=0.01, momentum=0.9, weight_decay=1e-4)),
        ("adam", Adam(model.parameters(), lr=0.001, weight_decay=1e-4)),
    ):
        def steps(opt=optimizer):
            for _ in range(50):
                opt.step()

        if name == "sgd":
            benchmark.pedantic(steps, rounds=3, iterations=1)
        fused_s, reference_s = _ab(steps)
        per_optimizer[name] = {
            "fused_s": fused_s, "reference_s": reference_s,
            "speedup": reference_s / fused_s, "gate": GATE_OPTIMIZER_FLOOR,
        }
        assert reference_s / fused_s >= GATE_OPTIMIZER_FLOOR

    _RESULTS["optimizer_steps"] = per_optimizer
    record_report(
        "Tensor core — 50 in-place optimizer steps vs allocating reference",
        "\n".join(
            f"{name:<5} fused {1e3 * stats['fused_s']:7.2f} ms   "
            f"reference {1e3 * stats['reference_s']:7.2f} ms   "
            f"({stats['speedup']:.2f}x)"
            for name, stats in per_optimizer.items()
        ),
    )
    _write_json()


def test_im2col_index_cache(benchmark):
    """Satellite gate: repeat index-grid construction is an LRU lookup."""
    shape = (24, 24, 3, 1)

    def cold():
        _im2col_indices.cache_clear()
        return _im2col_indices(*shape)

    def warm():
        return _im2col_indices(*shape)

    benchmark.pedantic(warm, rounds=3, iterations=10)
    cold_s = _best_of(cold)
    warm()  # prime
    warm_s = _best_of(lambda: [warm() for _ in range(100)]) / 100
    hits_before = _im2col_indices.cache_info().hits
    rng = bench_rng(34)
    weight = Tensor(rng.standard_normal((4, 3, 3, 3)))
    for _ in range(3):
        conv2d(Tensor(rng.standard_normal((2, 3, 24, 24))), weight, None)
    assert _im2col_indices.cache_info().hits > hits_before

    speedup = cold_s / warm_s
    _RESULTS["im2col_index_cache"] = {
        "cold_s": cold_s, "warm_s": warm_s,
        "speedup": speedup, "gate": GATE_INDEX_CACHE,
    }
    record_report(
        "Tensor core — _im2col_indices LRU cache",
        f"cold {1e6 * cold_s:8.2f} us   warm {1e6 * warm_s:8.2f} us   "
        f"({speedup:.0f}x, gate >= {GATE_INDEX_CACHE:.0f}x)",
    )
    assert speedup >= GATE_INDEX_CACHE
    _write_json()


def test_sweep_cell_end_to_end(benchmark):
    """The consumer-level gate: a sweep cell is faster *and* identical.

    The cell runs 30 federated rounds so the per-round training loop, not
    one-time model/attack construction, dominates; everything around the
    tensor core (defense pipeline, augmentation, serialization) is
    tensor-free and dilutes the kernel-level speedup, which is why this
    gate is the lowest.
    """

    def run_cell():
        runner = GRID_PRESETS["smoke"](
            0, 30, None, attacks=("rtf",), defenses=("MR",)
        )
        (cell,) = runner.cells()
        return runner.run_cell(cell)

    benchmark.pedantic(run_cell, rounds=3, iterations=1)
    fused_result = run_cell()
    with reference_kernels():
        reference_result = run_cell()
    # The A/B equivalence oracle: both kernel modes produce the same cell.
    assert fused_result == reference_result

    fused_s, reference_s = _ab(run_cell, rounds=3)

    speedup = reference_s / fused_s
    _RESULTS["sweep_cell_end_to_end"] = {
        "cell": "rtfxMR", "rounds": 30,
        "fused_s": fused_s, "reference_s": reference_s,
        "speedup": speedup, "gate": GATE_SWEEP_CELL,
        "results_identical": True,
    }
    record_report(
        "Tensor core — 30-round sweep cell (rtf x MR), fused vs reference",
        f"fused {1e3 * fused_s:7.2f} ms   reference {1e3 * reference_s:7.2f} ms"
        f"   ({speedup:.2f}x, gate >= {GATE_SWEEP_CELL:.2f}x, results identical)",
    )
    assert speedup >= GATE_SWEEP_CELL
    _write_json()


def _write_json() -> None:
    # Merge with any existing file so running one bench in isolation does
    # not drop another bench's recorded section.
    merged: dict = {}
    if JSON_PATH.exists():
        try:
            merged = json.loads(JSON_PATH.read_text())
        except (ValueError, OSError):
            merged = {}
    merged.update(_RESULTS)
    JSON_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
