"""Shared benchmark infrastructure: datasets, report registry, scales.

The benchmark suite regenerates every table and figure of the paper at a
CPU-budget scale (reduced resolutions / trial counts, same protocol).  Each
bench records a plain-text report; the conftest's terminal-summary hook
prints all reports at the end of the run so ``pytest benchmarks/
--benchmark-only`` leaves the reproduced numbers in its output.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.data import make_synthetic_dataset, synthetic_cifar100, synthetic_imagenet
from repro.utils.rng import new_rng

_REPORTS: list[tuple[str, str]] = []


def bench_rng(seed: int) -> np.random.Generator:
    """The benchmark suite's one RNG constructor, over ``repro.utils.rng``.

    ``new_rng(seed)`` is stream-identical to ``np.random.default_rng(seed)``,
    so migrating the benches here shifted no BENCH gate — but it puts every
    bench draw on the same seeding discipline the library enforces, which is
    what keeps recorded numbers comparable across runs and machines.
    """
    return new_rng(seed)


def record_report(title: str, body: str) -> None:
    _REPORTS.append((title, body))


def consume_reports() -> list[tuple[str, str]]:
    return list(_REPORTS)


@lru_cache(maxsize=None)
def imagenet_bench():
    """ImageNet stand-in for attack benches (32px for CPU budget)."""
    return synthetic_imagenet(samples_per_class=32, image_size=32, seed=1001)


@lru_cache(maxsize=None)
def cifar100_bench():
    """CIFAR100 stand-in for attack benches (full 100 classes)."""
    return synthetic_cifar100(samples_per_class=4, seed=2002)


@lru_cache(maxsize=None)
def imagenet_table1():
    """Small 10-class set for the Table I training bench (16px)."""
    return make_synthetic_dataset(
        num_classes=10, samples_per_class=16, image_size=16, seed=42,
        name="imagenet16",
    )


@lru_cache(maxsize=None)
def cifar_table1():
    """Reduced 20-class CIFAR-style set for the Table I training bench."""
    return make_synthetic_dataset(
        num_classes=20, samples_per_class=8, image_size=16, seed=43,
        name="cifar20",
    )
