"""Figure 14: RTF defeats the ATSPrivacy-style transform-replace defense.

Paper shape: under Gao et al.'s defense (replace each image with one
transformed version, no union) the RTF reconstruction *reveals the content*
of the training inputs — reconstructions match the client's actual
(transformed) inputs at perfect-reconstruction PSNR — while OASIS with the
same transform suite leaves nothing recognizable.
"""

from __future__ import annotations

from common import cifar100_bench, record_report
from repro.experiments import format_table, run_ats_comparison


def _run():
    return run_ats_comparison(
        cifar100_bench(), batch_size=8, num_neurons=500, suite_name="MR", seed=23
    )


def test_fig14_ats_transform_replace_fails(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["defense", "vs training inputs (dB)", "vs originals (dB)", "#recon"],
        [
            [
                "ATS (replace)",
                f"{result.ats_vs_training_inputs:.1f}",
                f"{result.ats_vs_originals:.1f}",
                result.num_ats_reconstructions,
            ],
            [
                "OASIS (union)",
                f"{result.oasis_vs_training_inputs:.1f}",
                f"{result.oasis_vs_originals:.1f}",
                result.num_oasis_reconstructions,
            ],
        ],
    )
    record_report("Figure 14 — RTF vs ATSPrivacy-style transform-replace", table)
    # ATS: the transformed inputs themselves are reconstructed verbatim.
    assert result.ats_vs_training_inputs > 100.0
    # OASIS: neither the expanded inputs nor the originals are recovered.
    assert result.oasis_vs_training_inputs < 60.0
    assert result.oasis_vs_originals < 40.0
