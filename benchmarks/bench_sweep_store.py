"""Sweep-store bench: O(1) append-log upserts vs the old rewrite-all store.

The million-cell blocker was quadratic persistence: the monolithic-JSON
store rewrote the whole file on every put, so cell N cost O(N) bytes and
a full grid cost O(N^2).  The log store appends one record per put.  This
bench demonstrates both scaling laws and gates on them:

1. **Log store is flat** — the mean cost of the *last 100* puts into a
   10,000-cell store must be < 2x the last-100 cost at 1,000 cells
   (O(1) per put; the ratio would be ~10x if cost grew with N).
2. **Rewrite-all is not** — an inline reimplementation of the old
   store's persistence shows the last-100 cost at 800 cells >= 2x the
   cost at 200 cells, documenting the cliff the log store removes.
3. **Reopen stays cheap** — indexing a 10,000-cell log on open must run
   at >= 50,000 cells/s (the offset scan parses no values).

Results land in ``BENCH_sweep_store.json`` next to this file.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_sweep_store.py --benchmark-only
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from common import record_report
from repro.experiments import SweepStore
from repro.utils import atomic_write_text

JSON_PATH = Path(__file__).parent / "BENCH_sweep_store.json"

LOG_SMALL, LOG_LARGE = 1_000, 10_000
REWRITE_SMALL, REWRITE_LARGE = 200, 800
TAIL = 100  # puts timed at the end of each fill
GATE_LOG_RATIO = 2.0  # log store: large/small last-TAIL cost must stay below
GATE_REWRITE_RATIO = 2.0  # rewrite-all: must exceed (shows the cliff)
GATE_OPEN_CELLS_PER_S = 50_000.0


def _cell_value(index: int) -> dict:
    return {"mean_psnr": 10.0 + (index % 50) * 0.25, "trials": 3}


def _fill_log_store(path: Path, total: int) -> float:
    """Fill a log store, returning mean seconds per put over the last TAIL."""
    store = SweepStore(path)
    for index in range(total - TAIL):
        store.put(f"cell-{index:07d}", _cell_value(index))
    start = time.perf_counter()
    for index in range(total - TAIL, total):
        store.put(f"cell-{index:07d}", _cell_value(index))
    elapsed = time.perf_counter() - start
    store.close()
    return elapsed / TAIL


class _RewriteAllStore:
    """The pre-log store's persistence: full-file JSON dump on every put."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.cells: dict = {}

    def put(self, key: str, value) -> None:
        self.cells[key] = value
        atomic_write_text(
            self.path,
            json.dumps({"cells": self.cells}, indent=2, sort_keys=True) + "\n",
        )


def _fill_rewrite_store(path: Path, total: int) -> float:
    store = _RewriteAllStore(path)
    for index in range(total - TAIL):
        store.put(f"cell-{index:07d}", _cell_value(index))
    start = time.perf_counter()
    for index in range(total - TAIL, total):
        store.put(f"cell-{index:07d}", _cell_value(index))
    return (time.perf_counter() - start) / TAIL


def test_store_upsert_scaling(tmp_path, benchmark):
    log_small = _fill_log_store(tmp_path / "log_small.json", LOG_SMALL)
    log_large = benchmark.pedantic(
        lambda: _fill_log_store(tmp_path / "log_large.json", LOG_LARGE),
        rounds=1,
        iterations=1,
    )
    log_ratio = log_large / log_small

    rewrite_small = _fill_rewrite_store(tmp_path / "rw_small.json", REWRITE_SMALL)
    rewrite_large = _fill_rewrite_store(tmp_path / "rw_large.json", REWRITE_LARGE)
    rewrite_ratio = rewrite_large / rewrite_small

    start = time.perf_counter()
    reopened = SweepStore(tmp_path / "log_large.json")
    open_s = time.perf_counter() - start
    assert len(reopened) == LOG_LARGE
    open_cells_per_s = LOG_LARGE / open_s
    reopened.close()

    assert log_ratio < GATE_LOG_RATIO, (
        f"log-store put cost grew {log_ratio:.2f}x from {LOG_SMALL} to "
        f"{LOG_LARGE} cells (gate < {GATE_LOG_RATIO}x) — appends are no "
        "longer O(1)"
    )
    assert rewrite_ratio >= GATE_REWRITE_RATIO, (
        f"rewrite-all baseline only grew {rewrite_ratio:.2f}x from "
        f"{REWRITE_SMALL} to {REWRITE_LARGE} cells — the baseline no "
        "longer demonstrates the cliff this store exists to remove"
    )
    assert open_cells_per_s >= GATE_OPEN_CELLS_PER_S, (
        f"reopening a {LOG_LARGE}-cell log indexed only "
        f"{open_cells_per_s:,.0f} cells/s (gate >= "
        f"{GATE_OPEN_CELLS_PER_S:,.0f}/s)"
    )

    JSON_PATH.write_text(
        json.dumps(
            {
                "tail_puts_timed": TAIL,
                "log_store": {
                    "cells_small": LOG_SMALL,
                    "cells_large": LOG_LARGE,
                    "per_put_small_s": log_small,
                    "per_put_large_s": log_large,
                    "cost_ratio": log_ratio,
                    "gate_max_ratio": GATE_LOG_RATIO,
                },
                "rewrite_all_baseline": {
                    "cells_small": REWRITE_SMALL,
                    "cells_large": REWRITE_LARGE,
                    "per_put_small_s": rewrite_small,
                    "per_put_large_s": rewrite_large,
                    "cost_ratio": rewrite_ratio,
                    "gate_min_ratio": GATE_REWRITE_RATIO,
                },
                "reopen": {
                    "cells": LOG_LARGE,
                    "open_s": open_s,
                    "cells_per_s": open_cells_per_s,
                    "gate_min_cells_per_s": GATE_OPEN_CELLS_PER_S,
                },
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    record_report(
        f"Sweep store — last-{TAIL}-put cost vs store size",
        f"log store     {LOG_SMALL:>6} -> {LOG_LARGE:>6} cells: "
        f"{log_small * 1e6:8.1f} -> {log_large * 1e6:8.1f} us/put "
        f"({log_ratio:.2f}x, gate < {GATE_LOG_RATIO}x)\n"
        f"rewrite-all   {REWRITE_SMALL:>6} -> {REWRITE_LARGE:>6} cells: "
        f"{rewrite_small * 1e6:8.1f} -> {rewrite_large * 1e6:8.1f} us/put "
        f"({rewrite_ratio:.2f}x, gate >= {GATE_REWRITE_RATIO}x)\n"
        f"reopen {LOG_LARGE} cells: {open_s * 1e3:.1f} ms "
        f"({open_cells_per_s:,.0f} cells/s)",
    )
