"""Defense zoo bench: registry arms and composed stacks, full protocol.

One dishonest-server round per (imprint attack, defense arm) on the
CIFAR100 stand-in, with the defense applied through the real client-side
pipeline (``compute_defended_update`` — batch hooks, per-sample clipping
when the arm requests it, finalize noise).  Arms cover the registry's
families — no defense, OASIS suites, DP-SGD, pruning — plus two composed
stacks: the paper's Sec. V OASIS+DP composition (``MR>dpsgd``) and a
both-components-leak stack (``HFlip>prune(prune_fraction=0.5)``) chosen so
every component still reconstructs something on every imprint attack,
making the strict composition comparison meaningful.

Gates, per imprint attack:

1. **Attack power** — undefended mean match PSNR above 18 dB.
2. **Components weaken** — the MR and dpsgd arms each score a strictly
   lower mean match PSNR than the undefended run.
3. **Composition beats the weakest component (strict)** — the
   ``HFlip>prune(prune_fraction=0.5)`` cell scores strictly below its
   weakest (highest-PSNR) component arm alone.
4. **OASIS+DP never costs protection** — ``MR>dpsgd`` scores at or below
   its weakest component, strictly below whenever that component still
   leaks (DP-SGD noise already drives the trap attacks to zero
   reconstructions, where "strictly lower than zero" has no meaning).
5. **FedAvg parity** — every arm reports the pre-expansion batch size.

Results land in ``BENCH_defense_zoo.json`` next to this file.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_defense_zoo.py --benchmark-only
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from common import bench_rng, cifar100_bench, record_report
from repro.attacks import ImprintedModel, make_attack
from repro.defense import make_defense
from repro.experiments import format_table
from repro.fl import compute_defended_update
from repro.metrics import match_reconstructions
from repro.nn import CrossEntropyLoss

JSON_PATH = Path(__file__).parent / "BENCH_defense_zoo.json"

BATCH_SIZE = 8
NUM_NEURONS = 128
IMPRINT_ATTACKS = ("rtf", "cah", "qbi")

STRICT_COMPOSED = "HFlip>prune(prune_fraction=0.5)"
STRICT_COMPONENTS = ("HFlip", "prune(prune_fraction=0.5)")
OASIS_DP_COMPOSED = "MR>dpsgd"
OASIS_DP_COMPONENTS = ("MR", "dpsgd")

DEFENSE_ARMS = (
    "WO",
    "MR",
    "dpsgd",
    "HFlip",
    "prune(prune_fraction=0.5)",
    OASIS_DP_COMPOSED,
    STRICT_COMPOSED,
)


def _one_round(attack_name: str, defense_spec: str) -> dict:
    dataset = cifar100_bench()
    attack = make_attack(
        attack_name, NUM_NEURONS, dataset.images[:128], seed=7
    )
    model = ImprintedModel(
        dataset.image_shape, NUM_NEURONS, dataset.num_classes,
        rng=bench_rng(11),
    )
    attack.craft(model)
    defense = make_defense(defense_spec, seed=7)
    rng = bench_rng(12345)
    images, labels = dataset.sample_batch(BATCH_SIZE, rng)
    start = time.perf_counter()
    grads, _, num_examples = compute_defended_update(
        model, CrossEntropyLoss(), images, labels, defense, rng
    )
    result = attack.reconstruct(grads)
    elapsed = time.perf_counter() - start
    scores = [
        score for _, score in match_reconstructions(images, result.images)
    ]
    return {
        "num_reconstructions": int(len(result)),
        "mean_match_psnr": float(np.mean(scores)) if scores else 0.0,
        "max_match_psnr": float(np.max(scores)) if scores else 0.0,
        "reported_examples": int(num_examples),
        "seconds": elapsed,
        "reason": result.reason,
    }


def test_defense_zoo_grid(benchmark):
    cells = benchmark.pedantic(
        lambda: {
            attack: {arm: _one_round(attack, arm) for arm in DEFENSE_ARMS}
            for attack in IMPRINT_ATTACKS
        },
        rounds=1,
        iterations=1,
    )

    rows = []
    for attack, arms in cells.items():
        psnr = {arm: arms[arm]["mean_match_psnr"] for arm in DEFENSE_ARMS}
        rows.append([attack] + [f"{psnr[arm]:.1f}" for arm in DEFENSE_ARMS])
        # Gate 5: every arm reports the pre-expansion FedAvg weight.
        for arm in DEFENSE_ARMS:
            assert arms[arm]["reported_examples"] == BATCH_SIZE, (attack, arm)
        # Gate 1: the attack works when undefended.
        assert psnr["WO"] > 18.0, attack
        # Gate 2: each paper-lineup component alone weakens the attack.
        for component in OASIS_DP_COMPONENTS:
            assert psnr[component] < psnr["WO"], (attack, component)
        # Gate 3 (the acceptance gate): the both-components-leak stack
        # scores strictly below its weakest component alone.
        strict_weakest = max(psnr[c] for c in STRICT_COMPONENTS)
        for component in STRICT_COMPONENTS:
            assert psnr[component] > 0.0, (attack, component)
        assert psnr[STRICT_COMPOSED] < strict_weakest, attack
        # Gate 4: OASIS+DP composition never costs protection.
        oasis_dp_weakest = max(psnr[c] for c in OASIS_DP_COMPONENTS)
        if oasis_dp_weakest > 0.0:
            assert psnr[OASIS_DP_COMPOSED] < oasis_dp_weakest, attack
        else:
            assert psnr[OASIS_DP_COMPOSED] == 0.0, attack

    table = format_table(["attack"] + list(DEFENSE_ARMS), rows)
    record_report(
        "Defense zoo: mean match PSNR per arm (composed stacks last)", table
    )
    JSON_PATH.write_text(
        json.dumps(
            {
                "batch_size": BATCH_SIZE,
                "num_neurons": NUM_NEURONS,
                "defense_arms": list(DEFENSE_ARMS),
                "strict_composed": {
                    "arm": STRICT_COMPOSED,
                    "components": list(STRICT_COMPONENTS),
                },
                "oasis_dp_composed": {
                    "arm": OASIS_DP_COMPOSED,
                    "components": list(OASIS_DP_COMPONENTS),
                },
                "cells": cells,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
