"""The append-only sweep-store log: format, migration, crash recovery.

Companion to the executor-level tests in test_sweep_parallel.py — these
exercise the store itself: the log format and its torn-tail semantics,
lazy legacy-JSON migration, canonical compaction, and the shard-recovery
paths (corrupt-shard quarantine, kill-mid-merge durability).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import (
    STORE_FORMAT,
    ShardRecovery,
    SerialSweepExecutor,
    SweepStore,
    SweepStoreError,
    WorkStealingSweepExecutor,
)

GOLDEN_STORE = Path(__file__).parent / "golden" / "sweep_cells.json"


def make_store(path, cells):
    store = SweepStore(path)
    for key, value in cells.items():
        store.put(key, value)
    store.close()
    return store


class TestLogFormat:
    def test_header_names_the_format(self, tmp_path):
        path = tmp_path / "s.json"
        make_store(path, {"a": 1})
        first, *records = path.read_text().splitlines()
        assert json.loads(first) == {"format": STORE_FORMAT}
        assert json.loads(records[0]) == {"k": "a", "v": 1}

    def test_unknown_format_version_refused(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text('{"format":"oasis-sweep-log-v99"}\n')
        with pytest.raises(SweepStoreError, match="v99"):
            SweepStore(path)

    def test_put_appends_without_rewriting(self, tmp_path):
        # The O(1)-per-cell claim, structurally: every put leaves the
        # previous bytes as an untouched prefix.
        path = tmp_path / "s.json"
        store = SweepStore(path)
        store.put("a", {"x": 1})
        before = path.read_bytes()
        store.put("b", {"x": 2})
        assert path.read_bytes()[: len(before)] == before

    def test_values_stay_on_disk_not_in_memory(self, tmp_path):
        path = tmp_path / "s.json"
        make_store(path, {"a": {"big": [1, 2, 3]}})
        reopened = SweepStore(path)
        assert reopened._mem == {}  # only the offset index is resident
        assert reopened.get("a") == {"big": [1, 2, 3]}

    def test_last_record_per_key_wins(self, tmp_path):
        path = tmp_path / "s.json"
        store = make_store(path, {"a": 1})
        store.put("a", 2)
        assert store.get("a") == 2
        assert SweepStore(path).get("a") == 2
        assert len(SweepStore(path)) == 1

    def test_iter_cells_streams_in_sorted_order(self, tmp_path):
        path = tmp_path / "s.json"
        make_store(path, {"b": 2, "a": 1, "c": 3})
        reopened = SweepStore(path)
        iterator = reopened.iter_cells()
        assert next(iterator) == ("a", 1)  # lazily consumable
        assert list(iterator) == [("b", 2), ("c", 3)]

    def test_values_json_round_trip_exactly(self, tmp_path):
        value = {"mean_psnr": 0.1 + 0.2, "count": 7, "tags": ["x", None]}
        path = tmp_path / "s.json"
        make_store(path, {"cell": value})
        assert SweepStore(path).get("cell") == value


class TestCompaction:
    def test_compact_is_insertion_order_invariant(self, tmp_path):
        cells = {"c": {"v": 3}, "a": {"v": 1}, "b": {"v": 2}}
        one, two = tmp_path / "one.json", tmp_path / "two.json"
        for path, order in ((one, sorted(cells)), (two, reversed(sorted(cells)))):
            store = SweepStore(path)
            for key in order:
                store.put(key, cells[key])
            store.compact()
            store.close()
        assert one.read_bytes() == two.read_bytes()

    def test_compact_drops_superseded_records(self, tmp_path):
        path = tmp_path / "s.json"
        store = make_store(path, {"a": 1})
        for value in range(20):
            store.put("a", value)
        store.compact()
        store.close()
        assert len(path.read_text().splitlines()) == 2  # header + one record
        assert SweepStore(path).get("a") == 19

    def test_store_survives_compact_then_append_then_reload(self, tmp_path):
        path = tmp_path / "s.json"
        store = make_store(path, {"a": 1, "b": 2})
        store.compact()
        store.put("c", 3)
        store.close()
        assert dict(SweepStore(path).iter_cells()) == {"a": 1, "b": 2, "c": 3}

    def test_memory_only_store_compacts_to_nothing(self):
        store = SweepStore(None)
        store.put("a", 1)
        store.compact()
        assert store.get("a") == 1


class TestLegacyMigration:
    def test_golden_store_loads_with_bytes_unchanged(self):
        before = GOLDEN_STORE.read_bytes()
        store = SweepStore(GOLDEN_STORE)
        assert len(store) > 0
        assert all(value is not None for _, value in store.iter_cells())
        store.close()
        assert GOLDEN_STORE.read_bytes() == before

    def test_first_write_migrates_to_log_format(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps({"cells": {"old": {"v": 1}}}))
        store = SweepStore(path)
        store.put("new", {"v": 2})
        store.close()
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"format": STORE_FORMAT}
        reopened = SweepStore(path)
        assert reopened.get("old") == {"v": 1}
        assert reopened.get("new") == {"v": 2}

    def test_migrated_store_matches_native_log_store(self, tmp_path):
        cells = {"a": {"v": 1}, "b": {"v": 2}}
        legacy = tmp_path / "legacy.json"
        legacy.write_text(json.dumps({"cells": cells}))
        migrated = SweepStore(legacy)
        migrated.compact()
        migrated.close()
        native = tmp_path / "native.json"
        store = make_store(native, cells)
        store.compact()
        store.close()
        assert legacy.read_bytes() == native.read_bytes()


class TestCrashRecovery:
    def test_torn_tail_is_dropped_then_overwritten(self, tmp_path):
        path = tmp_path / "s.json"
        make_store(path, {"a": 1, "b": 2})
        path.write_bytes(path.read_bytes()[:-5])  # tear the final append
        store = SweepStore(path)
        assert store.get("a") == 1
        assert store.get("b") is None  # the torn cell just recomputes
        store.put("b", 22)
        store.close()
        reopened = SweepStore(path)
        assert dict(reopened.iter_cells()) == {"a": 1, "b": 22}

    def test_corrupt_shard_quarantined_good_shards_recovered(self, tmp_path):
        # Satellite bug: recovery used to raise on the first corrupt
        # shard, abandoning every readable one behind it.
        store = SweepStore(tmp_path / "s.json")
        shard_dir = store.shard_directory()
        shard_dir.mkdir()
        make_store(shard_dir / "shard-1.json", {"a": 1})
        (shard_dir / "shard-2.json").write_text(
            '{"format":"oasis-sweep-log-v1"}\n{"k": broken\n{"k":"x","v":0}\n'
        )
        make_store(shard_dir / "shard-3.json", {"b": 2})
        with pytest.warns(RuntimeWarning, match="quarantined corrupt"):
            outcome = store.recover_shards()
        assert outcome == ShardRecovery(recovered=2, quarantined=1)
        assert sorted(store.keys()) == ["a", "b"]
        assert not (shard_dir / "shard-2.json").exists()
        assert (shard_dir / "shard-2.json.corrupt").exists()  # evidence kept
        assert not (shard_dir / "shard-1.json").exists()
        assert not (shard_dir / "shard-3.json").exists()

    def test_shard_unlinked_only_after_durable_merge(self, tmp_path, monkeypatch):
        # Kill-mid-merge: if persisting a shard's cells fails, that shard
        # file must survive for the next recovery attempt.
        store = SweepStore(tmp_path / "s.json")
        shard_dir = store.shard_directory()
        shard_dir.mkdir()
        make_store(shard_dir / "shard-1.json", {"a": 1})
        make_store(shard_dir / "shard-2.json", {"b": 2})
        real_update = SweepStore.update
        calls = []

        def dying_update(self, mapping):
            calls.append(mapping)
            if len(calls) == 2:
                raise OSError("disk full")  # dies merging the second shard
            return real_update(self, mapping)

        monkeypatch.setattr(SweepStore, "update", dying_update)
        with pytest.raises(OSError):
            store.recover_shards()
        monkeypatch.undo()
        assert not (shard_dir / "shard-1.json").exists()  # merged, removed
        assert (shard_dir / "shard-2.json").exists()  # unmerged, kept
        outcome = store.recover_shards()  # the resumed merge finishes the job
        assert outcome == ShardRecovery(recovered=1, quarantined=0)
        assert sorted(store.keys()) == ["a", "b"]
        assert not shard_dir.exists()

    def test_recovery_without_shard_directory_is_a_noop(self, tmp_path):
        assert SweepStore(tmp_path / "s.json").recover_shards() == (0, 0)
        assert SweepStore(None).recover_shards() == (0, 0)


def _toy_task(payload):
    key, base = payload
    return {"key": key, "value": base * 2}


@settings(max_examples=5, deadline=None)
@given(
    order=st.permutations(list(range(6))),
    workers=st.integers(min_value=1, max_value=3),
)
def test_store_bytes_invariant_to_task_order_and_workers(
    tmp_path_factory, order, workers
):
    """Property: compacted bytes depend only on the cell *mapping*, never
    on task submission order or how many workers stole them."""
    tmp_path = tmp_path_factory.mktemp("invariance")
    tasks = [(f"cell-{i}", _toy_task, (f"cell-{i}", i)) for i in range(6)]
    reference_path = tmp_path / "reference.json"
    SerialSweepExecutor().run(tasks, SweepStore(reference_path))
    reference = reference_path.read_bytes()

    shuffled = [tasks[i] for i in order]
    executor = (
        SerialSweepExecutor()
        if workers == 1
        else WorkStealingSweepExecutor(workers)
    )
    path = tmp_path / f"w{workers}.json"
    executor.run(shuffled, SweepStore(path))
    assert path.read_bytes() == reference
