"""Proposition 1 activation-overlap analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import CAHAttack, ImprintedModel, RTFAttack
from repro.defense import OasisDefense, activation_overlap_report


@pytest.fixture
def batch(cifar_like, rng):
    return cifar_like.sample_batch(4, rng)


def _crafted_rtf(cifar_like, n=100):
    model = ImprintedModel(cifar_like.image_shape, n, cifar_like.num_classes,
                           rng=np.random.default_rng(1))
    attack = RTFAttack(n)
    attack.calibrate_from_public_data(cifar_like.images[:100])
    attack.craft(model)
    return model


def _crafted_cah(cifar_like, n=100):
    model = ImprintedModel(cifar_like.image_shape, n, cifar_like.num_classes,
                           rng=np.random.default_rng(1))
    attack = CAHAttack(n, activation_probability=0.05, seed=2)
    attack.calibrate_from_public_data(cifar_like.images[:100])
    attack.craft(model)
    return model


class TestRTFOverlap:
    def test_major_rotation_fully_protects(self, cifar_like, batch):
        # MR preserves the RTF measurement exactly, so Proposition 1's
        # premise holds for every sample: protected_fraction == 1.
        model = _crafted_rtf(cifar_like)
        images, labels = batch
        report = activation_overlap_report(model, OasisDefense("MR"), images, labels)
        assert report.protected_fraction == 1.0
        assert report.mean_jaccard == pytest.approx(1.0)

    def test_no_sole_activations_under_mr(self, cifar_like, batch):
        model = _crafted_rtf(cifar_like)
        images, labels = batch
        report = activation_overlap_report(model, OasisDefense("MR"), images, labels)
        assert report.sole_activations == 0

    def test_flips_also_protect_rtf(self, cifar_like, batch):
        model = _crafted_rtf(cifar_like)
        images, labels = batch
        report = activation_overlap_report(model, OasisDefense("HFlip"), images, labels)
        assert report.protected_fraction == 1.0


class TestCAHOverlap:
    def test_random_traps_not_fully_protected(self, cifar_like, batch):
        # Against random trap directions no single transform aligns
        # activation sets exactly; protection is statistical, not certain.
        model = _crafted_cah(cifar_like)
        images, labels = batch
        report = activation_overlap_report(model, OasisDefense("MR"), images, labels)
        assert 0.0 <= report.protected_fraction <= 1.0
        assert report.mean_jaccard <= 1.0

    def test_integration_reduces_sole_activations(self, cifar_like, rng):
        model = _crafted_cah(cifar_like, n=200)
        images, labels = cifar_like.sample_batch(8, rng)
        single = activation_overlap_report(model, OasisDefense("MR"), images, labels)
        combined = activation_overlap_report(
            model, OasisDefense("MR+SH"), images, labels
        )
        # More companions -> fewer attacked neurons with a sole activator,
        # normalized by expanded-batch size.
        single_rate = single.sole_activations / (len(images) * 4)
        combined_rate = combined.sole_activations / (len(images) * 7)
        assert combined_rate <= single_rate + 1e-9


class TestReportObject:
    def test_empty_batch(self, cifar_like):
        model = _crafted_rtf(cifar_like, n=10)
        images = np.empty((0,) + cifar_like.image_shape)
        labels = np.empty(0, dtype=np.int64)
        report = activation_overlap_report(model, OasisDefense("MR"), images, labels)
        assert report.protected_fraction == 0.0
        assert report.mean_jaccard == 0.0
