"""Parallel sweep execution: determinism, shard recovery, failure isolation.

The engine's contract: serial runs, parallel runs with any worker count,
and resumed-after-kill runs of the same grid all produce the identical
``store_key -> result`` mapping — and therefore byte-identical persisted
stores — because every cell's randomness is keyed by its configuration
fingerprint, never by execution order or worker assignment.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import make_synthetic_dataset
from repro.experiments import (
    CellEvent,
    ParallelSweepExecutor,
    ParticipationScenario,
    SerialSweepExecutor,
    ShardRecovery,
    SweepCell,
    SweepRunner,
    SweepStore,
    WorkStealingSweepExecutor,
    headline_ordering_holds,
    make_executor,
)
from repro.experiments import sweep as sweep_module


@pytest.fixture(scope="module")
def sweep_dataset():
    return make_synthetic_dataset(4, 12, image_size=8, seed=3, name="sweep")


# A registered arm that validates fine but fails inside every image
# cell: the tabular defense rejects 4-D image batches at process_batch.
# Being a built-in registry entry, it exists in every worker regardless
# of the multiprocessing start method (spawn workers re-import the
# registry fresh and would never see a test-local registration).
FAILING_DEFENSE = "tabular"


def make_runner(dataset, store=None, **overrides):
    """The smoke grid: 4 cells of rtf x (WO, MR) x (full, sampled)."""
    kwargs = dict(
        attacks=("rtf",),
        defenses=("WO", "MR"),
        scenarios=(
            ParticipationScenario("full", num_clients=2),
            ParticipationScenario("sampled", num_clients=4, clients_per_round=2),
        ),
        batch_size=3,
        num_neurons=48,
        public_size=48,
        seed=0,
        store=store,
    )
    kwargs.update(overrides)
    return SweepRunner(dataset, **kwargs)


class TestExecutorEquivalence:
    def test_two_worker_store_byte_identical_to_serial(
        self, sweep_dataset, tmp_path
    ):
        # The acceptance criterion: the parallel store file is the same
        # bytes as the serial one (sort_keys makes key order canonical).
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        serial = make_runner(sweep_dataset, store=serial_path).run()
        parallel = make_runner(sweep_dataset, store=parallel_path).run(
            WorkStealingSweepExecutor(2)
        )
        assert len(serial.computed) == len(parallel.computed) == 4
        assert serial_path.read_bytes() == parallel_path.read_bytes()
        assert parallel.results == serial.results

    def test_secagg_arm_byte_identical_to_serial(self, sweep_dataset, tmp_path):
        # The protocol aggregators run full SecAgg rounds inside each
        # cell (key advertisement, Shamir shares, unmasking) — all of it
        # keyed by the cell fingerprint, so the byte-identity contract
        # must hold for secagg arms exactly as for plain ones.
        scenarios = (
            ParticipationScenario(
                "plain", num_clients=2, aggregator="masked_sum"
            ),
            ParticipationScenario(
                "secagg-drop",
                num_clients=6,
                dropout_rate=0.25,
                aggregator="secagg",
            ),
            ParticipationScenario(
                "oneshot-drop",
                num_clients=6,
                dropout_rate=0.25,
                aggregator="secagg_oneshot",
            ),
        )
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        serial = make_runner(
            sweep_dataset, store=serial_path, scenarios=scenarios
        ).run()
        parallel = make_runner(
            sweep_dataset, store=parallel_path, scenarios=scenarios
        ).run(WorkStealingSweepExecutor(2))
        assert len(serial.computed) == len(parallel.computed) == 6
        assert serial_path.read_bytes() == parallel_path.read_bytes()
        assert parallel.results == serial.results

    def test_time_cutoff_arms_byte_identical_to_serial(
        self, sweep_dataset, tmp_path
    ):
        # Event-engine arms: rounds close on the virtual clock, arrival
        # traces come from per-(client, round) keyed streams, and one arm
        # samples a lazy fleet.  None of that may depend on worker count
        # — simulated time is as order-invariant as everything else.
        scenarios = sweep_module.FLEET_SCENARIOS
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        serial = make_runner(
            sweep_dataset, store=serial_path, scenarios=scenarios
        ).run()
        parallel = make_runner(
            sweep_dataset, store=parallel_path, scenarios=scenarios
        ).run(WorkStealingSweepExecutor(2))
        assert len(serial.computed) == len(parallel.computed) == 2 * len(
            scenarios
        )
        assert serial_path.read_bytes() == parallel_path.read_bytes()
        assert parallel.results == serial.results

    def test_worker_count_invariance(self, sweep_dataset, tmp_path):
        references = None
        for workers in (1, 2, 3):
            path = tmp_path / f"w{workers}.json"
            executor = (
                SerialSweepExecutor()
                if workers == 1
                else WorkStealingSweepExecutor(workers)
            )
            make_runner(sweep_dataset, store=path).run(executor)
            content = path.read_bytes()
            if references is None:
                references = content
            assert content == references, f"{workers}-worker store diverged"

    def test_parallel_outcome_populates_timings_and_order(
        self, sweep_dataset, tmp_path
    ):
        outcome = make_runner(sweep_dataset, store=tmp_path / "s.json").run(
            WorkStealingSweepExecutor(2)
        )
        # Grid-order results regardless of completion order, with a timing
        # per computed cell.
        runner = make_runner(sweep_dataset)
        assert list(outcome.results) == [cell.key for cell in runner.cells()]
        assert sorted(outcome.timings) == sorted(outcome.results)
        assert all(elapsed >= 0.0 for elapsed in outcome.timings.values())

    def test_make_executor_selects_by_workers(self, monkeypatch):
        monkeypatch.setattr(sweep_module, "usable_cpu_count", lambda: 8)
        assert isinstance(make_executor(1), SerialSweepExecutor)
        assert isinstance(make_executor(4), WorkStealingSweepExecutor)
        assert make_executor(4).workers == 4
        with pytest.raises(ValueError):
            WorkStealingSweepExecutor(0)

    def test_make_executor_caps_at_usable_cores(self, monkeypatch):
        # The 0.29x regression: forcing 4 workers onto a 1-core host made
        # the "parallel" run slower than serial.  make_executor now warns
        # and reduces instead of oversubscribing...
        monkeypatch.setattr(sweep_module, "usable_cpu_count", lambda: 2)
        with pytest.warns(RuntimeWarning, match="2 usable core"):
            executor = make_executor(4)
        assert isinstance(executor, WorkStealingSweepExecutor)
        assert executor.workers == 2

    def test_make_executor_degrades_to_serial_on_one_core(self, monkeypatch):
        # ...and on a 1-core host it degrades all the way to the serial
        # executor, which a 1-worker pool can never beat.
        monkeypatch.setattr(sweep_module, "usable_cpu_count", lambda: 1)
        with pytest.warns(RuntimeWarning, match="1 usable core"):
            executor = make_executor(4)
        assert isinstance(executor, SerialSweepExecutor)

    def test_make_executor_auto_uses_every_usable_core(self, monkeypatch):
        monkeypatch.setattr(sweep_module, "usable_cpu_count", lambda: 3)
        executor = make_executor(None)
        assert isinstance(executor, WorkStealingSweepExecutor)
        assert executor.workers == 3
        assert make_executor("auto").workers == 3

    def test_parallel_executor_is_the_work_stealing_scheduler(self):
        # Backwards-compatible alias: code constructing the old name gets
        # the shared-queue scheduler.
        assert ParallelSweepExecutor is WorkStealingSweepExecutor

    def test_memory_only_store_runs_parallel(self, sweep_dataset):
        outcome = make_runner(sweep_dataset).run(WorkStealingSweepExecutor(2))
        assert len(outcome.computed) == 4
        assert headline_ordering_holds(outcome)


class TestResume:
    def test_resume_after_partial_serial_finishes_parallel(
        self, sweep_dataset, tmp_path
    ):
        # Simulate a killed run: only half the grid reached the store.
        path = tmp_path / "sweep.json"
        make_runner(
            sweep_dataset,
            store=path,
            scenarios=(ParticipationScenario("full", num_clients=2),),
        ).run()
        resumed = make_runner(sweep_dataset, store=path).run(
            WorkStealingSweepExecutor(2)
        )
        assert len(resumed.cached) == 2 and len(resumed.computed) == 2

        reference_path = tmp_path / "reference.json"
        make_runner(sweep_dataset, store=reference_path).run()
        assert path.read_bytes() == reference_path.read_bytes()

    def test_crashed_parallel_shards_recovered_by_next_run(
        self, sweep_dataset, tmp_path
    ):
        # A killed parallel run leaves per-worker shards behind; the next
        # run (serial here) must absorb them as finished cells, not
        # recompute them, and clean the shard directory up.
        reference_path = tmp_path / "reference.json"
        reference = make_runner(sweep_dataset, store=reference_path).run()

        path = tmp_path / "sweep.json"
        shard_dir = tmp_path / "sweep.json.shards"
        shard_dir.mkdir()
        runner = make_runner(sweep_dataset, store=path)
        first_cell = runner.cells()[0]
        shard = SweepStore(shard_dir / "shard-12345.json")
        shard.put(
            runner.store_key(first_cell), reference.results[first_cell.key]
        )

        resumed = make_runner(sweep_dataset, store=path).run()
        assert first_cell.key in resumed.cached
        assert len(resumed.computed) == 3
        assert not shard_dir.exists()
        assert path.read_bytes() == reference_path.read_bytes()

    def test_survivor_shards_not_deleted_by_staged_parallel_execute(
        self, sweep_dataset, tmp_path
    ):
        # The staged API (execute without run's recover step) must still
        # absorb a previous killed run's shards during cleanup, never
        # delete them unmerged.
        path = tmp_path / "sweep.json"
        runner = make_runner(sweep_dataset, store=path)
        shard_dir = runner.store.shard_directory()
        shard_dir.mkdir()
        SweepStore(shard_dir / "shard-999.json").put(
            "survivor-key", {"mean_psnr": 42.0}
        )
        runner.execute(runner.cells()[:1], WorkStealingSweepExecutor(2))
        assert not shard_dir.exists()
        assert SweepStore(path).get("survivor-key") == {"mean_psnr": 42.0}

    def test_recover_shards_counts_and_is_idempotent(self, sweep_dataset, tmp_path):
        path = tmp_path / "sweep.json"
        store = SweepStore(path)
        shard_dir = store.shard_directory()
        shard_dir.mkdir()
        SweepStore(shard_dir / "shard-1.json").put("a", 1)
        SweepStore(shard_dir / "shard-2.json").put("b", 2)
        assert store.recover_shards() == ShardRecovery(2, 0)
        assert store.recover_shards() == (0, 0)
        assert sorted(store.keys()) == ["a", "b"]


def _exit_worker_hard(payload):
    """A task that kills its worker process outright (no exception)."""
    import os

    os._exit(13)


class TestFailureIsolation:
    def test_dead_worker_raises_broken_pool_instead_of_hanging(self, tmp_path):
        # Exceptions become structured failures, but a worker that dies
        # without raising must surface as BrokenProcessPool, not a hang.
        from concurrent.futures.process import BrokenProcessPool

        store = SweepStore(tmp_path / "s.json")
        with pytest.raises(BrokenProcessPool):
            WorkStealingSweepExecutor(2).run(
                [("key", _exit_worker_hard, None)], store
            )
    def test_failed_cell_records_structured_error(self, sweep_dataset, tmp_path):
        path = tmp_path / "sweep.json"
        outcome = make_runner(
            sweep_dataset, store=path, defenses=("WO", FAILING_DEFENSE)
        ).run()
        failed_key = SweepCell("rtf", FAILING_DEFENSE, "full").key
        assert failed_key in outcome.failed
        error = outcome.results[failed_key]["error"]
        assert error["type"] == "ValueError"
        assert "tabular batches" in error["message"]
        assert "traceback" in error
        # The two WO cells and nothing else persisted: failures retry.
        persisted = SweepStore(path)
        assert len(persisted) == 2
        assert all("WO" in key for key in persisted.keys())

    def test_failed_cells_retry_on_next_run(self, sweep_dataset, tmp_path):
        path = tmp_path / "sweep.json"
        kwargs = dict(store=path, defenses=("WO", FAILING_DEFENSE))
        first = make_runner(sweep_dataset, **kwargs).run()
        again = make_runner(sweep_dataset, **kwargs).run(
            WorkStealingSweepExecutor(2)
        )
        assert sorted(again.cached) == sorted(first.computed)
        assert sorted(again.failed) == sorted(first.failed)

    def test_parallel_failure_does_not_kill_other_cells(
        self, sweep_dataset, tmp_path
    ):
        outcome = make_runner(
            sweep_dataset, store=tmp_path / "s.json",
            defenses=("WO", FAILING_DEFENSE, "MR"),
        ).run(WorkStealingSweepExecutor(2))
        assert len(outcome.computed) == 4 and len(outcome.failed) == 2
        assert headline_ordering_holds(outcome)

    def test_progress_events_cover_every_cell(self, sweep_dataset, tmp_path):
        path = tmp_path / "sweep.json"
        make_runner(
            sweep_dataset,
            store=path,
            scenarios=(ParticipationScenario("full", num_clients=2),),
        ).run()
        events: list[CellEvent] = []
        make_runner(
            sweep_dataset, store=path, defenses=("WO", "MR", FAILING_DEFENSE)
        ).run(WorkStealingSweepExecutor(2), progress=events.append)
        statuses = sorted(event.status for event in events)
        assert statuses == ["cached", "cached", "done", "done", "failed", "failed"]
        failures = [event for event in events if event.status == "failed"]
        assert all(event.error["type"] == "ValueError" for event in failures)


class TestSeedDerivation:
    """Cell seeding is a pure function of (base seed, cell fingerprint)."""

    @settings(max_examples=25, deadline=None)
    @given(order=st.permutations(list(range(8))), seed=st.integers(0, 2**31 - 1))
    def test_cell_seed_invariant_to_enumeration_order(
        self, sweep_dataset, order, seed
    ):
        runner = make_runner(
            sweep_dataset,
            attacks=("rtf", "cah"),
            defenses=("WO", "MR"),
            seed=seed,
        )
        cells = runner.cells()
        assert len(cells) == 8
        straight = {cell: runner.cell_seed(cell) for cell in cells}
        shuffled = {
            cells[index]: runner.cell_seed(cells[index]) for index in order
        }
        assert shuffled == straight

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_cell_seed_invariant_to_axis_declaration_order(
        self, sweep_dataset, seed
    ):
        forward = make_runner(
            sweep_dataset, defenses=("WO", "MR", "SH"), seed=seed
        )
        reversed_axes = make_runner(
            sweep_dataset, defenses=("SH", "MR", "WO"), seed=seed
        )
        for cell in forward.cells():
            assert forward.cell_seed(cell) == reversed_axes.cell_seed(cell)

    def test_distinct_cells_get_distinct_seeds(self, sweep_dataset):
        runner = make_runner(
            sweep_dataset, attacks=("rtf", "cah"), defenses=("WO", "MR", "SH")
        )
        seeds = [runner.cell_seed(cell) for cell in runner.cells()]
        assert len(set(seeds)) == len(seeds)

    def test_base_seed_changes_cell_seeds(self, sweep_dataset):
        base = make_runner(sweep_dataset, seed=0)
        moved = make_runner(sweep_dataset, seed=1)
        for cell in base.cells():
            assert base.cell_seed(cell) != moved.cell_seed(cell)


class TestStagedApi:
    """cells() -> execute() -> collect() compose the same as run()."""

    def test_staged_run_matches_run(self, sweep_dataset, tmp_path):
        runner = make_runner(sweep_dataset, store=tmp_path / "staged.json")
        cells = runner.cells()
        executions = runner.execute(cells, SerialSweepExecutor())
        outcome = runner.collect(cells, executions)
        reference = make_runner(
            sweep_dataset, store=tmp_path / "reference.json"
        ).run()
        assert outcome.results == reference.results
        assert outcome.computed == reference.computed

    def test_execute_persists_only_successes(self, sweep_dataset, tmp_path):
        runner = make_runner(
            sweep_dataset,
            store=tmp_path / "s.json",
            defenses=("WO", FAILING_DEFENSE),
        )
        runner.execute(runner.cells())
        assert all("WO" in key for key in runner.store.keys())
        assert len(runner.store) == 2
