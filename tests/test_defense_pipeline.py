"""DefensePipeline: stage chaining, expansion composition, FedAvg parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import ImprintedModel
from repro.defense import (
    ClientDefense,
    DefensePipeline,
    DPSGDDefense,
    GradientPruningDefense,
    NoDefense,
    OasisDefense,
    make_defense,
)
from repro.fl import compute_defended_update
from repro.nn import CrossEntropyLoss


class RecordingDefense(ClientDefense):
    """Logs every hook invocation (shared log, per-stage tag)."""

    def __init__(self, tag: str, log: list) -> None:
        self.name = tag
        self.log = log

    def process_batch(self, images, labels, rng):
        self.log.append(("batch", self.name, len(images)))
        return images, labels

    def process_gradients(self, gradients, rng):
        self.log.append(("grads", self.name))
        return gradients

    def finalize_update(self, gradients, num_examples, rng):
        self.log.append(("finalize", self.name, num_examples))
        return gradients


@pytest.fixture
def batch(rng):
    images = rng.random((3, 3, 8, 8))
    labels = rng.integers(0, 4, size=3)
    return images, labels


class TestChaining:
    def test_hooks_apply_in_stage_order(self, batch, rng):
        log: list = []
        pipeline = DefensePipeline(
            [RecordingDefense("a", log), RecordingDefense("b", log)]
        )
        images, labels = batch
        pipeline.process_batch(images, labels, rng)
        pipeline.process_gradients({"w": np.zeros(3)}, rng)
        pipeline.finalize_update({"w": np.zeros(3)}, 3, rng)
        assert [entry[:2] for entry in log] == [
            ("batch", "a"), ("batch", "b"),
            ("grads", "a"), ("grads", "b"),
            ("finalize", "a"), ("finalize", "b"),
        ]

    def test_batch_hook_sees_upstream_expansion(self, batch, rng):
        # The stage after OASIS receives the expanded batch, not the
        # original: expansion happens inside the chain, in order.
        log: list = []
        pipeline = DefensePipeline(
            [OasisDefense("MR"), RecordingDefense("after", log)]
        )
        images, labels = batch
        expanded, expanded_labels = pipeline.process_batch(images, labels, rng)
        assert log == [("batch", "after", 12)]
        assert len(expanded) == 12 and len(expanded_labels) == 12

    def test_name_joins_stages_with_separator(self):
        pipeline = DefensePipeline([OasisDefense("MR"), DPSGDDefense()])
        assert pipeline.name == "MR>DPSGD(z=0.1)"

    def test_nested_pipelines_flatten(self):
        inner = DefensePipeline([OasisDefense("MR"), GradientPruningDefense()])
        outer = DefensePipeline([inner, DPSGDDefense()])
        assert len(outer.stages) == 3
        assert not any(
            isinstance(stage, DefensePipeline) for stage in outer.stages
        )

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            DefensePipeline([])

    def test_single_stage_pipeline_behaves_like_stage(self, batch, rng):
        images, labels = batch
        alone = OasisDefense("MR").process_batch(images, labels, rng)
        piped = DefensePipeline([OasisDefense("MR")]).process_batch(
            images, labels, rng
        )
        np.testing.assert_array_equal(alone[0], piped[0])
        np.testing.assert_array_equal(alone[1], piped[1])


class TestExpansionAndClipping:
    def test_expansion_factors_multiply(self):
        pipeline = DefensePipeline([OasisDefense("MR"), OasisDefense("MR+SH")])
        assert pipeline.expansion_factor() == 4 * 7

    def test_non_expanding_stages_contribute_factor_one(self):
        pipeline = DefensePipeline(
            [OasisDefense("HFlip"), DPSGDDefense(), GradientPruningDefense()]
        )
        assert pipeline.expansion_factor() == 2

    def test_per_sample_clip_propagates(self):
        pipeline = DefensePipeline([OasisDefense("MR"), DPSGDDefense(0.7)])
        assert pipeline.per_sample_clip == pytest.approx(0.7)
        assert DefensePipeline([NoDefense()]).per_sample_clip is None

    def test_two_clipping_stages_refused(self):
        with pytest.raises(ValueError, match="per_sample_clip"):
            DefensePipeline([DPSGDDefense(1.0), DPSGDDefense(0.5)])


class TestComputeDefendedUpdate:
    """The full client-side path with a composed pipeline attached."""

    def _model(self, rng_seed=11):
        return ImprintedModel((3, 8, 8), 16, 4, rng=np.random.default_rng(rng_seed))

    def test_reported_examples_stay_pre_expansion(self, batch, rng):
        # The PR-2 FedAvg weight-parity fix must survive composition: a
        # 4x-expanding pipeline still reports the original batch size, so
        # a defended client carries the same aggregation weight as an
        # undefended one.
        images, labels = batch
        pipeline = make_defense("MR>dpsgd(noise_multiplier=0.0)")
        _, _, num_examples = compute_defended_update(
            self._model(), CrossEntropyLoss(), images, labels, pipeline, rng
        )
        assert num_examples == 3

    def test_finalize_receives_post_expansion_count(self, batch, rng):
        # DP-SGD's sigma = z*C/B calibration tracks the batch the
        # gradients were averaged over — the *expanded* one.
        log: list = []
        pipeline = DefensePipeline(
            [OasisDefense("MR"), RecordingDefense("spy", log)]
        )
        images, labels = batch
        compute_defended_update(
            self._model(), CrossEntropyLoss(), images, labels, pipeline, rng
        )
        assert ("finalize", "spy", 12) in log

    def test_zero_noise_composition_equals_clipped_mean_over_expansion(
        self, batch, rng
    ):
        # MR>dpsgd with z=0 must equal: expand with MR, per-sample clip,
        # average — stage semantics compose without interference.
        from repro.fl import average_gradients, clip_gradient_dict
        from repro.fl.gradients import compute_batch_gradients

        images, labels = batch
        pipeline = make_defense("MR>dpsgd(noise_multiplier=0.0,clip_norm=0.5)")
        model = self._model()
        gradients, _, _ = compute_defended_update(
            model, CrossEntropyLoss(), images, labels, pipeline, rng
        )
        expanded, expanded_labels = OasisDefense("MR").expand_batch(
            images, labels
        )
        reference = average_gradients([
            clip_gradient_dict(
                compute_batch_gradients(
                    model, CrossEntropyLoss(),
                    expanded[i : i + 1], expanded_labels[i : i + 1],
                )[0],
                0.5,
            )
            for i in range(len(expanded))
        ])
        for name, value in reference.items():
            np.testing.assert_allclose(gradients[name], value)

    def test_defense_overriding_both_gradient_hooks_gets_both(self, batch, rng):
        # The documented four-stage surface executes process_gradients AND
        # finalize_update, once each — a defense overriding both must not
        # silently lose either on the real client path.
        class BothHooks(ClientDefense):
            name = "both"

            def process_gradients(self, gradients, rng):
                return {k: g + 1.0 for k, g in gradients.items()}

            def finalize_update(self, gradients, num_examples, rng):
                return {k: g * 10.0 for k, g in gradients.items()}

        images, labels = batch
        model = self._model()
        from repro.fl.gradients import compute_batch_gradients

        raw, _ = compute_batch_gradients(
            model, CrossEntropyLoss(), images, labels
        )
        defended, _, _ = compute_defended_update(
            model, CrossEntropyLoss(), images, labels, BothHooks(), rng
        )
        for name, value in raw.items():
            np.testing.assert_allclose(defended[name], (value + 1.0) * 10.0)

    def test_gradient_stage_composes_after_expansion(self, batch, rng):
        # MR>prune: pruned gradients of the expanded batch — the pruning
        # mask applies to what OASIS produced, and the pipeline output is
        # exactly prune(process(MR batch)).
        from repro.fl.gradients import compute_batch_gradients

        images, labels = batch
        pipeline = make_defense("MR>prune(prune_fraction=0.5)")
        model = self._model()
        gradients, _, _ = compute_defended_update(
            model, CrossEntropyLoss(), images, labels, pipeline, rng
        )
        expanded, expanded_labels = OasisDefense("MR").expand_batch(images, labels)
        raw, _ = compute_batch_gradients(
            model, CrossEntropyLoss(), expanded, expanded_labels
        )
        reference = GradientPruningDefense(0.5).process_gradients(raw, rng)
        for name, value in reference.items():
            np.testing.assert_allclose(gradients[name], value)


class TestReseed:
    def test_reseed_is_deterministic_per_stage(self):
        grads = {"w": np.zeros(128)}
        a = DefensePipeline([DPSGDDefense(), GradientPruningDefense()])
        b = DefensePipeline([DPSGDDefense(), GradientPruningDefense()])
        a.reseed(21)
        b.reseed(21)
        noise_a = a.finalize_update(grads, 4, np.random.default_rng())["w"]
        noise_b = b.finalize_update(grads, 4, np.random.default_rng())["w"]
        np.testing.assert_array_equal(noise_a, noise_b)
        assert not np.allclose(noise_a, 0.0)

    def test_reseed_differs_across_base_seeds(self):
        grads = {"w": np.zeros(128)}
        a = DefensePipeline([DPSGDDefense()])
        b = DefensePipeline([DPSGDDefense()])
        a.reseed(21)
        b.reseed(22)
        assert not np.allclose(
            a.finalize_update(grads, 4, np.random.default_rng())["w"],
            b.finalize_update(grads, 4, np.random.default_rng())["w"],
        )
