"""Client-side detection of imprint-attack signatures in broadcast models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import CAHAttack, ImprintedModel, LOKIAttack, QBIAttack, RTFAttack
from repro.defense import inspect_state
from repro.defense.detection import _linear_pairs
from repro.nn import MLP


@pytest.fixture
def clean_state(cifar_like):
    model = ImprintedModel(cifar_like.image_shape, 100, cifar_like.num_classes,
                           rng=np.random.default_rng(0))
    return model.state_dict()


def crafted_state(cifar_like, attack_name):
    model = ImprintedModel(cifar_like.image_shape, 100, cifar_like.num_classes,
                           rng=np.random.default_rng(0))
    if attack_name == "rtf":
        attack = RTFAttack(100)
    else:
        attack = CAHAttack(100, seed=1)
    attack.calibrate_from_public_data(cifar_like.images[:100])
    attack.craft(model)
    return model.state_dict()


class TestDetection:
    def test_clean_model_not_flagged(self, clean_state, cifar_like):
        report = inspect_state(clean_state, probe_inputs=cifar_like.images[:32])
        assert not report.suspicious

    def test_honest_mlp_not_flagged(self, rng):
        model = MLP([64, 128, 32, 10], rng=np.random.default_rng(4))
        report = inspect_state(
            model.state_dict(), probe_inputs=rng.random((32, 64))
        )
        assert not report.suspicious

    def test_rtf_crafted_model_flagged(self, cifar_like):
        report = inspect_state(crafted_state(cifar_like, "rtf"))
        assert report.suspicious
        assert any("RTF" in finding for finding in report.findings)

    def test_cah_crafted_model_flagged(self, cifar_like):
        # CAH has no structural signature; the client must probe with its
        # own data to expose the sparse trap-activation profile.
        report = inspect_state(
            crafted_state(cifar_like, "cah"),
            probe_inputs=cifar_like.images[:64],
        )
        assert report.suspicious
        assert any("CAH" in finding for finding in report.findings)

    def test_cah_without_probes_not_detectable(self, cifar_like):
        report = inspect_state(crafted_state(cifar_like, "cah"))
        assert not report.suspicious

    def test_few_probes_skips_functional_check(self, cifar_like):
        report = inspect_state(
            crafted_state(cifar_like, "cah"), probe_inputs=cifar_like.images[:4]
        )
        assert not report.suspicious

    def test_small_layers_ignored(self):
        # Tiny layers (below min_neurons) are skipped to avoid noise.
        state = {
            "fc.weight": np.tile(np.ones(4), (8, 1)),
            "fc.bias": -np.arange(8.0),
        }
        assert not inspect_state(state, min_neurons=16).suspicious

    def test_report_is_truthy_when_suspicious(self, cifar_like):
        report = inspect_state(crafted_state(cifar_like, "rtf"))
        assert bool(report)

    def test_conv_weights_ignored(self, rng):
        state = {
            "conv.weight": rng.standard_normal((8, 3, 3, 3)),
            "conv.bias": rng.standard_normal(8),
        }
        assert not inspect_state(state).suspicious

    def test_weight_without_bias_ignored(self, rng):
        state = {"fc.weight": np.tile(np.ones(10), (32, 1))}
        assert not inspect_state(state).suspicious

    def test_first_row_noising_does_not_evade(self, cifar_like, rng):
        # Regression: the colinearity check used to compare every row to
        # rows[0], so a server that noised just the first imprint row
        # dropped the detected fraction to ~0 while keeping the attack.
        state = crafted_state(cifar_like, "rtf")
        weight_name = next(
            name for name in state
            if name.endswith(".weight") and state[name].ndim == 2
            and "imprint" in name
        )
        noised = {name: value.copy() for name, value in state.items()}
        noised[weight_name][0] += rng.standard_normal(
            noised[weight_name].shape[1]
        )
        report = inspect_state(noised)
        assert report.suspicious
        assert any("RTF" in finding for finding in report.findings)

    def test_negated_rows_still_counted(self, cifar_like):
        # Eq. 6 is sign-invariant: a negated imprint row extracts inputs
        # just as well, so |cosine| must catch sign-flipped copies.
        state = crafted_state(cifar_like, "rtf")
        weight_name = next(
            name for name in state
            if name.endswith(".weight") and state[name].ndim == 2
            and "imprint" in name
        )
        flipped = {name: value.copy() for name, value in state.items()}
        flipped[weight_name][::2] *= -1.0
        report = inspect_state(flipped)
        assert report.suspicious


class TestKeyNormalization:
    """Regression: _linear_pairs only matched `*.weight`/`*.bias` 2-D pairs,
    so an imprint layer registered under a non-standard key (or with a
    transposed weight) escaped inspection entirely."""

    def test_imprinted_model_state_dict_pairs_found(self, cifar_like):
        # The actual attack surface: every FC layer of the real
        # ImprintedModel state dict must be discovered.
        model = ImprintedModel(cifar_like.image_shape, 32, 10,
                               rng=np.random.default_rng(0))
        names = {name for name, _, _ in _linear_pairs(model.state_dict())}
        assert {"imprint.weight", "decoder.weight", "head.weight"} <= names

    def test_underscore_separated_keys_inspected(self, cifar_like):
        state = crafted_state(cifar_like, "rtf")
        renamed = {
            name.replace("imprint.", "imprint_"): value
            for name, value in state.items()
        }
        report = inspect_state(renamed)
        assert report.suspicious
        assert any("RTF" in finding for finding in report.findings)

    def test_bare_weight_key_inspected(self, cifar_like):
        state = crafted_state(cifar_like, "rtf")
        bare = {"weight": state["imprint.weight"], "bias": state["imprint.bias"]}
        assert inspect_state(bare).suspicious

    def test_mixed_case_keys_inspected(self, cifar_like):
        # The server also chooses the capitalization; "Weight"/"Bias"
        # must not slip past a case-sensitive lookup.
        state = crafted_state(cifar_like, "rtf")
        cased = {
            "imprint.Weight": state["imprint.weight"],
            "imprint.Bias": state["imprint.bias"],
        }
        report = inspect_state(cased)
        assert report.suspicious
        assert any("RTF" in finding for finding in report.findings)

    def test_mixed_separator_pair_inspected(self, cifar_like):
        # Weight and bias registered under different separators.
        state = crafted_state(cifar_like, "rtf")
        mixed = {
            "imprint_weight": state["imprint.weight"],
            "imprint.bias": state["imprint.bias"],
        }
        assert inspect_state(mixed).suspicious

    def test_transposed_weight_inspected(self, cifar_like):
        state = crafted_state(cifar_like, "rtf")
        transposed = {
            name: value.copy() for name, value in state.items()
            if not name.startswith("imprint.")
        }
        transposed["imprint.weight"] = state["imprint.weight"].T.copy()
        transposed["imprint.bias"] = state["imprint.bias"].copy()
        report = inspect_state(transposed)
        assert report.suspicious
        assert any("RTF" in finding for finding in report.findings)


class TestZooSignatures:
    def qbi_state(self, cifar_like):
        model = ImprintedModel(cifar_like.image_shape, 100,
                               cifar_like.num_classes,
                               rng=np.random.default_rng(0))
        attack = QBIAttack(100, expected_batch_size=8, seed=1)
        attack.calibrate_from_public_data(cifar_like.images[:100])
        attack.craft(model)
        return model.state_dict()

    def test_qbi_flagged_with_probes(self, cifar_like):
        report = inspect_state(
            self.qbi_state(cifar_like), probe_inputs=cifar_like.images[:64]
        )
        assert report.suspicious
        assert any("QBI" in finding for finding in report.findings)

    @pytest.mark.parametrize("batch_size", [3, 4, 8, 16])
    def test_qbi_flagged_across_batch_sizes(self, cifar_like, batch_size):
        # The rate band must cover every legal tuning with p* < 0.5, not
        # just the default B=8.
        model = ImprintedModel(cifar_like.image_shape, 100,
                               cifar_like.num_classes,
                               rng=np.random.default_rng(0))
        attack = QBIAttack(100, expected_batch_size=batch_size, seed=1)
        attack.calibrate_from_public_data(cifar_like.images[:100])
        attack.craft(model)
        report = inspect_state(
            model.state_dict(), probe_inputs=cifar_like.images[:64]
        )
        assert report.suspicious, f"QBI B={batch_size} escaped detection"
        # Large B pushes p* below the CAH sparsity threshold, where the
        # (accurate) CAH-style label fires first; either trap-weight
        # finding counts as detection.
        assert any(
            "QBI" in finding or "CAH" in finding
            for finding in report.findings
        )

    def test_qbi_without_probes_not_detectable(self, cifar_like):
        # Like CAH, QBI trap weights are structurally random: only a
        # probe with local data exposes the pinned activation rates.
        assert not inspect_state(self.qbi_state(cifar_like)).suspicious

    def test_loki_per_client_model_flagged_structurally(self, cifar_like):
        model = ImprintedModel(cifar_like.image_shape, 100,
                               cifar_like.num_classes,
                               rng=np.random.default_rng(0))
        attack = LOKIAttack(100, seed=1)
        attack.calibrate_from_public_data(cifar_like.images[:100])
        attack.assign_clients([0, 1, 2, 3])
        attack.craft_for_client(model, 1)
        # No probes needed: zero rows with disabling biases are structural.
        report = inspect_state(model.state_dict())
        assert report.suspicious
        assert any("LOKI" in finding for finding in report.findings)

    def test_loki_union_model_flagged_via_probes(self, cifar_like):
        model = ImprintedModel(cifar_like.image_shape, 100,
                               cifar_like.num_classes,
                               rng=np.random.default_rng(0))
        attack = LOKIAttack(100, seed=1)
        attack.calibrate_from_public_data(cifar_like.images[:100])
        attack.craft(model)
        report = inspect_state(
            model.state_dict(), probe_inputs=cifar_like.images[:64]
        )
        assert report.suspicious
