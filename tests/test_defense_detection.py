"""Client-side detection of imprint-attack signatures in broadcast models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import CAHAttack, ImprintedModel, RTFAttack
from repro.defense import inspect_state
from repro.nn import MLP


@pytest.fixture
def clean_state(cifar_like):
    model = ImprintedModel(cifar_like.image_shape, 100, cifar_like.num_classes,
                           rng=np.random.default_rng(0))
    return model.state_dict()


def crafted_state(cifar_like, attack_name):
    model = ImprintedModel(cifar_like.image_shape, 100, cifar_like.num_classes,
                           rng=np.random.default_rng(0))
    if attack_name == "rtf":
        attack = RTFAttack(100)
    else:
        attack = CAHAttack(100, seed=1)
    attack.calibrate_from_public_data(cifar_like.images[:100])
    attack.craft(model)
    return model.state_dict()


class TestDetection:
    def test_clean_model_not_flagged(self, clean_state, cifar_like):
        report = inspect_state(clean_state, probe_inputs=cifar_like.images[:32])
        assert not report.suspicious

    def test_honest_mlp_not_flagged(self, rng):
        model = MLP([64, 128, 32, 10], rng=np.random.default_rng(4))
        report = inspect_state(
            model.state_dict(), probe_inputs=rng.random((32, 64))
        )
        assert not report.suspicious

    def test_rtf_crafted_model_flagged(self, cifar_like):
        report = inspect_state(crafted_state(cifar_like, "rtf"))
        assert report.suspicious
        assert any("RTF" in finding for finding in report.findings)

    def test_cah_crafted_model_flagged(self, cifar_like):
        # CAH has no structural signature; the client must probe with its
        # own data to expose the sparse trap-activation profile.
        report = inspect_state(
            crafted_state(cifar_like, "cah"),
            probe_inputs=cifar_like.images[:64],
        )
        assert report.suspicious
        assert any("CAH" in finding for finding in report.findings)

    def test_cah_without_probes_not_detectable(self, cifar_like):
        report = inspect_state(crafted_state(cifar_like, "cah"))
        assert not report.suspicious

    def test_few_probes_skips_functional_check(self, cifar_like):
        report = inspect_state(
            crafted_state(cifar_like, "cah"), probe_inputs=cifar_like.images[:4]
        )
        assert not report.suspicious

    def test_small_layers_ignored(self):
        # Tiny layers (below min_neurons) are skipped to avoid noise.
        state = {
            "fc.weight": np.tile(np.ones(4), (8, 1)),
            "fc.bias": -np.arange(8.0),
        }
        assert not inspect_state(state, min_neurons=16).suspicious

    def test_report_is_truthy_when_suspicious(self, cifar_like):
        report = inspect_state(crafted_state(cifar_like, "rtf"))
        assert bool(report)

    def test_conv_weights_ignored(self, rng):
        state = {
            "conv.weight": rng.standard_normal((8, 3, 3, 3)),
            "conv.bias": rng.standard_normal(8),
        }
        assert not inspect_state(state).suspicious

    def test_weight_without_bias_ignored(self, rng):
        state = {"fc.weight": np.tile(np.ones(10), (32, 1))}
        assert not inspect_state(state).suspicious

    def test_first_row_noising_does_not_evade(self, cifar_like, rng):
        # Regression: the colinearity check used to compare every row to
        # rows[0], so a server that noised just the first imprint row
        # dropped the detected fraction to ~0 while keeping the attack.
        state = crafted_state(cifar_like, "rtf")
        weight_name = next(
            name for name in state
            if name.endswith(".weight") and state[name].ndim == 2
            and "imprint" in name
        )
        noised = {name: value.copy() for name, value in state.items()}
        noised[weight_name][0] += rng.standard_normal(
            noised[weight_name].shape[1]
        )
        report = inspect_state(noised)
        assert report.suspicious
        assert any("RTF" in finding for finding in report.findings)

    def test_negated_rows_still_counted(self, cifar_like):
        # Eq. 6 is sign-invariant: a negated imprint row extracts inputs
        # just as well, so |cosine| must catch sign-flipped copies.
        state = crafted_state(cifar_like, "rtf")
        weight_name = next(
            name for name in state
            if name.endswith(".weight") and state[name].ndim == 2
            and "imprint" in name
        )
        flipped = {name: value.copy() for name, value in state.items()}
        flipped[weight_name][::2] *= -1.0
        report = inspect_state(flipped)
        assert report.suspicious
