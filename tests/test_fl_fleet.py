"""Lazy-fleet tests: O(cohort) materialization, factory contract, soak.

The fleet is what makes 100k–1M registered users affordable: registration
stores a factory and a count, and a ``Client`` (shard, model, RNG stream)
exists only once the engine dispatches its id.  These tests pin the
laziness itself (materialized counts), the purity contract that makes
laziness sound (``factory(i).client_id == i``, same client object across
rounds), and — behind the ``fleet_scale`` marker — the sustained
multi-round soak at 1k active clients from a 100k-user registry that the
CI ``fleet-scale`` job runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_synthetic_dataset
from repro.fl import (
    FederationConfig,
    FederatedSimulation,
    Fleet,
    GradientUpdate,
    Server,
    TimeCutoff,
    make_lazy_fleet,
)
from repro.fl.engine import ticks
from repro.nn import MLP
from repro.nn.module import Module

DIM = 4


class StubClient:
    def __init__(self, client_id: int) -> None:
        self.client_id = client_id

    def local_update(self, broadcast) -> GradientUpdate:
        return GradientUpdate(
            client_id=self.client_id,
            round_index=broadcast.round_index,
            num_examples=1,
            gradients={"w": np.full(DIM, float(self.client_id))},
            loss=float(self.client_id),
        )


class TestFleetRegistry:
    def test_registration_is_lazy(self):
        built = []

        def factory(client_id: int) -> StubClient:
            built.append(client_id)
            return StubClient(client_id)

        fleet = Fleet(100_000, factory)
        assert len(fleet) == 100_000
        assert fleet.materialized_count == 0
        assert built == []
        assert fleet.client_ids == range(100_000)

    def test_materialization_caches(self):
        calls = []
        fleet = Fleet(10, lambda i: (calls.append(i), StubClient(i))[1])
        first = fleet.get(7)
        again = fleet.get(7)
        assert first is again
        assert calls == [7]
        assert fleet.materialized_count == 1

    def test_factory_contract_enforced(self):
        fleet = Fleet(10, lambda i: StubClient(i + 1))
        with pytest.raises(ValueError, match="factory returned client_id"):
            fleet.get(0)

    def test_out_of_range_rejected(self):
        fleet = Fleet(5, StubClient)
        with pytest.raises(KeyError):
            fleet.get(5)
        with pytest.raises(KeyError):
            fleet.get(-1)
        assert 4 in fleet and 5 not in fleet

    def test_from_clients_requires_dense_ids(self):
        with pytest.raises(ValueError, match="at least one client"):
            Fleet.from_clients([])
        with pytest.raises(ValueError, match="0..n-1"):
            Fleet.from_clients([StubClient(0), StubClient(2)])
        fleet = Fleet.from_clients([StubClient(0), StubClient(1)])
        assert fleet.materialized_count == 2
        assert [c.client_id for c in fleet] == [0, 1]

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Fleet(0, StubClient)


class TestServerOverLazyFleet:
    def test_server_materializes_only_dispatched_clients(self):
        fleet = Fleet(10_000, StubClient)
        server = Server(Module(), fleet, clients_per_round=16, seed=0)
        record = server.run_round()
        assert len(record.participant_ids) == 16
        assert fleet.materialized_count == 16

    def test_sampling_identical_to_eager_fleet(self):
        # The engine draws selection from fleet *size*, so a lazy fleet
        # and an eager roster of the same size share the RNG stream.
        lazy = Server(Module(), Fleet(64, StubClient), clients_per_round=8, seed=5)
        eager = Server(
            Module(), [StubClient(i) for i in range(64)], clients_per_round=8, seed=5
        )
        for _ in range(4):
            a, b = lazy.run_round(), eager.run_round()
            assert a.selected_ids == b.selected_ids
            assert a.participant_ids == b.participant_ids
        assert lazy.fleet.materialized_count <= 32

    def test_sampled_client_is_same_object_across_rounds(self):
        fleet = Fleet(4, StubClient)
        server = Server(Module(), fleet, seed=0)
        server.run(2)
        assert fleet.materialized_count == 4
        assert fleet.get(0) is fleet.get(0)


class TestLazySimulation:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_synthetic_dataset(4, 24, image_size=8, seed=13, name="fleet")

    def make_config(self, fleet_size, **kwargs):
        return FederationConfig(
            batch_size=2,
            seed=3,
            fleet_size=fleet_size,
            **kwargs,
        )

    def test_shards_are_pure_functions_of_client_id(self, dataset):
        config = self.make_config(1000, shard_size=4)
        factory = lambda: MLP(
            [dataset.flat_dim, 4, dataset.num_classes],
            rng=np.random.default_rng(0),
        )
        one = make_lazy_fleet(dataset, factory, config)
        other = make_lazy_fleet(dataset, factory, config)
        # Materialize in different orders; shards must match per id.
        for cid in (977, 3, 500):
            np.testing.assert_array_equal(
                one.get(cid).dataset.images, other.get(cid).dataset.images
            )
        assert one.materialized_count == 3

    def test_simulation_over_lazy_fleet_runs(self, dataset):
        config = self.make_config(
            500,
            clients_per_round=8,
            arrivals="tiered",
            round_duration_s=1.0,
            min_arrivals=1,
        )
        sim = FederatedSimulation(
            dataset,
            lambda: MLP(
                [dataset.flat_dim, 4, dataset.num_classes],
                rng=np.random.default_rng(0),
            ),
            config,
        )
        records = sim.run(3)
        assert sim.fleet.materialized_count <= 3 * 8
        assert any(np.isfinite(r.mean_loss) for r in records)
        for record in records:
            assert record.timing is not None

    def test_lazy_fleet_validates_inputs(self, dataset):
        with pytest.raises(ValueError, match="fleet_size"):
            make_lazy_fleet(dataset, Module, self.make_config(0))
        with pytest.raises(ValueError, match="shard_size"):
            make_lazy_fleet(
                dataset, Module, self.make_config(10, shard_size=10_000)
            )


@pytest.mark.fleet_scale
class TestFleetScaleSoak:
    """Sustained multi-round soak at 1k active clients (CI fleet-scale job)."""

    def test_1k_active_clients_from_100k_fleet_sustained(self):
        fleet = Fleet(100_000, StubClient)
        server = Server(
            Module(),
            fleet,
            clients_per_round=1000,
            arrivals="tiered",
            cutoff=TimeCutoff(ticks(2.0), min_arrivals=100),
            seed=0,
        )
        records = server.run(5)
        for record in records:
            assert len(record.selected_ids) == 1000
            assert len(record.participant_ids) >= 100
        # Laziness holds at scale: only dispatched clients ever exist.
        assert fleet.materialized_count <= 5 * 1000
        assert server.clock.now > 0

    def test_1k_real_clients_train_the_global_model(self):
        dataset = make_synthetic_dataset(
            4, 32, image_size=8, seed=29, name="fleet-soak"
        )
        config = FederationConfig(
            batch_size=2,
            seed=11,
            fleet_size=100_000,
            shard_size=4,
            clients_per_round=1000,
            learning_rate=0.05,
            arrivals="tiered",
            round_duration_s=3.0,
            min_arrivals=200,
        )
        sim = FederatedSimulation(
            dataset,
            lambda: MLP(
                [dataset.flat_dim, 8, dataset.num_classes],
                rng=np.random.default_rng(0),
            ),
            config,
        )
        records = sim.run(3)
        assert all(len(r.participant_ids) >= 200 for r in records)
        assert all(np.isfinite(r.mean_loss) for r in records)
        assert sim.fleet.materialized_count <= 3 * 1000
