"""Tests for the op-level profiler (:mod:`repro.profile`).

The profiler is the measuring instrument behind the tensor-core
acceleration: op counts must be exact (they are assertions about graph
shape, e.g. "a fused Linear forward is one node"), timings must reconcile
with wall time, and — the load-bearing property — profiling must be purely
observational: a profiled cell returns bit-identical results.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro.tensor.backend as backend
import repro.tensor.tensor as tensor_module
from repro.nn import MLP, CrossEntropyLoss
from repro.profile import Profiler, op_name, profile_cell
from repro.tensor import Tensor, reference_kernels

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


class TestOpCounting:
    def test_counts_every_graph_node(self):
        with Profiler() as profiler:
            a = Tensor(np.ones(3), requires_grad=True)
            ((a * 2.0) + 1.0).sum().backward()
        assert profiler.ops["__mul__"].calls == 1
        assert profiler.ops["__add__"].calls == 1
        assert profiler.ops["sum"].calls == 1
        assert profiler.total_calls == 3

    def test_fused_linear_is_one_node(self):
        model = MLP([6, 5, 3], rng=np.random.default_rng(0))
        images = np.random.default_rng(1).standard_normal((4, 6))
        labels = np.array([0, 1, 2, 0])

        with Profiler() as fused_prof:
            CrossEntropyLoss()(model(Tensor(images)), labels).backward()
        with reference_kernels():
            with Profiler() as reference_prof:
                CrossEntropyLoss()(model(Tensor(images)), labels).backward()

        assert fused_prof.ops["linear"].calls == 2
        assert fused_prof.ops["cross_entropy"].calls == 1
        assert "linear" not in reference_prof.ops
        # Fusion is the point: far fewer nodes for the same computation.
        assert fused_prof.total_calls < reference_prof.total_calls / 2

    def test_backward_closures_timed(self):
        with Profiler() as profiler:
            a = Tensor(np.ones((50, 50)), requires_grad=True)
            (a * 3.0).sum().backward()
        assert profiler.ops["__mul__"].backward_calls == 1
        assert profiler.ops["sum"].backward_calls == 1

    def test_timings_reconcile(self):
        with Profiler() as profiler:
            a = Tensor(np.ones((100, 100)), requires_grad=True)
            for _ in range(5):
                (a @ a).sum().backward()
        report = profiler.report()
        assert report["wall_seconds"] > 0
        total = (
            report["attributed_seconds"] + report["unattributed_seconds"]
        )
        assert total == pytest.approx(report["wall_seconds"], rel=1e-6)

    def test_report_ranked_and_bounded(self):
        with Profiler() as profiler:
            a = Tensor(np.ones(4), requires_grad=True)
            ((a + 1.0) * 2.0).sum().backward()
        full = profiler.report()
        assert list(full["ops"]) == sorted(
            full["ops"],
            key=lambda n: (
                -(full["ops"][n]["forward_seconds"]
                  + full["ops"][n]["backward_seconds"]),
                n,
            ),
        )
        assert len(profiler.report(top=2)["ops"]) == 2

    def test_hook_restored_and_not_reentrant(self):
        assert tensor_module._PROFILE_HOOK is None
        with Profiler() as profiler:
            assert tensor_module._PROFILE_HOOK is not None
            with pytest.raises(RuntimeError, match="re-entrant"):
                profiler.__enter__()
        assert tensor_module._PROFILE_HOOK is None

    def test_op_name_extraction(self):
        def backward(out):
            return lambda: None

        # The name is the function *enclosing* the backward closure.
        backward.__qualname__ = "Tensor.__add__.<locals>.backward"
        assert op_name(backward) == "__add__"
        backward.__qualname__ = "conv2d.<locals>.backward"
        assert op_name(backward) == "conv2d"
        backward.__qualname__ = "standalone"
        assert op_name(backward) == "standalone"


class TestProfileCell:
    def test_profiling_is_observational(self):
        """A profiled cell returns exactly what an unprofiled one does."""
        from repro.experiments.sweep import GRID_PRESETS

        runner = GRID_PRESETS["smoke"](0, 1, None)
        cell = runner.cells()[0]
        bare = runner.run_cell(cell)
        report, profiled = profile_cell("rtf", "WO")
        assert profiled == bare
        assert report["total_ops"] > 0

    def test_cli_json_output(self):
        env = dict(os.environ, PYTHONPATH=str(REPO_SRC))
        completed = subprocess.run(
            [sys.executable, "-m", "repro.profile", "--cell", "rtfxWO"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert completed.returncode == 0, completed.stderr
        payload = json.loads(completed.stdout)
        assert payload["attack"] == "rtf"
        assert payload["defense"] == "WO"
        assert payload["kernel_mode"] == "fused"
        assert payload["profile"]["total_ops"] > 0
        assert payload["result"]["num_reconstructions"] >= 0

    def test_cli_reference_mode_and_bad_cell(self):
        env = dict(os.environ, PYTHONPATH=str(REPO_SRC))
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro.profile",
                "--cell", "rtfxWO", "--reference", "--top", "3",
            ],
            capture_output=True,
            text=True,
            env=env,
        )
        assert completed.returncode == 0, completed.stderr
        payload = json.loads(completed.stdout)
        assert payload["kernel_mode"] == "reference"
        assert len(payload["profile"]["ops"]) <= 3

        bad = subprocess.run(
            [sys.executable, "-m", "repro.profile", "--cell", "nonsense"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert bad.returncode != 0

    def test_cli_leaves_kernel_mode_unchanged(self):
        # In-process equivalent of the CLI's restore contract.
        assert backend.kernel_mode() == "fused"
        from repro.profile.__main__ import main

        import io
        import contextlib

        stdout = io.StringIO()
        with contextlib.redirect_stdout(stdout):
            code = main(["--cell", "rtfxWO", "--reference"])
        assert code == 0
        assert backend.kernel_mode() == "fused"
        assert json.loads(stdout.getvalue())["kernel_mode"] == "reference"
