"""End-to-end integration: the paper's full story on one federation.

Scenario mirroring Fig. 1: a dishonest server attacks a federation of
honest clients.  Without OASIS the target's batch is reconstructed
verbatim; with OASIS only unrecognizable mixtures come out; training still
converges.  Also covers multi-round behaviour and the DP baseline contrast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import CAHAttack, ImprintedModel, RTFAttack
from repro.data import make_synthetic_dataset
from repro.defense import DPGradientDefense, OasisDefense
from repro.fl import FederatedSimulation, FederationConfig
from repro.metrics import per_image_best_psnr
from repro.nn import MLP


@pytest.fixture(scope="module")
def dataset():
    return make_synthetic_dataset(6, 12, image_size=12, seed=9, name="e2e")


NUM_NEURONS = 96


def imprinted_factory(dataset):
    def factory():
        return ImprintedModel(
            dataset.image_shape, NUM_NEURONS, dataset.num_classes,
            rng=np.random.default_rng(17),
        )
    return factory


def run_attack_sim(dataset, attack, defense, rounds=1):
    sim = FederatedSimulation(
        dataset,
        imprinted_factory(dataset),
        FederationConfig(num_clients=3, batch_size=4, seed=5),
        defense=defense,
        attack=attack,
        target_client_id=0,
    )
    sim.run(rounds)
    return sim


class TestRTFEndToEnd:
    def _attack(self, dataset):
        attack = RTFAttack(NUM_NEURONS)
        attack.calibrate_from_public_data(dataset.images)
        return attack

    def test_undefended_leaks_everything(self, dataset):
        sim = run_attack_sim(dataset, self._attack(dataset), defense=None)
        target_batch = sim.server.clients[0].last_batch[0]
        scores = per_image_best_psnr(
            target_batch, sim.server.reconstructions[(0, 0)].images
        )
        assert np.all(scores > 100.0)

    def test_oasis_mr_protects_every_image(self, dataset):
        sim = run_attack_sim(dataset, self._attack(dataset), OasisDefense("MR"))
        target_batch = sim.server.clients[0].last_batch[0]
        scores = per_image_best_psnr(
            target_batch, sim.server.reconstructions[(0, 0)].images
        )
        assert np.all(scores < 60.0)

    def test_multi_round_attack_keeps_failing_under_oasis(self, dataset):
        sim = run_attack_sim(
            dataset, self._attack(dataset), OasisDefense("MR"), rounds=3
        )
        for (round_index, _client_id), result in sim.server.reconstructions.items():
            target_batch = sim.server.clients[0].last_batch[0]
            scores = per_image_best_psnr(target_batch, result.images)
            # last_batch is from the final round; earlier rounds' recon may
            # match older batches, but none should be a verbatim hit on any
            # private image of the target shard.
            shard = sim.server.clients[0].dataset.images.astype(np.float64)
            shard_scores = per_image_best_psnr(shard, result.images)
            assert np.all(shard_scores < 60.0), f"leak in round {round_index}"

    def test_dp_defense_needs_heavy_noise(self, dataset):
        # The paper's motivation: DP can stop the attack, but only at noise
        # levels that wreck the update (we check the privacy side here; the
        # accuracy side is covered by the ablation bench).  Imprint-layer
        # gradients here are ~1e-3 in magnitude, so sigma=1e-5 is "light"
        # (attack survives) and sigma=1 is "heavy" (attack dies).
        light = run_attack_sim(
            dataset, self._attack(dataset),
            DPGradientDefense(clip_norm=10.0, noise_multiplier=1e-9),
        )
        target_batch = light.server.clients[0].last_batch[0]
        light_scores = per_image_best_psnr(
            target_batch, light.server.reconstructions[(0, 0)].images
        )
        heavy = run_attack_sim(
            dataset, self._attack(dataset),
            DPGradientDefense(clip_norm=1.0, noise_multiplier=1.0),
        )
        target_batch = heavy.server.clients[0].last_batch[0]
        heavy_scores = per_image_best_psnr(
            target_batch, heavy.server.reconstructions[(0, 0)].images
        )
        assert np.max(light_scores) > 60.0, "light DP should not stop RTF"
        assert np.max(heavy_scores) < 60.0, "heavy DP should stop RTF"


class TestCAHEndToEnd:
    def test_oasis_mrsh_reduces_leakage(self, dataset):
        attack = CAHAttack(NUM_NEURONS, activation_probability=0.05, seed=3)
        attack.calibrate_from_public_data(dataset.images)
        undefended = run_attack_sim(dataset, attack, defense=None)
        target = undefended.server.clients[0].last_batch[0]
        undefended_scores = per_image_best_psnr(
            target, undefended.server.reconstructions[(0, 0)].images
        )

        attack2 = CAHAttack(NUM_NEURONS, activation_probability=0.05, seed=3)
        attack2.calibrate_from_public_data(dataset.images)
        defended = run_attack_sim(dataset, attack2, OasisDefense("MR+SH"))
        target = defended.server.clients[0].last_batch[0]
        defended_scores = per_image_best_psnr(
            target, defended.server.reconstructions[(0, 0)].images
        )
        assert defended_scores.mean() < undefended_scores.mean()


class TestTrainingStillWorks:
    def test_oasis_federation_learns(self, dataset):
        def factory():
            return MLP(
                [dataset.flat_dim, 48, dataset.num_classes],
                rng=np.random.default_rng(2),
            )
        sim = FederatedSimulation(
            dataset,
            factory,
            FederationConfig(num_clients=3, batch_size=4, learning_rate=0.1, seed=1),
            defense=OasisDefense("MR"),
        )
        records = sim.run(80)
        first = np.mean([r.mean_loss for r in records[:5]])
        last = np.mean([r.mean_loss for r in records[-5:]])
        assert last < first
        assert sim.evaluate(dataset) > 2.0 / dataset.num_classes
