"""Property-based tests (hypothesis) for core invariants.

Invariant families, each load-bearing for the reproduction:

1. Autograd: gradients match finite differences on random inputs/shapes.
2. Augmentation: the geometric identities the defense analysis relies on
   (mean preservation, involutions, rotation group structure).
3. PSNR: metric axioms (symmetry in error magnitude, monotonicity, range).
4. Aggregation: FedAvg linearity/convexity (Eq. 1).
5. Partitioning: Dirichlet label skew covers every sample exactly once.
6. Aggregators: every rule is invariant to the order clients report in.
7. SecAgg: any supra-threshold survivor set recovers the exact sum.
8. Event engine: heap pop order and arrival plans are pure functions of
   the event/cohort *set*, never of push or registration order.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.augment import horizontal_flip, rotate, shear, vertical_flip
from repro.fl import (
    Event,
    EventQueue,
    UniformArrivals,
    average_gradients,
    dirichlet_partition_indices,
    make_aggregator,
)
from repro.fl.engine import EVENT_KINDS
from repro.metrics import PSNR_CEILING, psnr
from repro.tensor import Tensor
from repro.utils import numerical_gradient

finite_floats = st.floats(
    min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False
)


def small_arrays(min_dims=1, max_dims=2, max_side=5):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=min_dims, max_dims=max_dims, max_side=max_side),
        elements=finite_floats,
    )


def images(side=8):
    return arrays(
        dtype=np.float64,
        shape=(3, side, side),
        elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )


class TestAutogradProperties:
    @settings(max_examples=25, deadline=None)
    @given(small_arrays())
    def test_sum_gradient_is_ones(self, x):
        t = Tensor(x, requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(x))

    @settings(max_examples=20, deadline=None)
    @given(small_arrays())
    def test_square_gradient(self, x):
        t = Tensor(x, requires_grad=True)
        (t * t).sum().backward()
        np.testing.assert_allclose(t.grad, 2.0 * x, atol=1e-10)

    @settings(max_examples=15, deadline=None)
    @given(small_arrays(max_dims=1, max_side=6))
    def test_elementwise_chain_matches_numeric(self, x):
        x = x + 0.1 * np.sign(x) + 0.05  # avoid the ReLU kink

        def loss(t):
            return ((t.relu() + 1.0) * t).sum()

        t = Tensor(x.copy(), requires_grad=True)
        loss(t).backward()
        numeric = numerical_gradient(lambda p: loss(Tensor(p)).item(), x.copy())
        np.testing.assert_allclose(t.grad, numeric, atol=1e-5)

    @settings(max_examples=15, deadline=None)
    @given(
        arrays(np.float64, (3, 4), elements=finite_floats),
        arrays(np.float64, (4, 2), elements=finite_floats),
    )
    def test_matmul_grad_shapes(self, a, b):
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta @ tb).sum().backward()
        assert ta.grad.shape == a.shape
        assert tb.grad.shape == b.shape

    @settings(max_examples=15, deadline=None)
    @given(small_arrays())
    def test_linearity_of_backward(self, x):
        # d(3L)/dx == 3 dL/dx
        t1 = Tensor(x.copy(), requires_grad=True)
        (t1 * t1).sum().backward()
        t3 = Tensor(x.copy(), requires_grad=True)
        ((t3 * t3).sum() * 3.0).backward()
        np.testing.assert_allclose(t3.grad, 3.0 * t1.grad, atol=1e-10)


class TestAugmentationProperties:
    @settings(max_examples=20, deadline=None)
    @given(images())
    def test_rot90_four_times_identity(self, image):
        out = image
        for _ in range(4):
            out = rotate(out, 90)
        np.testing.assert_array_equal(out, image)

    @settings(max_examples=20, deadline=None)
    @given(images())
    def test_rot90_composition(self, image):
        np.testing.assert_array_equal(
            rotate(rotate(image, 90), 90), rotate(image, 180)
        )

    @settings(max_examples=20, deadline=None)
    @given(images())
    def test_flip_involutions(self, image):
        np.testing.assert_array_equal(horizontal_flip(horizontal_flip(image)), image)
        np.testing.assert_array_equal(vertical_flip(vertical_flip(image)), image)

    @settings(max_examples=20, deadline=None)
    @given(images(), st.sampled_from([30.0, 45.0, 60.0, 15.0, 75.0]))
    def test_minor_rotation_preserves_mean(self, image, angle):
        assert np.isclose(rotate(image, angle).mean(), image.mean(), atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(images(), st.floats(min_value=0.1, max_value=1.5))
    def test_shear_preserves_mean(self, image, factor):
        assert np.isclose(shear(image, factor).mean(), image.mean(), atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(images())
    def test_major_rotation_preserves_multiset(self, image):
        np.testing.assert_allclose(
            np.sort(rotate(image, 270).ravel()), np.sort(image.ravel())
        )

    @settings(max_examples=10, deadline=None)
    @given(images())
    def test_transforms_preserve_shape(self, image):
        for out in (
            rotate(image, 37.0),
            shear(image, 0.8),
            horizontal_flip(image),
            vertical_flip(image),
        ):
            assert out.shape == image.shape


class TestPSNRProperties:
    @settings(max_examples=20, deadline=None)
    @given(images(side=6))
    def test_self_psnr_is_ceiling(self, image):
        assert psnr(image, image) == PSNR_CEILING

    @settings(max_examples=20, deadline=None)
    @given(images(side=6), st.floats(min_value=0.01, max_value=0.3))
    def test_symmetric(self, image, eps):
        other = np.clip(image + eps, 0, 1)
        assert np.isclose(psnr(image, other), psnr(other, image))

    @settings(max_examples=20, deadline=None)
    @given(images(side=6), st.floats(min_value=0.01, max_value=0.2))
    def test_monotone_in_perturbation(self, image, eps):
        closer = image + eps / 2
        farther = image + eps
        assert psnr(image, closer) >= psnr(image, farther)

    @settings(max_examples=20, deadline=None)
    @given(images(side=6), images(side=6))
    def test_bounded_above_by_ceiling(self, a, b):
        assert psnr(a, b) <= PSNR_CEILING


class TestAggregationProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(arrays(np.float64, (4,), elements=finite_floats),
                    min_size=1, max_size=6))
    def test_average_within_convex_hull(self, grads):
        updates = [{"w": g} for g in grads]
        out = average_gradients(updates)["w"]
        stacked = np.stack(grads)
        assert np.all(out <= stacked.max(axis=0) + 1e-12)
        assert np.all(out >= stacked.min(axis=0) - 1e-12)

    @settings(max_examples=20, deadline=None)
    @given(arrays(np.float64, (4,), elements=finite_floats),
           st.integers(min_value=1, max_value=8))
    def test_average_of_identical_is_identity(self, grad, count):
        out = average_gradients([{"w": grad.copy()} for _ in range(count)])["w"]
        np.testing.assert_allclose(out, grad, atol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(arrays(np.float64, (3,), elements=finite_floats),
           arrays(np.float64, (3,), elements=finite_floats))
    def test_permutation_invariance(self, a, b):
        ab = average_gradients([{"w": a}, {"w": b}])["w"]
        ba = average_gradients([{"w": b}, {"w": a}])["w"]
        np.testing.assert_allclose(ab, ba, atol=1e-12)


class TestDirichletPartitionProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        labels=arrays(
            np.int64,
            array_shapes(min_dims=1, max_dims=1, min_side=1, max_side=60),
            elements=st.integers(min_value=0, max_value=5),
        ),
        num_clients=st.integers(min_value=1, max_value=7),
        alpha=st.floats(min_value=1e-3, max_value=100.0,
                        allow_nan=False, allow_infinity=False),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_covers_all_samples_exactly_once(self, labels, num_clients, alpha, seed):
        rng = np.random.default_rng(seed)
        parts = dirichlet_partition_indices(labels, num_clients, alpha, rng)
        assert len(parts) == num_clients
        merged = np.sort(np.concatenate([p for p in parts] + [np.array([], int)]))
        np.testing.assert_array_equal(merged, np.arange(len(labels)))


class TestAggregatorOrderInvariance:
    @pytest.mark.parametrize(
        "name", ["fedavg", "median", "trimmed_mean", "masked_sum"]
    )
    @settings(max_examples=15, deadline=None)
    @given(
        grads=st.lists(arrays(np.float64, (5,), elements=finite_floats),
                       min_size=2, max_size=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_aggregate_is_permutation_invariant(self, name, grads, seed):
        updates = [{"w": g} for g in grads]
        base = make_aggregator(name).aggregate(updates)["w"]
        order = np.random.default_rng(seed).permutation(len(updates))
        shuffled = make_aggregator(name).aggregate(
            [updates[i] for i in order]
        )["w"]
        np.testing.assert_allclose(shuffled, base, atol=1e-9)


class TestSecAggRecoveryProperties:
    """Protocol invariant: ANY survivor set of at least the threshold
    recovers the survivors' exact quantized sum bit-for-bit, and any
    smaller set must raise — for both protocol families."""

    def _grid_matrix(self, data, n, dim=4):
        cells = data.draw(
            st.lists(
                st.lists(st.integers(-4000, 4000), min_size=dim, max_size=dim),
                min_size=n,
                max_size=n,
            )
        )
        return np.asarray(cells, dtype=np.float64) / 1024.0

    @pytest.mark.parametrize("protocol_name", ["secagg", "secagg_oneshot"])
    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_any_supra_threshold_survivor_set_recovers_exact_sum(
        self, protocol_name, data
    ):
        n = data.draw(st.integers(min_value=3, max_value=8), label="n")
        matrix = self._grid_matrix(data, n)
        seed = data.draw(st.integers(min_value=0, max_value=2**16), label="seed")
        aggregator = make_aggregator(protocol_name, seed=seed)
        threshold = aggregator.threshold_for(n)
        k = data.draw(st.integers(min_value=threshold, max_value=n), label="k")
        survivors = sorted(
            data.draw(st.permutations(list(range(n))), label="order")[:k]
        )
        committed = list(range(n))
        recovered = aggregator.protocol_round(
            matrix[survivors], survivors, committed, round_index=2
        )
        exact = aggregator.codec.quantize(matrix[survivors], count=n).sum(
            axis=0, dtype=np.uint64
        )
        expected = aggregator.codec.dequantize_sum(exact) / len(survivors)
        np.testing.assert_array_equal(recovered, expected)

    @pytest.mark.parametrize("protocol_name", ["secagg", "secagg_oneshot"])
    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_any_sub_threshold_survivor_set_raises(self, protocol_name, data):
        from repro.fl import BelowThresholdError

        n = data.draw(st.integers(min_value=3, max_value=8), label="n")
        matrix = self._grid_matrix(data, n)
        seed = data.draw(st.integers(min_value=0, max_value=2**16), label="seed")
        aggregator = make_aggregator(protocol_name, seed=seed)
        threshold = aggregator.threshold_for(n)
        k = data.draw(st.integers(min_value=1, max_value=threshold - 1), label="k")
        survivors = sorted(
            data.draw(st.permutations(list(range(n))), label="order")[:k]
        )
        with pytest.raises(BelowThresholdError):
            aggregator.protocol_round(
                matrix[survivors], survivors, list(range(n)), round_index=2
            )


class TestEventHeapOrderInvariance:
    """Engine invariant: pop order is a pure function of the event *set*.

    The sort key is the event's identity ``(time, kind priority,
    client_id)`` — never a heap insertion counter — so the order clients
    were registered, selected, or pushed can never leak into the round's
    timeline.  This is what makes time-cutoff arms byte-identical across
    serial and parallel sweep executions.
    """

    event_triples = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10_000),
            st.sampled_from(EVENT_KINDS),
            st.integers(min_value=-1, max_value=40),
        ),
        min_size=1,
        max_size=24,
        unique=True,
    )

    @settings(max_examples=40, deadline=None)
    @given(triples=event_triples, seed=st.integers(min_value=0, max_value=2**16))
    def test_pop_order_invariant_to_push_order(self, triples, seed):
        events = [Event(time=t, kind=k, client_id=c) for t, k, c in triples]
        expected = sorted(e.sort_key for e in events)
        order = np.random.default_rng(seed).permutation(len(events))
        queue = EventQueue([events[i] for i in order])
        popped = []
        while queue:
            popped.append(queue.pop().sort_key)
        assert popped == expected

    @settings(max_examples=40, deadline=None)
    @given(triples=event_triples, seed=st.integers(min_value=0, max_value=2**16))
    def test_interleaved_push_pop_emits_sorted_remainder(self, triples, seed):
        # Pops interleaved with further pushes (the engine schedules the
        # close event mid-round) still always emit the smallest queued
        # keys, and the final drain is the sorted remaining set.
        events = [Event(time=t, kind=k, client_id=c) for t, k, c in triples]
        rng = np.random.default_rng(seed)
        shuffled = [events[i] for i in rng.permutation(len(events))]
        half = len(shuffled) // 2
        queue = EventQueue(shuffled[:half])
        early = [queue.pop().sort_key for _ in range(len(queue) // 2)]
        assert early == sorted(e.sort_key for e in shuffled[:half])[: len(early)]
        for event in shuffled[half:]:
            queue.push(event)
        drained = []
        while queue:
            drained.append(queue.pop().sort_key)
        remaining = set(e.sort_key for e in events) - set(early)
        assert drained == sorted(remaining)

    @settings(max_examples=25, deadline=None)
    @given(
        ids=st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=1,
            max_size=16,
            unique=True,
        ),
        round_index=st.integers(min_value=0, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
        arrivals_seed=st.integers(min_value=0, max_value=2**8),
    )
    def test_arrival_plans_invariant_to_registration_order(
        self, ids, round_index, seed, arrivals_seed
    ):
        # Trace RNG streams are keyed per (client, round), so the plan's
        # completion tick for a client cannot depend on cohort order.
        process = UniformArrivals(seed=arrivals_seed)
        order = np.random.default_rng(seed).permutation(len(ids))
        base = process.plan_round(ids, round_index, 0, np.random.default_rng(0))
        shuffled = process.plan_round(
            [ids[i] for i in order], round_index, 0, np.random.default_rng(0)
        )
        by_id = {s.client_id: s.time for s in base.dispatched}
        assert {s.client_id: s.time for s in shuffled.dispatched} == by_id
