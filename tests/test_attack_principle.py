"""Tests of the paper's Sec. III-A attack principle (Eq. 6, Proposition 1).

These tests verify the *mathematical identities* the whole paper rests on,
to float precision, on our autograd engine:

1. Single-input Eq. 6: for a ReLU-gated linear layer updated on one sample,
   (dL/db_i)^(-1) dL/dW_i == x exactly, for any activated neuron i.
2. Batch summation: gradients of a batch are the sum of per-sample
   gradients, so a neuron activated by exactly one sample leaks it.
3. Mixtures: a neuron activated by several samples yields a convex-like
   combination, with coefficients proportional to each sample's dL/db_i.
4. Proposition 1's premise and conclusion on a crafted malicious layer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    ImprintedModel,
    activation_matrix,
    extract_imprint_gradients,
    invert_gradient_pair,
)
from repro.fl import compute_batch_gradients
from repro.nn import CrossEntropyLoss


@pytest.fixture
def setup(rng):
    model = ImprintedModel((3, 8, 8), num_neurons=24, num_classes=5, rng=rng)
    loss_fn = CrossEntropyLoss()
    return model, loss_fn


def _grads_for(model, loss_fn, images, labels):
    grads, _ = compute_batch_gradients(model, loss_fn, images, labels)
    return extract_imprint_gradients(grads)


class TestEquation6:
    def test_single_input_perfect_inversion(self, setup, rng):
        model, loss_fn = setup
        x = rng.random((1, 3, 8, 8))
        weight_grad, bias_grad = _grads_for(model, loss_fn, x, np.array([2]))
        flat = x.reshape(-1)
        active = np.flatnonzero(np.abs(bias_grad) > 1e-12)
        assert active.size > 0, "at least one neuron must fire"
        for i in active:
            recovered = invert_gradient_pair(weight_grad[i], bias_grad[i])
            np.testing.assert_allclose(recovered, flat, atol=1e-9)

    def test_inactive_neuron_returns_none(self):
        assert invert_gradient_pair(np.ones(4), 0.0) is None

    def test_inversion_invariant_to_loss_scale(self, setup, rng):
        # Eq. 6 divides two gradients sharing the loss scale, so mean vs sum
        # reduction must give the same reconstruction.
        model, _ = setup
        x = rng.random((1, 3, 8, 8))
        w_mean, b_mean = _grads_for(model, CrossEntropyLoss("mean"), x, np.array([0]))
        w_sum, b_sum = _grads_for(model, CrossEntropyLoss("sum"), x, np.array([0]))
        i = int(np.argmax(np.abs(b_mean)))
        r1 = invert_gradient_pair(w_mean[i], b_mean[i])
        r2 = invert_gradient_pair(w_sum[i], b_sum[i])
        np.testing.assert_allclose(r1, r2, atol=1e-9)


class TestBatchSummation:
    def test_batch_gradient_is_sum_of_per_sample(self, setup, rng):
        model, loss_fn = setup
        images = rng.random((4, 3, 8, 8))
        labels = np.array([0, 1, 2, 3])
        w_batch, b_batch = _grads_for(
            model, CrossEntropyLoss("sum"), images, labels
        )
        w_acc = np.zeros_like(w_batch)
        b_acc = np.zeros_like(b_batch)
        for i in range(4):
            w_i, b_i = _grads_for(
                model, CrossEntropyLoss("sum"), images[i : i + 1], labels[i : i + 1]
            )
            w_acc += w_i
            b_acc += b_i
        np.testing.assert_allclose(w_batch, w_acc, atol=1e-10)
        np.testing.assert_allclose(b_batch, b_acc, atol=1e-10)

    def test_solely_activating_sample_leaks_verbatim(self, rng):
        # Craft a layer where neuron 0 fires only for sample 0.
        model = ImprintedModel((1, 4, 4), num_neurons=2, num_classes=3, rng=rng)
        images = np.stack(
            [np.full((1, 4, 4), 0.9), np.full((1, 4, 4), 0.1)]
        ) + rng.random((2, 1, 4, 4)) * 0.01
        d = 16
        weight = np.tile(np.full(d, 1.0 / d), (2, 1))
        bias = np.array([-0.5, -2.0])  # neuron 0: only bright sample; 1: none
        model.set_imprint_parameters(weight, bias)
        w_grad, b_grad = _grads_for(
            model, CrossEntropyLoss(), images, np.array([0, 1])
        )
        recovered = invert_gradient_pair(w_grad[0], b_grad[0])
        np.testing.assert_allclose(recovered, images[0].reshape(-1), atol=1e-9)

    def test_shared_neuron_yields_linear_combination(self, rng):
        model = ImprintedModel((1, 4, 4), num_neurons=1, num_classes=3, rng=rng)
        images = rng.random((2, 1, 4, 4)) + 0.5  # both bright: both activate
        weight = np.full((1, 16), 1.0 / 16)
        bias = np.array([-0.1])
        model.set_imprint_parameters(weight, bias)
        w_grad, b_grad = _grads_for(
            model, CrossEntropyLoss(), images, np.array([0, 1])
        )
        mixture = invert_gradient_pair(w_grad[0], b_grad[0])
        # The mixture must lie in the span of the two flattened inputs.
        basis = images.reshape(2, -1)
        coeffs, residual, *_ = np.linalg.lstsq(basis.T, mixture, rcond=None)
        reconstructed = basis.T @ coeffs
        np.testing.assert_allclose(reconstructed, mixture, atol=1e-8)
        # And not equal to either input alone.
        assert not np.allclose(mixture, basis[0], atol=1e-3)
        assert not np.allclose(mixture, basis[1], atol=1e-3)

    def test_mixture_coefficients_proportional_to_bias_grads(self, rng):
        model = ImprintedModel((1, 3, 3), num_neurons=1, num_classes=2, rng=rng)
        images = rng.random((2, 1, 3, 3)) + 0.5
        model.set_imprint_parameters(np.full((1, 9), 1.0 / 9), np.array([-0.1]))
        loss_fn = CrossEntropyLoss("sum")
        w_grad, b_grad = _grads_for(model, loss_fn, images, np.array([0, 1]))
        # Per-sample bias gradients:
        b_parts = []
        for i in range(2):
            _, b_i = _grads_for(model, loss_fn, images[i : i + 1], np.array([i]))
            b_parts.append(b_i[0])
        mixture = invert_gradient_pair(w_grad[0], b_grad[0])
        expected = (
            b_parts[0] * images[0].reshape(-1) + b_parts[1] * images[1].reshape(-1)
        ) / (b_parts[0] + b_parts[1])
        np.testing.assert_allclose(mixture, expected, atol=1e-9)


class TestProposition1:
    def test_identical_activation_sets_block_extraction(self, rng):
        """If x and x' activate the same neurons, no neuron isolates x."""
        model = ImprintedModel((1, 4, 4), num_neurons=8, num_classes=2, rng=rng)
        x = rng.random((1, 4, 4))
        x_prime = x[:, ::-1, :].copy()  # vertical flip: same mean
        weight = np.tile(np.full(16, 1.0 / 16), (8, 1))
        bias = -np.linspace(0.1, 0.9, 8)
        model.set_imprint_parameters(weight, bias)
        batch = np.stack([x, x_prime])
        flat = batch.reshape(2, -1)
        acts = activation_matrix(weight, bias, flat)
        np.testing.assert_array_equal(acts[0], acts[1])
        # No neuron is activated by exactly one of them:
        counts = acts.sum(axis=0)
        assert not np.any(counts == 1)

    def test_activation_matrix_matches_forward_relu(self, setup, rng):
        model, _ = setup
        images = rng.random((3, 3, 8, 8))
        weight, bias = model.imprint_parameters()
        flat = images.reshape(3, -1)
        acts = activation_matrix(weight, bias, flat)
        manual = (flat @ weight.T + bias) > 0
        np.testing.assert_array_equal(acts, manual)


class TestImprintedModel:
    def test_rejects_bad_weight_shape(self, setup):
        model, _ = setup
        with pytest.raises(ValueError):
            model.set_imprint_parameters(np.zeros((3, 3)), np.zeros(24))

    def test_rejects_bad_bias_shape(self, setup):
        model, _ = setup
        with pytest.raises(ValueError):
            model.set_imprint_parameters(np.zeros((24, 192)), np.zeros(3))

    def test_forward_shape(self, setup, rng):
        model, _ = setup
        out = model(__import__("repro.tensor", fromlist=["Tensor"]).Tensor(rng.random((2, 3, 8, 8))))
        assert out.shape == (2, 5)

    def test_decoder_columns_identical(self, setup):
        # The pass-through property: every attacked neuron feeds downstream
        # identically, giving equal backprop coefficients (RTF requirement).
        model, _ = setup
        decoder = model.decoder.weight.data  # (flat_dim, num_neurons)
        first = decoder[:, 0]
        for i in range(1, decoder.shape[1]):
            np.testing.assert_allclose(decoder[:, i], first)

    def test_extract_missing_keys_raises(self):
        with pytest.raises(KeyError):
            extract_imprint_gradients({"other.weight": np.zeros(1)})
