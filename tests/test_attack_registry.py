"""The pluggable attack zoo: registration, factories, round-trips, detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    AttackKnob,
    AttackRegistryError,
    AttackSpec,
    DuplicateAttackError,
    ImprintedModel,
    LinearClassifier,
    UnknownAttackError,
    attack_spec,
    available_attacks,
    make_attack,
    register_attack,
    unregister_attack,
)
from repro.defense import inspect_state
from repro.fl import compute_batch_gradients
from repro.nn import CrossEntropyLoss, LogisticLoss

BUILTIN_ATTACKS = ("rtf", "cah", "linear", "qbi", "loki")
NUM_NEURONS = 96


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BUILTIN_ATTACKS) <= set(available_attacks())

    def test_unknown_name_raises_with_available_list(self):
        with pytest.raises(UnknownAttackError) as excinfo:
            attack_spec("definitely-not-an-attack")
        message = str(excinfo.value)
        for name in BUILTIN_ATTACKS:
            assert name in message

    def test_unknown_attack_error_is_a_value_error(self):
        # The per-figure harnesses historically caught ValueError.
        with pytest.raises(ValueError):
            make_attack("nope", 8, None)

    def test_duplicate_registration_refused(self):
        spec = AttackSpec(name="dup_test", factory=lambda *a, **k: None)
        register_attack(spec)
        try:
            with pytest.raises(DuplicateAttackError):
                register_attack(spec)
            # ... unless replacement is explicit.
            register_attack(spec, replace=True)
        finally:
            unregister_attack("dup_test")
        assert "dup_test" not in available_attacks()

    def test_unregister_unknown_raises(self):
        with pytest.raises(UnknownAttackError):
            unregister_attack("never_registered")

    def test_invalid_name_refused(self):
        with pytest.raises(AttackRegistryError):
            register_attack(AttackSpec(name="", factory=lambda *a: None))
        with pytest.raises(AttackRegistryError):
            register_attack(AttackSpec(name="bad name", factory=lambda *a: None))

    def test_unknown_knob_raises(self):
        with pytest.raises(AttackRegistryError, match="declared knobs"):
            make_attack("rtf", 8, None, not_a_knob=3)

    def test_declared_knobs_pass_through(self, cifar_like):
        attack = make_attack(
            "cah", 32, cifar_like.images[:64], activation_probability=0.07
        )
        assert attack.activation_probability == pytest.approx(0.07)

    def test_specs_declare_model_family(self):
        assert attack_spec("linear").model == "linear"
        assert not attack_spec("linear").crafts_model
        for name in ("rtf", "cah", "qbi", "loki"):
            assert attack_spec(name).model == "imprint"
            assert attack_spec(name).crafts_model

    def test_every_spec_has_description_and_knob_docs(self):
        for name in BUILTIN_ATTACKS:
            spec = attack_spec(name)
            assert spec.description
            for knob in spec.knobs:
                assert isinstance(knob, AttackKnob)
                assert knob.description


class TestRoundTrips:
    """Every registered attack survives craft -> client gradients -> reconstruct."""

    @pytest.fixture
    def batch(self, tiny_dataset, rng):
        return tiny_dataset.sample_batch(4, rng)

    @pytest.mark.parametrize(
        "name", [n for n in BUILTIN_ATTACKS if n != "linear"]
    )
    def test_imprint_attacks_round_trip(self, name, tiny_dataset, batch):
        images, labels = batch
        attack = make_attack(
            name, NUM_NEURONS, tiny_dataset.images[:96], seed=3
        )
        model = ImprintedModel(
            tiny_dataset.image_shape,
            NUM_NEURONS,
            tiny_dataset.num_classes,
            rng=np.random.default_rng(17),
        )
        attack.craft(model)
        gradients, _ = compute_batch_gradients(
            model, CrossEntropyLoss(), images, labels
        )
        result = attack.reconstruct(gradients)
        assert len(result) >= 1, f"{name} recovered nothing from 4 images"
        assert result.images.shape[1:] == tiny_dataset.image_shape
        assert np.all(np.isfinite(result.images))
        assert result.occupancy is not None
        assert len(result.occupancy) == len(result)

    def test_linear_attack_round_trips(self, tiny_dataset, rng):
        from repro.data.loaders import class_balanced_batch

        images, labels = class_balanced_batch(
            tiny_dataset, 4, rng, unique_labels=True
        )
        attack = make_attack("linear", NUM_NEURONS, None)
        model = LinearClassifier(
            tiny_dataset.image_shape,
            tiny_dataset.num_classes,
            rng=np.random.default_rng(17),
        )
        attack.craft(model)
        gradients, _ = compute_batch_gradients(
            model, LogisticLoss(), images, labels
        )
        result = attack.reconstruct(gradients)
        assert len(result) >= 1
        assert np.all(np.isfinite(result.images))


class TestDetectionCoverage:
    """Client-side inspection flags every model-crafting attack in the zoo."""

    @pytest.mark.parametrize(
        "name", [n for n in BUILTIN_ATTACKS if attack_spec(n).crafts_model]
    )
    def test_crafted_state_is_flagged(self, name, cifar_like):
        attack = make_attack(name, 100, cifar_like.images[:100], seed=1)
        model = ImprintedModel(
            cifar_like.image_shape, 100, cifar_like.num_classes,
            rng=np.random.default_rng(0),
        )
        if getattr(attack, "per_client_crafting", False):
            attack.assign_clients([0, 1, 2, 3])
            attack.craft_for_client(model, 1)
        else:
            attack.craft(model)
        report = inspect_state(
            model.state_dict(), probe_inputs=cifar_like.images[:64]
        )
        assert report.suspicious, f"{name} crafted state escaped detection"

    def test_clean_model_still_passes(self, cifar_like):
        model = ImprintedModel(
            cifar_like.image_shape, 100, cifar_like.num_classes,
            rng=np.random.default_rng(0),
        )
        report = inspect_state(
            model.state_dict(), probe_inputs=cifar_like.images[:64]
        )
        assert not report.suspicious, report.findings
