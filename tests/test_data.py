"""Synthetic datasets and loaders: determinism, structure, iteration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    DataLoader,
    SyntheticImageDataset,
    class_balanced_batch,
    make_synthetic_dataset,
    synthetic_cifar100,
    synthetic_imagenet,
    train_test_split,
)


class TestGeneration:
    def test_shapes_and_ranges(self, tiny_dataset):
        assert tiny_dataset.images.shape == (24, 3, 16, 16)
        assert tiny_dataset.images.min() >= 0.0
        assert tiny_dataset.images.max() <= 1.0
        assert tiny_dataset.labels.shape == (24,)

    def test_deterministic(self):
        a = make_synthetic_dataset(3, 4, image_size=8, seed=5)
        b = make_synthetic_dataset(3, 4, image_size=8, seed=5)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_seed_changes_data(self):
        a = make_synthetic_dataset(3, 4, image_size=8, seed=5)
        b = make_synthetic_dataset(3, 4, image_size=8, seed=6)
        assert not np.array_equal(a.images, b.images)

    def test_all_classes_present(self, tiny_dataset):
        assert set(np.unique(tiny_dataset.labels)) == set(range(4))

    def test_within_class_similarity_exceeds_between(self, tiny_dataset):
        # Class structure: same-class images are closer than cross-class.
        images = tiny_dataset.images.reshape(len(tiny_dataset), -1)
        labels = tiny_dataset.labels
        same, cross = [], []
        for i in range(len(images)):
            for j in range(i + 1, len(images)):
                dist = np.linalg.norm(images[i] - images[j])
                (same if labels[i] == labels[j] else cross).append(dist)
        assert np.mean(same) < np.mean(cross)

    def test_imagenet_factory(self):
        ds = synthetic_imagenet(samples_per_class=2, image_size=16)
        assert ds.num_classes == 10
        assert ds.name == "imagenet"
        assert "tench" in ds.class_names

    def test_cifar100_factory(self):
        ds = synthetic_cifar100(samples_per_class=1)
        assert ds.num_classes == 100
        assert ds.image_shape == (3, 32, 32)

    def test_flat_dim(self, tiny_dataset):
        assert tiny_dataset.flat_dim == 3 * 16 * 16

    def test_pixel_statistics(self, tiny_dataset):
        mean, std = tiny_dataset.pixel_statistics()
        assert 0.3 < mean < 0.7
        assert std > 0.0

    def test_validation_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            SyntheticImageDataset(np.zeros((3, 1, 2, 2)), np.zeros(2), 2)

    def test_validation_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            SyntheticImageDataset(np.zeros((3, 4)), np.zeros(3), 2)


class TestSubsetsAndBatches:
    def test_subset(self, tiny_dataset):
        sub = tiny_dataset.subset(np.array([0, 2, 4]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.images[1], tiny_dataset.images[2])

    def test_batch_dtype(self, tiny_dataset):
        images, labels = tiny_dataset.batch(np.array([0, 1]))
        assert images.dtype == np.float64
        assert labels.dtype == np.int64

    def test_sample_batch_no_replacement(self, tiny_dataset, rng):
        images, labels = tiny_dataset.sample_batch(24, rng)
        assert len(images) == 24

    def test_train_test_split_disjoint_and_complete(self, tiny_dataset):
        train, test = train_test_split(tiny_dataset, 0.25, seed=1)
        assert len(train) + len(test) == len(tiny_dataset)
        assert len(test) == 6

    def test_train_test_split_validates_fraction(self, tiny_dataset):
        with pytest.raises(ValueError):
            train_test_split(tiny_dataset, 1.5)


class TestDataLoader:
    def test_batch_count(self, tiny_dataset):
        loader = DataLoader(tiny_dataset, batch_size=10)
        assert len(loader) == 3  # 24 -> 10 + 10 + 4

    def test_drop_last(self, tiny_dataset):
        loader = DataLoader(tiny_dataset, batch_size=10, drop_last=True)
        assert len(loader) == 2
        batches = list(loader)
        assert all(len(b[0]) == 10 for b in batches)

    def test_covers_all_samples(self, tiny_dataset):
        loader = DataLoader(tiny_dataset, batch_size=7, shuffle=True, seed=3)
        seen = sum(len(b[0]) for b in loader)
        assert seen == 24

    def test_same_seed_same_stream(self, tiny_dataset):
        a = DataLoader(tiny_dataset, batch_size=8, seed=9)
        b = DataLoader(tiny_dataset, batch_size=8, seed=9)
        for (xa, ya), (xb, yb) in zip(a, b):
            np.testing.assert_array_equal(xa, xb)
            np.testing.assert_array_equal(ya, yb)

    def test_epochs_reshuffle(self, tiny_dataset):
        loader = DataLoader(tiny_dataset, batch_size=24, seed=0)
        first = next(iter(loader))[1]
        second = next(iter(loader))[1]
        assert not np.array_equal(first, second)

    def test_no_shuffle_preserves_order(self, tiny_dataset):
        loader = DataLoader(tiny_dataset, batch_size=24, shuffle=False)
        _, labels = next(iter(loader))
        np.testing.assert_array_equal(labels, tiny_dataset.labels)

    def test_invalid_batch_size(self, tiny_dataset):
        with pytest.raises(ValueError):
            DataLoader(tiny_dataset, batch_size=0)


class TestClassBalancedBatch:
    def test_unique_labels(self, tiny_dataset, rng):
        _, labels = class_balanced_batch(tiny_dataset, 4, rng, unique_labels=True)
        assert len(set(labels.tolist())) == 4

    def test_too_many_unique_rejected(self, tiny_dataset, rng):
        with pytest.raises(ValueError):
            class_balanced_batch(tiny_dataset, 5, rng, unique_labels=True)

    def test_non_unique_path(self, tiny_dataset, rng):
        images, labels = class_balanced_batch(tiny_dataset, 6, rng)
        assert len(images) == 6
