"""Examples and benchmarks must at least compile and expose a main().

Running the examples end-to-end takes minutes; CI-level protection against
bit-rot is compilation plus structural checks (docstring, main guard).
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))
BENCHES = sorted((REPO_ROOT / "benchmarks").glob("bench_*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
class TestExamples:
    def test_compiles(self, path):
        ast.parse(path.read_text(), filename=str(path))

    def test_has_module_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a docstring"

    def test_has_main_guard(self, path):
        source = path.read_text()
        assert 'if __name__ == "__main__":' in source

    def test_defines_main(self, path):
        tree = ast.parse(path.read_text())
        functions = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
        assert "main" in functions


@pytest.mark.parametrize("path", BENCHES, ids=lambda p: p.name)
class TestBenchmarks:
    def test_compiles(self, path):
        ast.parse(path.read_text(), filename=str(path))

    def test_uses_benchmark_fixture(self, path):
        source = path.read_text()
        assert "benchmark.pedantic" in source, (
            f"{path.name} must run its workload through benchmark.pedantic"
        )

    def test_records_a_report(self, path):
        assert "record_report" in path.read_text()

    def test_asserts_paper_shape(self, path):
        tree = ast.parse(path.read_text())
        has_assert = any(isinstance(n, ast.Assert) for n in ast.walk(tree))
        # Some benches delegate assertions to a _check helper; accept either.
        assert has_assert or "_check" in path.read_text()


def test_example_count_matches_readme_claim():
    assert len(EXAMPLES) >= 3, "the library promises at least three examples"


def test_every_paper_figure_has_a_bench():
    names = " ".join(p.name for p in BENCHES)
    for token in ("fig02", "fig03", "fig04", "fig05", "fig06", "fig07_12",
                  "fig13", "fig14", "table1"):
        assert token in names, f"missing bench for {token}"
