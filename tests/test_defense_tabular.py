"""Tabular OASIS (the paper's future-work extension) end to end.

The attack principle is data-type agnostic (paper Sec. VI), so an RTF-style
imprint over feature rows must be defeated by measurement-preserving
tabular companions exactly as image OASIS defeats it over pixels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import ImprintedModel, RTFAttack
from repro.defense import (
    GroupPermutation,
    MeanPreservingJitter,
    TabularOasisDefense,
)
from repro.fl import compute_batch_gradients
from repro.metrics import per_image_best_psnr
from repro.nn import CrossEntropyLoss

NUM_FEATURES = 64


@pytest.fixture
def table(rng):
    """A tabular dataset: 4-class rows in [0, 1]^64."""
    centers = rng.random((4, NUM_FEATURES))
    rows, labels = [], []
    for label in range(4):
        for _ in range(10):
            rows.append(np.clip(centers[label] + rng.normal(0, 0.1, NUM_FEATURES), 0, 1))
            labels.append(label)
    return np.stack(rows), np.array(labels)


class TestTransforms:
    def test_group_permutation_preserves_multiset(self, rng):
        transform = GroupPermutation([list(range(8))])
        row = rng.random(8)
        out = transform(row, rng)
        np.testing.assert_allclose(np.sort(out), np.sort(row))
        assert not np.allclose(out, row)

    def test_group_permutation_untouched_outside_groups(self, rng):
        transform = GroupPermutation([[0, 1, 2]])
        row = rng.random(6)
        out = transform(row, rng)
        np.testing.assert_array_equal(out[3:], row[3:])

    def test_group_needs_two_members(self):
        with pytest.raises(ValueError):
            GroupPermutation([[0]])

    def test_jitter_preserves_mean_exactly(self, rng):
        transform = MeanPreservingJitter(0.2)
        row = rng.random(32)
        out = transform(row, rng)
        assert out.mean() == pytest.approx(row.mean(), abs=1e-12)
        assert not np.allclose(out, row)

    def test_jitter_validates_scale(self):
        with pytest.raises(ValueError):
            MeanPreservingJitter(0.0)


class TestExpansion:
    def test_default_expansion_factor(self):
        defense = TabularOasisDefense(NUM_FEATURES)
        assert defense.expansion_factor() == 4

    def test_expansion_shape_and_labels(self, table):
        rows, labels = table
        defense = TabularOasisDefense(NUM_FEATURES, seed=1)
        expanded, expanded_labels = defense.expand_batch(rows[:4], labels[:4])
        assert expanded.shape == (16, NUM_FEATURES)
        np.testing.assert_array_equal(expanded_labels[4:8], labels[:4])

    def test_rejects_image_shaped_input(self, rng):
        defense = TabularOasisDefense(NUM_FEATURES)
        with pytest.raises(ValueError):
            defense.expand_batch(rng.random((2, 3, 4, 4)), np.array([0, 1]))

    def test_companions_preserve_measurement(self, table):
        # The RTF measurement (row mean) is preserved by every companion.
        rows, labels = table
        defense = TabularOasisDefense(NUM_FEATURES, seed=1)
        expanded, _ = defense.expand_batch(rows[:4], labels[:4])
        for t in range(4):
            for k in range(1, defense.expansion_factor()):
                companion = expanded[4 * k + t]
                assert companion.mean() == pytest.approx(rows[t].mean(), abs=1e-12)


class TestAgainstRTF:
    def _attack_setup(self, table):
        rows, labels = table
        # Treat rows as (1, 8, 8) "images" so the imprint machinery applies.
        shape = (1, 8, 8)
        model = ImprintedModel(shape, 120, 4, rng=np.random.default_rng(3))
        attack = RTFAttack(120)
        attack.calibrate_from_public_data(rows.reshape(-1, *shape))
        attack.craft(model)
        return model, attack, shape

    def test_undefended_rows_leak(self, table, rng):
        rows, labels = table
        model, attack, shape = self._attack_setup(table)
        batch = rows[:4].reshape(-1, *shape)
        grads, _ = compute_batch_gradients(
            model, CrossEntropyLoss(), batch, labels[:4]
        )
        result = attack.reconstruct(grads)
        assert np.all(per_image_best_psnr(batch, result.images) > 100.0)

    def test_tabular_oasis_blocks_reconstruction(self, table, rng):
        rows, labels = table
        model, attack, shape = self._attack_setup(table)
        defense = TabularOasisDefense(NUM_FEATURES, seed=5)
        expanded, expanded_labels = defense.expand_batch(rows[:4], labels[:4])
        grads, _ = compute_batch_gradients(
            model, CrossEntropyLoss(),
            expanded.reshape(-1, *shape), expanded_labels,
        )
        result = attack.reconstruct(grads)
        batch = rows[:4].reshape(-1, *shape)
        scores = per_image_best_psnr(batch, result.images)
        assert np.all(scores < 60.0), "a tabular row leaked through the defense"
