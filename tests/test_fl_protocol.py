"""FL protocol: clients, honest server, dishonest server, simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import ImprintedModel, RTFAttack
from repro.data import make_synthetic_dataset
from repro.defense import OasisDefense
from repro.fl import (
    Client,
    DishonestServer,
    FederatedSimulation,
    FederationConfig,
    ModelBroadcast,
    Server,
    partition_dataset,
)
from repro.metrics import per_image_best_psnr
from repro.nn import CrossEntropyLoss, MLP


@pytest.fixture(scope="module")
def fl_dataset():
    return make_synthetic_dataset(4, 12, image_size=8, seed=3, name="fl")


def make_mlp(fl_dataset):
    return MLP([fl_dataset.flat_dim, 16, fl_dataset.num_classes],
               rng=np.random.default_rng(0))


class TestPartition:
    def test_shards_cover_dataset(self, fl_dataset):
        shards = partition_dataset(fl_dataset, 4, seed=0)
        assert sum(len(s) for s in shards) == len(fl_dataset)

    def test_shards_disjoint(self, fl_dataset):
        shards = partition_dataset(fl_dataset, 4, seed=0)
        seen = []
        for shard in shards:
            seen.extend(shard.images.reshape(len(shard), -1).sum(axis=1).tolist())
        assert len(seen) == len(set(np.round(seen, 12)))

    def test_validates_inputs(self, fl_dataset):
        with pytest.raises(ValueError):
            partition_dataset(fl_dataset, 0)
        with pytest.raises(ValueError):
            partition_dataset(fl_dataset, len(fl_dataset) + 1)


class TestClient:
    def test_local_update_contents(self, fl_dataset):
        model = make_mlp(fl_dataset)
        client = Client(0, fl_dataset, model, CrossEntropyLoss(), batch_size=4, seed=1)
        broadcast = ModelBroadcast(round_index=0, state=model.state_dict())
        update = client.local_update(broadcast)
        assert update.client_id == 0
        assert update.num_examples == 4
        assert np.isfinite(update.loss)
        assert set(update.gradients) == {n for n, _ in model.named_parameters()}

    def test_defense_does_not_inflate_examples(self, fl_dataset):
        # OASIS expands the training batch 4x, but the uploaded example
        # count must stay the original batch size: under example-weighted
        # FedAvg a defended client must not outweigh an undefended one.
        model = make_mlp(fl_dataset)
        client = Client(
            0, fl_dataset, model, CrossEntropyLoss(), batch_size=4,
            defense=OasisDefense("MR"), seed=1,
        )
        update = client.local_update(ModelBroadcast(0, model.state_dict()))
        assert update.num_examples == 4

    def test_client_loads_broadcast_state(self, fl_dataset):
        model = make_mlp(fl_dataset)
        client = Client(0, fl_dataset, model, CrossEntropyLoss(), batch_size=4)
        reference = make_mlp(fl_dataset)
        for p in reference.parameters():
            p.data[:] = 0.123
        client.local_update(ModelBroadcast(0, reference.state_dict()))
        np.testing.assert_allclose(
            next(iter(client.model.parameters())).data, 0.123
        )

    def test_last_batch_recorded(self, fl_dataset):
        model = make_mlp(fl_dataset)
        client = Client(0, fl_dataset, model, CrossEntropyLoss(), batch_size=4)
        client.local_update(ModelBroadcast(0, model.state_dict()))
        assert client.last_batch is not None
        assert len(client.last_batch[0]) == 4


class TestHonestServer:
    def _make_federation(self, fl_dataset, num_clients=3):
        clients = [
            Client(i, shard, make_mlp(fl_dataset), CrossEntropyLoss(), batch_size=4,
                   seed=7)
            for i, shard in enumerate(partition_dataset(fl_dataset, num_clients))
        ]
        return Server(make_mlp(fl_dataset), clients, learning_rate=0.5, seed=0)

    def test_round_applies_eq1(self, fl_dataset):
        server = self._make_federation(fl_dataset)
        before = {n: p.data.copy() for n, p in server.model.named_parameters()}
        server.run_round()
        after = dict(server.model.named_parameters())
        changed = any(
            not np.allclose(before[n], after[n].data) for n in before
        )
        assert changed

    def test_history_grows(self, fl_dataset):
        server = self._make_federation(fl_dataset)
        server.run(3)
        assert [r.round_index for r in server.history] == [0, 1, 2]

    def test_client_subset_selection(self, fl_dataset):
        clients = [
            Client(i, shard, make_mlp(fl_dataset), CrossEntropyLoss(), batch_size=4)
            for i, shard in enumerate(partition_dataset(fl_dataset, 4))
        ]
        server = Server(make_mlp(fl_dataset), clients, clients_per_round=2, seed=0)
        record = server.run_round()
        assert len(record.participant_ids) == 2

    def test_requires_clients(self, fl_dataset):
        with pytest.raises(ValueError):
            Server(make_mlp(fl_dataset), [])

    def test_loss_decreases_over_rounds(self, fl_dataset):
        server = self._make_federation(fl_dataset)
        records = server.run(25)
        first = np.mean([r.mean_loss for r in records[:5]])
        last = np.mean([r.mean_loss for r in records[-5:]])
        assert last < first


class TestDishonestServer:
    def test_attack_round_reconstructs_target_batch(self, fl_dataset):
        num_neurons = 64
        def factory():
            return ImprintedModel(fl_dataset.image_shape, num_neurons,
                                  fl_dataset.num_classes,
                                  rng=np.random.default_rng(5))
        clients = [
            Client(i, shard, factory(), CrossEntropyLoss(), batch_size=3, seed=11)
            for i, shard in enumerate(partition_dataset(fl_dataset, 2))
        ]
        attack = RTFAttack(num_neurons)
        attack.calibrate_from_public_data(fl_dataset.images)
        server = DishonestServer(
            factory(), clients, attack=attack, target_client_id=0, seed=0
        )
        server.run_round()
        assert (0, 0) in server.reconstructions
        target = clients[0].last_batch[0]
        per_image = per_image_best_psnr(
            target, server.reconstructions[(0, 0)].images
        )
        assert np.all(per_image > 100.0), "dishonest server failed to reconstruct"

    def test_attack_events_recorded(self, fl_dataset):
        num_neurons = 32
        def factory():
            return ImprintedModel(fl_dataset.image_shape, num_neurons,
                                  fl_dataset.num_classes,
                                  rng=np.random.default_rng(5))
        clients = [
            Client(0, fl_dataset, factory(), CrossEntropyLoss(), batch_size=3)
        ]
        attack = RTFAttack(num_neurons)
        attack.calibrate_from_public_data(fl_dataset.images)
        server = DishonestServer(factory(), clients, attack=attack)
        record = server.run_round()
        assert record.attack_events
        assert record.attack_events[0]["attack"] == "rtf"

    def test_multi_client_reconstructions_all_retained(self, fl_dataset):
        # Regression: keyed by round alone, a later client's inversion
        # silently clobbered an earlier one when every client is targeted.
        num_neurons = 32
        def factory():
            return ImprintedModel(fl_dataset.image_shape, num_neurons,
                                  fl_dataset.num_classes,
                                  rng=np.random.default_rng(5))
        clients = [
            Client(i, fl_dataset, factory(), CrossEntropyLoss(), batch_size=3,
                   seed=11)
            for i in range(3)
        ]
        attack = RTFAttack(num_neurons)
        attack.calibrate_from_public_data(fl_dataset.images)
        server = DishonestServer(
            factory(), clients, attack=attack, target_client_id=None, seed=0
        )
        server.run(2)
        assert set(server.reconstructions) == {
            (r, c) for r in range(2) for c in range(3)
        }
        for round_index in range(2):
            captured = server.round_reconstructions(round_index)
            assert sorted(client_id for client_id, _ in captured) == [0, 1, 2]
            assert all(len(result) > 0 for _, result in captured)

    def test_untargeted_clients_ignored(self, fl_dataset):
        num_neurons = 32
        def factory():
            return ImprintedModel(fl_dataset.image_shape, num_neurons,
                                  fl_dataset.num_classes,
                                  rng=np.random.default_rng(5))
        clients = [
            Client(i, fl_dataset, factory(), CrossEntropyLoss(), batch_size=3)
            for i in range(2)
        ]
        attack = RTFAttack(num_neurons)
        attack.calibrate_from_public_data(fl_dataset.images)
        server = DishonestServer(
            factory(), clients, attack=attack, target_client_id=1
        )
        record = server.run_round()
        assert all(e["client_id"] == 1 for e in record.attack_events)
        assert set(server.reconstructions) == {(0, 1)}


class TestFederatedSimulation:
    def test_runs_and_evaluates(self, fl_dataset):
        sim = FederatedSimulation(
            fl_dataset,
            lambda: make_mlp(fl_dataset),
            FederationConfig(num_clients=3, batch_size=4, learning_rate=0.5, seed=2),
        )
        sim.run(5)
        acc = sim.evaluate(fl_dataset)
        assert 0.0 <= acc <= 1.0

    def test_oasis_protected_simulation_with_attack(self, fl_dataset):
        num_neurons = 64
        def factory():
            return ImprintedModel(fl_dataset.image_shape, num_neurons,
                                  fl_dataset.num_classes,
                                  rng=np.random.default_rng(5))
        attack = RTFAttack(num_neurons)
        attack.calibrate_from_public_data(fl_dataset.images)
        sim = FederatedSimulation(
            fl_dataset,
            factory,
            FederationConfig(num_clients=2, batch_size=3, seed=2),
            defense=OasisDefense("MR"),
            attack=attack,
            target_client_id=0,
        )
        sim.run(1)
        server = sim.server
        target = server.clients[0].last_batch[0]
        recon = server.reconstructions[(0, 0)].images
        per_image = per_image_best_psnr(target, recon)
        assert np.all(per_image < 60.0), "OASIS failed inside the full protocol"
