"""Linear-model gradient inversion (paper Sec. IV-D)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import LinearClassifier, LinearModelInversion
from repro.data import class_balanced_batch
from repro.defense import OasisDefense
from repro.fl import compute_batch_gradients
from repro.metrics import average_attack_psnr, per_image_best_psnr
from repro.nn import LogisticLoss
from repro.tensor import Tensor


@pytest.fixture
def setup(cifar_like):
    # The attack needs many more classes than batch elements: the ratio
    # (p_tk - 1) to the contamination sum over other samples scales with
    # B / K.  The paper accordingly evaluates on CIFAR100/ImageNet.
    model = LinearClassifier(
        cifar_like.image_shape, cifar_like.num_classes,
        rng=np.random.default_rng(31),
    )
    inversion = LinearModelInversion()
    inversion.craft(model)
    return model, inversion


class TestModel:
    def test_forward_shape(self, setup, rng):
        model, _ = setup
        out = model(Tensor(rng.random((5, 3, 32, 32))))
        assert out.shape == (5, 100)

    def test_accepts_flat_input(self, setup, rng):
        model, _ = setup
        out = model(Tensor(rng.random((2, model.flat_dim))))
        assert out.shape == (2, 100)


class TestInversion:
    def test_unique_label_batch_reconstructed(self, setup, cifar_like, rng):
        model, inversion = setup
        images, labels = class_balanced_batch(cifar_like, 8, rng, unique_labels=True)
        grads, _ = compute_batch_gradients(model, LogisticLoss(), images, labels)
        result = inversion.reconstruct(grads)
        assert len(result) == 8
        # Reconstructions are dominated by the class sample (PSNR well above
        # the ~15 dB mixture floor) even if contaminated by other samples.
        per_image = per_image_best_psnr(images, result.images)
        assert np.all(per_image > 22.0)

    def test_only_present_classes_inverted(self, setup, cifar_like, rng):
        model, inversion = setup
        images, labels = class_balanced_batch(cifar_like, 4, rng, unique_labels=True)
        grads, _ = compute_batch_gradients(model, LogisticLoss(), images, labels)
        result = inversion.reconstruct(grads)
        assert sorted(result.neuron_indices) == sorted(labels.tolist())

    def test_few_classes_weakens_attack(self, tiny_dataset, rng):
        # Control experiment: at K=4 classes with B=4 the softmax
        # contamination dominates and reconstructions degrade — the reason
        # the paper's restrictive setting uses 100+-class datasets.
        model = LinearClassifier(
            tiny_dataset.image_shape, tiny_dataset.num_classes,
            rng=np.random.default_rng(31),
        )
        inversion = LinearModelInversion()
        inversion.craft(model)
        images, labels = class_balanced_batch(tiny_dataset, 4, rng, unique_labels=True)
        grads, _ = compute_batch_gradients(model, LogisticLoss(), images, labels)
        result = inversion.reconstruct(grads)
        per_image = per_image_best_psnr(images, result.images)
        assert np.all(per_image < 60.0)

    def test_reconstruct_before_craft_raises(self):
        with pytest.raises(RuntimeError):
            LinearModelInversion().reconstruct(
                {"fc.weight": np.zeros((2, 4)), "fc.bias": np.zeros(2)}
            )

    def test_oasis_turns_reconstruction_into_mixture(self, setup, cifar_like, rng):
        model, inversion = setup
        images, labels = class_balanced_batch(cifar_like, 8, rng, unique_labels=True)
        grads, _ = compute_batch_gradients(model, LogisticLoss(), images, labels)
        undefended = average_attack_psnr(images, inversion.reconstruct(grads).images)

        expanded, expanded_labels = OasisDefense("MR").expand_batch(images, labels)
        grads, _ = compute_batch_gradients(
            model, LogisticLoss(), expanded, expanded_labels
        )
        defended = average_attack_psnr(images, inversion.reconstruct(grads).images)
        assert defended < undefended - 5.0

    def test_single_layer_guarantee(self, setup, cifar_like, rng):
        # Paper: "adding transformed images to the training batch guarantees
        # that x_t and X'_t activate the same neuron" — in a linear model
        # the class row *is* the neuron and label sharing is the guarantee.
        images, labels = class_balanced_batch(cifar_like, 3, rng, unique_labels=True)
        defense = OasisDefense("MR")
        expanded, expanded_labels = defense.expand_batch(images, labels)
        # Every companion shares its original's label (= class neuron).
        for t in range(3):
            for companion in defense.companions_of(t, 3):
                assert expanded_labels[companion] == labels[t]
